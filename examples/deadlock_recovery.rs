//! The paper's headline claim, live: fully-adaptive wormhole routing
//! on a torus **deadlocks** under load — and the *same* routing
//! function becomes deadlock-free when Compressionless Routing's
//! kill-and-retransmit recovery is layered on top, with **zero**
//! virtual channels spent on deadlock avoidance.
//!
//! ```sh
//! cargo run --release --example deadlock_recovery
//! ```

use compressionless_routing::prelude::*;

fn run(protocol: ProtocolKind) -> SimReport {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(protocol)
        .buffer_depth(1)
        .deadlock_threshold(2_000)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.45)
        .seed(11)
        .build();
    net.run(30_000)
}

fn main() {
    println!("Minimal fully-adaptive routing, 4x4 torus, heavy uniform load.\n");

    println!("-- plain wormhole switching (no CR) --");
    let baseline = run(ProtocolKind::Baseline);
    println!(
        "deadlocked: {} after delivering {} messages",
        baseline.deadlocked, baseline.counters.messages_delivered
    );
    assert!(
        baseline.deadlocked,
        "adaptive wormhole routing on a torus must deadlock"
    );

    println!("\n-- same routing, with Compressionless Routing --");
    let cr = run(ProtocolKind::Cr);
    println!(
        "deadlocked: {}; delivered {} messages, recovering from {} potential deadlocks \
         ({} retransmissions)",
        cr.deadlocked,
        cr.counters.messages_delivered,
        cr.counters.kills_source_timeout,
        cr.counters.retransmissions
    );
    assert!(!cr.deadlocked);

    println!(
        "\nCR turned a deadlocking network into a working one using the \
         flow-control handshake alone — no virtual channels, no routing \
         restrictions."
    );
}
