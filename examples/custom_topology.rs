//! CR on non-cube networks: a hypercube and an irregular
//! machine-room graph.
//!
//! One of the paper's advertised advantages is "applicability to a
//! wide variety of network topologies": because CR never inspects the
//! channel dependency graph (deadlock is *recovered from*, not
//! avoided), it drops onto any strongly-connected network unchanged —
//! no per-topology virtual-channel analysis required.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use compressionless_routing::prelude::*;

fn run_on(label: &str, mut net: Network) {
    let report = net.run(8_000);
    println!(
        "{label:<34} delivered {:>6}  mean latency {:>6.1}  kills {:>4}  deadlocked {}",
        report.counters.messages_delivered,
        report.mean_latency(),
        report.total_kills(),
        report.deadlocked
    );
    assert!(!report.deadlocked);
    assert_eq!(report.counters.corrupt_payload_delivered, 0);
}

fn main() {
    println!("Compressionless Routing, identical protocol, three very different fabrics:\n");

    // 1. The paper's torus.
    run_on(
        "8x8 torus",
        NetworkBuilder::new(KAryNCube::torus(8, 2))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
            .warmup(1_000)
            .seed(1)
            .build(),
    );

    // 2. A 5-dimensional hypercube (32 nodes).
    run_on(
        "5-cube (32 nodes)",
        NetworkBuilder::new(Hypercube::new(5))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
            .warmup(1_000)
            .seed(2)
            .build(),
    );

    // 3. An irregular "machine room": two racks of four nodes, a
    //    ring inside each rack, three uplinks between them, and one
    //    diagonal shortcut. No cube structure, no dimension order —
    //    but strongly connected, which is all CR needs.
    let machine_room = GraphTopology::from_undirected_edges(
        8,
        &[
            // rack A ring
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            // rack B ring
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
            // uplinks
            (0, 4),
            (2, 6),
            (3, 5),
            // shortcut
            (1, 7),
        ],
    )
    .expect("machine room graph is valid");
    run_on(
        "irregular machine room (8 nodes)",
        NetworkBuilder::new(machine_room)
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.15)
            .warmup(1_000)
            .seed(3)
            .build(),
    );

    println!("\nSame protocol, zero topology-specific deadlock analysis.");
}
