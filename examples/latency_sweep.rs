//! A miniature version of the paper's central comparison: latency and
//! accepted throughput versus offered load, CR (adaptive, 2-flit
//! buffers) against dimension-order routing, with equal virtual
//! channels.
//!
//! ```sh
//! cargo run --release --example latency_sweep
//! ```

use compressionless_routing::prelude::*;

fn measure(routing: RoutingKind, protocol: ProtocolKind, load: f64) -> SimReport {
    let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
        .routing(routing)
        .protocol(protocol)
        .buffer_depth(2)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
        .warmup(2_000)
        .seed(7)
        .build();
    net.run(12_000)
}

fn main() {
    println!("8x8 torus, 16-flit messages, 2 VCs each, 2-flit buffers\n");
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
        "load", "CR lat", "CR acc", "DOR lat", "DOR acc"
    );
    println!("{}", "-".repeat(58));
    for load in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4] {
        let cr = measure(
            RoutingKind::Adaptive { vcs: 2 },
            ProtocolKind::Cr,
            load,
        );
        let dor = measure(
            RoutingKind::Dor { lanes: 1 },
            ProtocolKind::Baseline,
            load,
        );
        println!(
            "{load:>8.2} | {:>10.1} {:>10.3} | {:>10.1} {:>10.3}",
            cr.mean_latency(),
            cr.accepted_flits_per_node_cycle,
            dor.mean_latency(),
            dor.accepted_flits_per_node_cycle,
        );
    }
    println!(
        "\nThe shape to look for: comparable zero-load latency, and CR \
         sustaining accepted throughput at offered loads where DOR has \
         saturated."
    );
}
