//! Fault-tolerant CR as a reliable message layer: a node streams a
//! sequence of messages across a network that corrupts flits *and* has
//! dead links, and every message arrives exactly once, in order,
//! uncorrupted — with no software retry layer and no acknowledgement
//! packets.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_delivery
//! ```

use compressionless_routing::prelude::*;

fn main() {
    let topo = KAryNCube::torus(4, 2);

    // A hostile environment: one flit in ~2000 corrupted in flight,
    // plus a dead channel right on the shortest path.
    let mut faults = FaultModel::new();
    faults.set_transient_rate(5e-4);
    let a = topo.node_at(&[0, 0]);
    let b = topo.node_at(&[3, 3]);
    let first_hop = topo.node_at(&[1, 0]);
    for l in topo.links() {
        if (l.src == a && l.dst == first_hop) || (l.src == first_hop && l.dst == a) {
            faults.kill_link(l.id);
        }
    }

    let mut net = NetworkBuilder::new(topo)
        .routing(RoutingKind::AdaptiveMisroute {
            vcs: 1,
            extra_hops: 6,
        })
        .protocol(ProtocolKind::Fcr)
        .faults(faults)
        .timeout(32)
        .warmup(0)
        .seed(2026)
        .build();
    net.set_record_deliveries(true);

    // Stream 50 messages from corner to corner.
    const STREAM: usize = 50;
    for _ in 0..STREAM {
        net.send_message(a, b, 12);
    }

    let drained = net.run_until_quiescent(200_000);
    assert!(drained, "the stream must fully drain");

    let log = net.take_delivery_log();
    let counters = *net.counters();

    println!("== FCR reliable delivery over a faulty network ==");
    println!("sent               : {STREAM} messages ({} flits each)", 12);
    println!("delivered          : {}", log.len());
    println!(
        "in order           : {}",
        log.windows(2).all(|w| w[0].msg_seq < w[1].msg_seq)
    );
    println!(
        "corrupt deliveries : {}",
        counters.corrupt_payload_delivered
    );
    println!("flits corrupted    : {}", counters.flits_corrupted);
    println!("fault recoveries   : {}", counters.kills_fault);
    println!("timeout recoveries : {}", counters.kills_source_timeout);
    println!("retransmissions    : {}", counters.retransmissions);
    let retried = log.iter().filter(|m| m.attempts > 1).count();
    println!("messages needing >1 attempt: {retried}");

    assert_eq!(log.len(), STREAM, "exactly-once delivery");
    assert!(log.iter().all(|m| !m.corrupt), "data integrity");
    assert!(
        log.windows(2).all(|w| w[0].msg_seq < w[1].msg_seq),
        "order preservation"
    );
}
