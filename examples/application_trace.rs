//! Trace-driven comparison: how fast does an application's
//! communication finish on CR versus dimension-order routing — and
//! *when does each win*?
//!
//! Two bulk-synchronous workloads:
//!
//! * **stencil** — phases of halo exchange with the four torus
//!   neighbors plus periodic all-to-one reductions. Messages are
//!   short and local: adaptivity has nothing to exploit (distance-1
//!   paths are unique), while CR still pays its padding tax and the
//!   reduction hotspot provokes spurious timeouts. DOR should win.
//! * **transform** — rounds of random-permutation exchange with long
//!   messages (FFT/transpose-style). Paths are long and skewed,
//!   messages exceed `I_min` (no padding): adaptivity pays off. CR
//!   should win.
//!
//! Honest accounting like this is exactly what the paper's Section 7
//! discussion anticipates: padding is CR's real cost, and it is a
//! *short-message* cost.
//!
//! ```sh
//! cargo run --release --example application_trace
//! ```

use compressionless_routing::prelude::*;
use compressionless_routing::traffic::Trace;

fn stencil_trace(topo: &KAryNCube) -> Trace {
    let n = topo.num_nodes();
    let mut trace = Trace::default();
    let mut t = 0u64;
    for step in 0..6 {
        trace = trace.chain(&Trace::neighbor_exchange(topo, 1, 0, 16), t);
        t += 120;
        if step % 3 == 2 {
            trace = trace.chain(&Trace::reduction(n, NodeId::new(0), Cycle::ZERO, 4), t);
            t += 200;
        }
    }
    trace
}

fn transform_trace(topo: &KAryNCube) -> Trace {
    // Bit-reversal exchange rounds: the classic FFT communication
    // step, and dimension-order routing's worst nightmare (its fixed
    // paths funnel the whole permutation through a few channels).
    let n = topo.num_nodes();
    let bits = n.trailing_zeros();
    let reverse = |v: usize| {
        let mut out = 0usize;
        for b in 0..bits {
            if v & (1 << b) != 0 {
                out |= 1 << (bits - 1 - b);
            }
        }
        out
    };
    // Rounds arrive faster than the slower network can drain them, so
    // the makespan reflects sustained throughput, not a single burst.
    let mut events = Vec::new();
    let mut t = 0u64;
    for _ in 0..8 {
        for src in 0..n {
            let dst = reverse(src);
            if dst != src {
                events.push(compressionless_routing::traffic::TraceEvent {
                    at: Cycle::new(t),
                    src: NodeId::new(src as u32),
                    dst: NodeId::new(dst as u32),
                    length: 48,
                });
            }
        }
        t += 100;
    }
    Trace::from_events(events)
}

fn makespan(routing: RoutingKind, protocol: ProtocolKind, trace: &Trace) -> (u64, u64) {
    let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
        .routing(routing)
        .protocol(protocol)
        .warmup(0)
        .seed(33)
        .build();
    net.set_record_deliveries(true);
    net.schedule_trace(trace);
    assert!(net.run_until_quiescent(1_000_000), "trace must drain");
    let log = net.take_delivery_log();
    assert_eq!(log.len(), trace.len(), "every message delivered");
    let finish = log.iter().map(|m| m.delivered.as_u64()).max().unwrap_or(0);
    (finish, net.counters().kills_source_timeout)
}

fn compare(name: &str, trace: &Trace) {
    println!(
        "-- {name}: {} messages, {} payload flits, last injection at cycle {} --",
        trace.len(),
        trace.total_flits(),
        trace.end()
    );
    let (cr, kills) = makespan(RoutingKind::Adaptive { vcs: 1 }, ProtocolKind::Cr, trace);
    let (dor, _) = makespan(RoutingKind::Dor { lanes: 1 }, ProtocolKind::Baseline, trace);
    println!("CR  (adaptive, 1 VC): cycle {cr} ({kills} recoveries)");
    println!("DOR (2 VCs)         : cycle {dor}");
    println!("CR/DOR makespan     : {:.2}\n", cr as f64 / dor as f64);
}

fn main() {
    let topo = KAryNCube::torus(8, 2);
    compare("stencil (short, local, hotspot reductions)", &stencil_trace(&topo));
    compare("transform (long permutation bursts)", &transform_trace(&topo));
    println!(
        "The split verdict is the honest one: CR buys deadlock-free \
         adaptivity whose wins show on long, skewed transfers; its \
         padding makes short local messages DOR's home turf."
    );
}
