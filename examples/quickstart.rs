//! Quickstart: simulate the paper's canonical network for 10k cycles
//! and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use compressionless_routing::prelude::*;

fn main() {
    // The paper's testbed: an 8x8 torus. Minimal fully-adaptive
    // routing with a single virtual channel per port — a routing
    // relation full of cyclic dependencies that would deadlock under
    // plain wormhole switching. Compressionless Routing makes it safe
    // by construction: padded worms, source timeouts, kill-and-retry.
    let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.25)
        .warmup(1_000)
        .seed(42)
        .build();

    let report = net.run(10_000);

    println!("== Compressionless Routing quickstart ==");
    println!("{report}");
    println!();
    println!(
        "deadlock recoveries (kills): {}, all resolved by retransmission",
        report.total_kills()
    );
    assert!(!report.deadlocked);
}
