#!/usr/bin/env bash
# Compare a freshly measured BENCH_sweep.json against the committed
# baseline and fail on any benchmark whose best-case throughput
# (sim_cycles / min_ns) regressed by more than 25%.
#
# Usage: scripts/bench_compare.sh [candidate_json] [baseline_json]
#
# Defaults: candidate = target/bench/BENCH_sweep.json (the last bench
# run), baseline = BENCH_sweep.json (the committed repo-root
# snapshot). Candidate-only benchmarks are additions: reported, never
# a failure. Baseline benchmarks missing from the candidate mean the
# bench silently stopped measuring something — that fails, the same
# way a vanished test would.
#
# The gate compares *min*-derived throughput rather than the JSON's
# median-derived `cycles_per_sec` headline: on a shared host timing
# noise is strictly additive (interference only ever slows a sample
# down), so best-of-N is stable across runs where medians of
# millisecond-scale benches jitter 15-30% and would trip the gate
# stochastically. A real code regression slows every sample including
# the best one, which is exactly what the gate should catch.
set -euo pipefail
cd "$(dirname "$0")/.."

candidate="${1:-target/bench/BENCH_sweep.json}"
baseline="${2:-BENCH_sweep.json}"
threshold_pct=25

for f in "$candidate" "$baseline"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: FAIL — missing $f" >&2
        exit 1
    fi
done

# The bench harness writes one key per line, so benchmark fields can
# be extracted without a JSON parser (cycles_per_sec only ever
# appears inside a benchmark object). Benchmarks are compared per
# (name, jobs, shards) configuration — the same benchmark measured at
# a different worker or shard count is a different data point, not a
# regression of the old one. The per-benchmark `jobs`/`shards` fields
# follow `name` inside each object; the group-level `meta.jobs` line
# appears while no name is open and is ignored. Old snapshots without
# the per-benchmark fields fall back to jobs=1, shards=1. The printed
# figure is best-case throughput, sim_cycles * 1e9 / min_ns (falling
# back to the median-derived cycles_per_sec field if min_ns is ever
# absent).
extract() {
    awk '
        /"name":/ { gsub(/[",]/, "", $2); name = $2; jobs = 1; shards = 1; min = 0; cyc = 0 }
        /"jobs":/ { if (name != "") { gsub(/,/, "", $2); jobs = $2 } }
        /"shards":/ { if (name != "") { gsub(/,/, "", $2); shards = $2 } }
        /"min_ns":/ { if (name != "") { gsub(/,/, "", $2); min = $2 } }
        /"sim_cycles":/ { if (name != "") { gsub(/,/, "", $2); cyc = $2 } }
        /"cycles_per_sec":/ {
            gsub(/,/, "", $2)
            cps = $2
            if (min > 0 && cyc > 0) cps = int(cyc * 1e9 / min)
            print name "[j" jobs ",sh" shards "]", cps
            name = ""
        }
    ' "$1"
}

extract "$baseline" > /tmp/bench_baseline.$$
extract "$candidate" > /tmp/bench_candidate.$$
trap 'rm -f /tmp/bench_baseline.$$ /tmp/bench_candidate.$$' EXIT

fail=0
while read -r name base_cps; do
    new_cps="$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_candidate.$$)"
    if [ -z "$new_cps" ]; then
        echo "bench_compare: FAIL — '$name' disappeared from candidate" \
             "(retire it from the baseline explicitly if intended)" >&2
        fail=1
        continue
    fi
    if [ "$base_cps" -eq 0 ]; then
        continue
    fi
    # Integer arithmetic: regress iff new < base * (100 - threshold) / 100.
    floor=$(( base_cps * (100 - threshold_pct) / 100 ))
    if [ "$new_cps" -lt "$floor" ]; then
        echo "bench_compare: FAIL — '$name' best-case cycles/sec regressed" \
             "${base_cps} -> ${new_cps} (floor ${floor})" >&2
        fail=1
    else
        echo "bench_compare: ok — '$name' ${base_cps} -> ${new_cps}"
    fi
done < /tmp/bench_baseline.$$

while read -r name _; do
    if ! awk -v n="$name" '$1 == n { found = 1 } END { exit !found }' /tmp/bench_baseline.$$; then
        echo "bench_compare: note — '$name' is new (no baseline)"
    fi
done < /tmp/bench_candidate.$$

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench_compare: OK (no >${threshold_pct}% best-case cycles/sec regression)"
