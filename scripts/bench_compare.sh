#!/usr/bin/env bash
# Compare a freshly measured BENCH_sweep.json against the committed
# baseline and fail on any benchmark whose median-derived
# cycles_per_sec regressed by more than 25%.
#
# Usage: scripts/bench_compare.sh [candidate_json] [baseline_json]
#
# Defaults: candidate = target/bench/BENCH_sweep.json (the last bench
# run), baseline = BENCH_sweep.json (the committed repo-root
# snapshot). Candidate-only benchmarks are additions: reported, never
# a failure. Baseline benchmarks missing from the candidate mean the
# bench silently stopped measuring something — that fails, the same
# way a vanished test would. Wall-clock noise is absorbed by the
# generous threshold, which exists to catch scheduler or executor
# regressions an order smaller than the ones the active-set work
# targets.
set -euo pipefail
cd "$(dirname "$0")/.."

candidate="${1:-target/bench/BENCH_sweep.json}"
baseline="${2:-BENCH_sweep.json}"
threshold_pct=25

for f in "$candidate" "$baseline"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: FAIL — missing $f" >&2
        exit 1
    fi
done

# The bench harness writes one key per line, so `name` /
# `cycles_per_sec` pairs can be extracted without a JSON parser
# (cycles_per_sec only ever appears inside a benchmark object).
extract() {
    awk '
        /"name":/ { gsub(/[",]/, "", $2); name = $2 }
        /"cycles_per_sec":/ { gsub(/,/, "", $2); print name, $2 }
    ' "$1"
}

extract "$baseline" > /tmp/bench_baseline.$$
extract "$candidate" > /tmp/bench_candidate.$$
trap 'rm -f /tmp/bench_baseline.$$ /tmp/bench_candidate.$$' EXIT

fail=0
while read -r name base_cps; do
    new_cps="$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_candidate.$$)"
    if [ -z "$new_cps" ]; then
        echo "bench_compare: FAIL — '$name' disappeared from candidate" \
             "(retire it from the baseline explicitly if intended)" >&2
        fail=1
        continue
    fi
    if [ "$base_cps" -eq 0 ]; then
        continue
    fi
    # Integer arithmetic: regress iff new < base * (100 - threshold) / 100.
    floor=$(( base_cps * (100 - threshold_pct) / 100 ))
    if [ "$new_cps" -lt "$floor" ]; then
        echo "bench_compare: FAIL — '$name' cycles_per_sec regressed" \
             "${base_cps} -> ${new_cps} (floor ${floor})" >&2
        fail=1
    else
        echo "bench_compare: ok — '$name' ${base_cps} -> ${new_cps}"
    fi
done < /tmp/bench_baseline.$$

while read -r name _; do
    if ! awk -v n="$name" '$1 == n { found = 1 } END { exit !found }' /tmp/bench_baseline.$$; then
        echo "bench_compare: note — '$name' is new (no baseline)"
    fi
done < /tmp/bench_candidate.$$

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench_compare: OK (no >${threshold_pct}% median cycles_per_sec regression)"
