#!/usr/bin/env bash
# Tier-1 verification, run exactly as CI does: build and test the whole
# workspace offline. The workspace has zero external dependencies, so
# this must pass with an empty registry cache and no network.
set -euo pipefail
cd "$(dirname "$0")/.."

# --bench additionally runs a full-sample benchmark pass and fails on
# a >25% best-case (min_ns-derived) cycles/sec regression against the
# committed BENCH_sweep.json (see scripts/bench_compare.sh).
run_bench=0
for arg in "$@"; do
    case "$arg" in
        --bench) run_bench=1 ;;
        *) echo "verify: unknown flag '$arg' (supported: --bench)" >&2; exit 2 ;;
    esac
done

# Warnings are defects in CI: fail the build on any of them.
export RUSTFLAGS="-D warnings"

cargo build --release --offline --workspace

# Static analysis: determinism, hermeticity, unsafe, panic- and
# trace-discipline rules over every source file (DESIGN.md §9). Any
# finding fails verification.
lint_json="$(mktemp)"
if ! ./target/release/cr-lint --json > "$lint_json"; then
    echo "verify: FAIL — cr-lint found violations:" >&2
    cat "$lint_json" >&2
    rm -f "$lint_json"
    exit 1
fi
rm -f "$lint_json"
echo "verify: cr-lint clean"

# Exhaustive protocol checking (DESIGN.md §14): the cr-check battery
# must close its state spaces violation-free within a fixed budget,
# every mutation must yield a counterexample, the --json report must
# be byte-stable across runs, and an emitted counterexample must
# replay.
check_dir="$(mktemp -d)"
./target/release/cr-check --all --budget 200000 --json > "$check_dir/check1.json"
./target/release/cr-check --all --budget 200000 --json > "$check_dir/check2.json"
if ! diff -q "$check_dir/check1.json" "$check_dir/check2.json" > /dev/null; then
    echo "verify: FAIL — cr-check --json output is not byte-stable" >&2
    diff "$check_dir/check1.json" "$check_dir/check2.json" | head -40 >&2
    rm -rf "$check_dir"
    exit 1
fi
if ! ./target/release/cr-check --mutate all --budget 200000 \
        --emit-cex "$check_dir/cex.json" > /dev/null
then
    # Mutations are *expected* to find violations, so a passing run
    # exits 0; any nonzero status means one failed to falsify.
    echo "verify: FAIL — a cr-check mutation did not produce its counterexample" >&2
    rm -rf "$check_dir"
    exit 1
fi
./target/release/cr-check --replay "$check_dir/cex.json" > /dev/null
rm -rf "$check_dir"
echo "verify: cr-check battery closed, mutations falsified, counterexample replayed"

cargo test -q --offline --workspace

# Documentation is part of tier-1: broken intra-doc links or missing
# rustdoc (cr-topology and cr-router deny missing_docs) fail verify.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace > /dev/null
echo "verify: rustdoc clean under -D warnings"

# Parallel sweeps must be bit-identical to serial: diff the full
# --tiny experiment battery between --jobs 1 and the default
# (all-cores) executor.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/all --tiny --jobs 1 > "$tmpdir/tiny_serial.txt"
./target/release/all --tiny > "$tmpdir/tiny_parallel.txt"
if ! diff -q "$tmpdir/tiny_serial.txt" "$tmpdir/tiny_parallel.txt" > /dev/null; then
    echo "verify: FAIL — parallel --tiny output differs from serial" >&2
    diff "$tmpdir/tiny_serial.txt" "$tmpdir/tiny_parallel.txt" | head -40 >&2
    exit 1
fi
echo "verify: parallel --tiny output identical to serial"

# The sharded stepper must be byte-identical too: the same battery at
# --shards 4 (spatial sharding, DESIGN.md §12) against the serial run.
./target/release/all --tiny --jobs 1 --shards 4 > "$tmpdir/tiny_sharded.txt"
if ! diff -q "$tmpdir/tiny_serial.txt" "$tmpdir/tiny_sharded.txt" > /dev/null; then
    echo "verify: FAIL — --shards 4 --tiny output differs from serial" >&2
    diff "$tmpdir/tiny_serial.txt" "$tmpdir/tiny_sharded.txt" | head -40 >&2
    exit 1
fi
echo "verify: sharded --tiny output identical to serial"

# Live churn is stepper-independent (DESIGN.md §13): the churn storm
# runner must produce byte-identical output on the serial active-set
# stepper, the sharded stepper, and the dense reference stepper.
./target/release/churn --tiny --jobs 1 \
    --emit-plan "$tmpdir/churn_plan.json" > "$tmpdir/churn_serial.txt"
./target/release/churn --tiny --jobs 1 --shards 4 > "$tmpdir/churn_sharded.txt"
./target/release/churn --tiny --jobs 1 --dense > "$tmpdir/churn_dense.txt"
if ! diff -q "$tmpdir/churn_serial.txt" "$tmpdir/churn_sharded.txt" > /dev/null; then
    echo "verify: FAIL — churn --shards 4 output differs from serial" >&2
    diff "$tmpdir/churn_serial.txt" "$tmpdir/churn_sharded.txt" | head -40 >&2
    exit 1
fi
if ! diff -q "$tmpdir/churn_serial.txt" "$tmpdir/churn_dense.txt" > /dev/null; then
    echo "verify: FAIL — churn --dense output differs from the active stepper" >&2
    diff "$tmpdir/churn_serial.txt" "$tmpdir/churn_dense.txt" | head -40 >&2
    exit 1
fi
echo "verify: churn storm identical across serial/sharded/dense steppers"

# And a replayed --churn plan must be stepper-independent on an
# unrelated runner too: feed the emitted storm plan to fig09 and diff
# serial against sharded.
./target/release/fig09 --tiny --jobs 1 \
    --churn "$tmpdir/churn_plan.json" > "$tmpdir/fig09_churn_serial.txt"
./target/release/fig09 --tiny --jobs 1 --shards 4 \
    --churn "$tmpdir/churn_plan.json" > "$tmpdir/fig09_churn_sharded.txt"
if ! diff -q "$tmpdir/fig09_churn_serial.txt" "$tmpdir/fig09_churn_sharded.txt" > /dev/null; then
    echo "verify: FAIL — fig09 --churn output differs between serial and --shards 4" >&2
    diff "$tmpdir/fig09_churn_serial.txt" "$tmpdir/fig09_churn_sharded.txt" | head -40 >&2
    exit 1
fi
echo "verify: fig09 under a replayed --churn plan identical serial vs sharded"

# Tracing must be record-only: a runner's measured output is
# byte-identical with and without --trace, and the dumped JSON-lines
# trace parses with the full protocol lifecycle present
# (kill / retransmit_scheduled / deliver).
./target/release/fig11 --tiny --jobs 1 > "$tmpdir/fig11_plain.txt"
./target/release/fig11 --tiny --jobs 1 --trace "$tmpdir/fig11_trace.jsonl" \
    > "$tmpdir/fig11_traced.txt"
if ! diff -q "$tmpdir/fig11_plain.txt" "$tmpdir/fig11_traced.txt" > /dev/null; then
    echo "verify: FAIL — --trace changed fig11 output" >&2
    diff "$tmpdir/fig11_plain.txt" "$tmpdir/fig11_traced.txt" | head -40 >&2
    exit 1
fi
./target/release/trace_check "$tmpdir/fig11_trace.jsonl"
echo "verify: fig11 output unchanged by --trace; trace dump validated"

# Bench smoke: regenerate BENCH_sweep.json cheaply and check its
# schema (group/meta/benchmarks with the documented fields).
CR_BENCH_SAMPLES=3 cargo bench --offline -p cr-bench --bench sweep > /dev/null
sweep_json="target/bench/BENCH_sweep.json"
for field in '"group"' '"meta"' '"elapsed_ns"' '"jobs"' '"shards"' '"benchmarks"' \
             '"median_ns"' '"sim_cycles"' '"cycles_per_sec"'; do
    if ! grep -q "$field" "$sweep_json"; then
        echo "verify: FAIL — $sweep_json missing $field" >&2
        exit 1
    fi
done
echo "verify: $sweep_json regenerated and schema-checked"

# Performance gate (opt-in: slow). First prove the CR_SHARDS x CR_JOBS
# environment matrix is result-invariant on the tiny battery (the env
# plumbing is how the bench entries select their configurations), then
# re-measure at full sample counts and demand no benchmark lost more
# than 25% of its baseline cycles_per_sec.
if [ "$run_bench" -eq 1 ]; then
    for jobs in 1 2; do
        for shards in 1 4; do
            CR_JOBS=$jobs CR_SHARDS=$shards ./target/release/all --tiny \
                > "$tmpdir/tiny_j${jobs}_sh${shards}.txt"
            if ! diff -q "$tmpdir/tiny_serial.txt" \
                    "$tmpdir/tiny_j${jobs}_sh${shards}.txt" > /dev/null; then
                echo "verify: FAIL — CR_JOBS=$jobs CR_SHARDS=$shards --tiny output differs from serial" >&2
                diff "$tmpdir/tiny_serial.txt" "$tmpdir/tiny_j${jobs}_sh${shards}.txt" | head -40 >&2
                exit 1
            fi
        done
    done
    echo "verify: CR_SHARDS x CR_JOBS matrix (jobs 1,2 x shards 1,4) identical to serial"
    cargo bench --offline -p cr-bench --bench sweep > /dev/null
    ./scripts/bench_compare.sh
fi

echo "verify: OK"
