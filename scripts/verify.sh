#!/usr/bin/env bash
# Tier-1 verification, run exactly as CI does: build and test the whole
# workspace offline. The workspace has zero external dependencies, so
# this must pass with an empty registry cache and no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "verify: OK"
