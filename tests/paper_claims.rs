//! Workspace-level integration tests: the paper's quantitative claims
//! at reduced scale, exercised through the public facade crate.

use compressionless_routing::prelude::*;

fn sweep_peak(routing: RoutingKind, protocol: ProtocolKind, seed: u64) -> f64 {
    let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
        .routing(routing)
        .protocol(protocol)
        .buffer_depth(2)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.9)
        .warmup(1_500)
        .seed(seed)
        .build();
    net.run(8_000).accepted_flits_per_node_cycle
}

/// The paper's central performance claim: with equal resources (two
/// virtual channels, 2-flit buffers), CR's peak throughput beats
/// dimension-order routing on the 8x8 torus.
#[test]
fn cr_beats_dor_at_equal_resources() {
    let cr = sweep_peak(RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr, 5);
    let dor = sweep_peak(RoutingKind::Dor { lanes: 1 }, ProtocolKind::Baseline, 5);
    assert!(
        cr > dor * 1.1,
        "CR peak {cr:.3} should clearly beat DOR peak {dor:.3}"
    );
}

/// "A CR network with 2-flit deep buffers matches the performance of a
/// DOR network with 16-flit deep buffers" — the Fig. 14(a)/(b)
/// headline, checked at peak throughput.
#[test]
fn cr_shallow_buffers_match_deep_dor() {
    let cr2 = sweep_peak(RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr, 6);
    let dor16 = {
        let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
            .routing(RoutingKind::Dor { lanes: 1 })
            .protocol(ProtocolKind::Baseline)
            .buffer_depth(16)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.9)
            .warmup(1_500)
            .seed(6)
            .build();
        net.run(8_000).accepted_flits_per_node_cycle
    };
    assert!(
        cr2 > dor16 * 0.85,
        "CR with 2-flit buffers ({cr2:.3}) should be in deep-DOR's league ({dor16:.3})"
    );
}

/// The builder applies the paper's timeout rule:
/// `timeout = message length x number of virtual channels`.
#[test]
fn default_timeout_follows_the_paper_rule() {
    let net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 3 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.1)
        .build();
    assert_eq!(net.timeout(), 16 * 3);

    // An explicit timeout wins.
    let net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 3 })
        .protocol(ProtocolKind::Cr)
        .timeout(77)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.1)
        .build();
    assert_eq!(net.timeout(), 77);
}

/// Padding overhead is independent of the virtual-channel count (the
/// paper: "since CR depends only on the distance in flits, padding
/// overhead is independent of the number of virtual channels").
#[test]
fn padding_overhead_is_vc_independent() {
    let overhead = |vcs: usize| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
            .routing(RoutingKind::Adaptive { vcs })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.1)
            .warmup(500)
            .seed(9)
            .build();
        net.run(4_000).pad_overhead()
    };
    let one = overhead(1);
    let four = overhead(4);
    assert!(one > 0.0, "8-flit messages on an 8x8 torus must pad");
    assert!(
        (one - four).abs() < 0.05,
        "pad overhead should not depend on VCs: {one:.3} vs {four:.3}"
    );
}

/// Messages longer than every path's `I_min` incur zero padding.
#[test]
fn long_messages_never_pad() {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(64), 0.1)
        .warmup(200)
        .seed(10)
        .build();
    // diameter 4: I_min = 2 + 4*(2+1) = 14 << 64.
    let report = net.run(3_000);
    assert_eq!(report.counters.pad_flits_injected, 0);
    assert!(report.counters.payload_flits_injected > 0);
}

/// The experiments facade is reachable through the root crate and
/// produces consistent tables.
#[test]
fn experiments_run_through_the_facade() {
    use compressionless_routing::experiments::{fig09, Scale};
    let res = fig09::run(&fig09::Config {
        scale: Scale::Tiny,
        message_lengths: vec![8],
        seed: 3,
    });
    assert_eq!(res.rows.len(), Scale::Tiny.loads().len());
    let table = res.to_string();
    assert!(table.contains("offered"));
}

/// Baseline DOR on a *mesh* needs only one VC class and still never
/// deadlocks (the torus is what forces the dateline scheme).
#[test]
fn dor_mesh_single_class_is_safe() {
    let mut net = NetworkBuilder::new(KAryNCube::mesh(4, 2))
        .routing(RoutingKind::Dor { lanes: 1 })
        .protocol(ProtocolKind::Baseline)
        .deadlock_threshold(2_000)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.35)
        .seed(12)
        .build();
    let report = net.run(15_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 300);
}

/// Tornado traffic on a torus is the classic DOR-killer; CR's
/// adaptivity sustains much more of it.
#[test]
fn cr_crushes_dor_on_tornado_traffic() {
    let peak = |routing, protocol| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
            .routing(routing)
            .protocol(protocol)
            .traffic(TrafficPattern::Tornado, LengthDistribution::Fixed(16), 0.9)
            .warmup(1_500)
            .seed(13)
            .build();
        net.run(8_000).accepted_flits_per_node_cycle
    };
    let cr = peak(RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr);
    let dor = peak(RoutingKind::Dor { lanes: 1 }, ProtocolKind::Baseline);
    assert!(
        cr > dor,
        "adaptive CR ({cr:.3}) should beat DOR ({dor:.3}) on tornado"
    );
}

/// Why adaptivity wins: on skewed (transpose) traffic, CR's adaptive
/// routing spreads load across channels far more evenly than
/// dimension-order routing, whose fixed paths concentrate on a few
/// hot links.
#[test]
fn adaptive_routing_balances_channel_load() {
    let imbalance = |routing, protocol| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
            .routing(routing)
            .protocol(protocol)
            .traffic(TrafficPattern::Transpose, LengthDistribution::Fixed(16), 0.3)
            .warmup(1_000)
            .seed(21)
            .build();
        net.run(6_000).channel_imbalance()
    };
    let cr = imbalance(RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr);
    let dor = imbalance(RoutingKind::Dor { lanes: 1 }, ProtocolKind::Baseline);
    assert!(
        cr < dor,
        "adaptive imbalance {cr:.2} should be below DOR's {dor:.2}"
    );
}
