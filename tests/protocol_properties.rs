//! Property-based end-to-end tests: for randomly drawn topologies,
//! workloads, protocols and fault plans, the delivery invariants of
//! Compressionless Routing must hold.

use compressionless_routing::prelude::*;
use cr_sim::check::{check, Config, Source};
use std::collections::HashMap;

/// A randomly drawn scenario.
#[derive(Debug, Clone)]
struct Scenario {
    radix: usize,
    torus: bool,
    vcs: usize,
    buffer_depth: usize,
    payload_len: u32,
    messages: Vec<(u32, u32)>, // (src, dst) pairs
    timeout: u64,
    inject_channels: usize,
    eject_channels: usize,
    seed: u64,
}

fn scenario(src: &mut Source<'_>) -> Scenario {
    let radix = src.usize_in(2..5);
    let torus = src.bool_any();
    let vcs = src.usize_in(1..3);
    let buffer_depth = src.usize_in(1..4);
    let payload_len = src.u32_in(2..24);
    let raw = src.vec_with(1..40, |s| (s.u32_in(0..16), s.u32_in(0..16)));
    let timeout = src.u64_in(4..64);
    let inject_channels = src.usize_in(1..3);
    let eject_channels = src.usize_in(1..3);
    let seed = src.u64_any();
    let n = (radix * radix) as u32;
    let messages = raw
        .into_iter()
        .map(|(s, d)| (s % n, d % n))
        .filter(|(s, d)| s != d)
        .collect();
    Scenario {
        radix,
        torus,
        vcs,
        buffer_depth,
        payload_len,
        messages,
        timeout,
        inject_channels,
        eject_channels,
        seed,
    }
}

fn build(s: &Scenario, protocol: ProtocolKind, faults: FaultModel) -> Network {
    let topo = if s.torus {
        KAryNCube::torus(s.radix, 2)
    } else {
        KAryNCube::mesh(s.radix, 2)
    };
    let mut b = NetworkBuilder::new(topo);
    b.routing(RoutingKind::Adaptive { vcs: s.vcs })
        .protocol(protocol)
        .buffer_depth(s.buffer_depth)
        .timeout(s.timeout)
        .inject_channels(s.inject_channels)
        .eject_channels(s.eject_channels)
        .warmup(0)
        .seed(s.seed)
        .faults(faults);
    b.build()
}

/// CR delivers every message exactly once, in per-pair order, on any
/// cube, any buffer depth, any timeout — and the network drains
/// completely (no leaked flits, no stuck channels).
#[test]
fn cr_exactly_once_in_order_any_configuration() {
    check(
        "cr_exactly_once_in_order_any_configuration",
        Config::cases(24),
        |src| {
            let s = scenario(src);
            let mut net = build(&s, ProtocolKind::Cr, FaultModel::new());
            net.set_record_deliveries(true);
            for &(src, dst) in &s.messages {
                net.send_message(NodeId::new(src), NodeId::new(dst), s.payload_len);
            }
            let drained = net.run_until_quiescent(500_000);
            assert!(drained, "network failed to drain: {s:?}");

            let log = net.take_delivery_log();
            assert_eq!(log.len(), s.messages.len(), "exactly-once");

            let mut last: HashMap<(u32, u32), u64> = HashMap::new();
            for m in &log {
                let key = (m.src.as_u32(), m.dst.as_u32());
                if let Some(prev) = last.get(&key) {
                    assert!(m.msg_seq > *prev, "order violated for {key:?}");
                }
                last.insert(key, m.msg_seq);
                assert!(!m.corrupt);
            }
            assert_eq!(net.flits_in_flight(), 0);
        },
    );
}

/// FCR under transient faults: same invariants, plus integrity.
///
/// Rates span 5e-3 .. 5e-5 per flit-hop — beyond the paper's range
/// already. (Much higher rates are still *live* — every message keeps
/// retrying with backoff — but convergence time grows geometrically,
/// which is not what this test is about.)
#[test]
fn fcr_integrity_under_random_transient_faults() {
    check(
        "fcr_integrity_under_random_transient_faults",
        Config::cases(24),
        |src| {
            let s = scenario(src);
            let rate_exp = src.u32_in(2..5);
            let mut faults = FaultModel::new();
            faults.set_transient_rate(5.0 * 10f64.powi(-(rate_exp as i32 + 1)));
            let mut net = build(&s, ProtocolKind::Fcr, faults);
            net.set_record_deliveries(true);
            for &(src, dst) in &s.messages {
                net.send_message(NodeId::new(src), NodeId::new(dst), s.payload_len);
            }
            let drained = net.run_until_quiescent(1_000_000);
            assert!(drained, "faulty network failed to drain: {s:?}");

            let log = net.take_delivery_log();
            assert_eq!(log.len(), s.messages.len(), "exactly-once despite faults");
            assert!(log.iter().all(|m| !m.corrupt), "integrity violated");
            assert_eq!(net.counters().corrupt_payload_delivered, 0);
        },
    );
}

/// After draining, every router's credits are fully restored — kill
/// teardown never leaks flow-control state.
#[test]
fn credits_conserved_after_any_cr_burst() {
    check("credits_conserved_after_any_cr_burst", Config::cases(24), |src| {
        let s = scenario(src);
        let mut net = build(&s, ProtocolKind::Cr, FaultModel::new());
        for &(src, dst) in &s.messages {
            net.send_message(NodeId::new(src), NodeId::new(dst), s.payload_len);
        }
        assert!(net.run_until_quiescent(500_000));
        let full = s.buffer_depth + 1; // + channel latch (latency 1)
        let n = net.topology().num_nodes();
        for i in 0..n {
            let node = NodeId::new(i as u32);
            let r = net.router(node);
            for p in 0..net.topology().num_ports(node) {
                let port = cr_sim::PortId::new(p as u16);
                if net.topology().neighbor(node, port).is_none() {
                    continue; // mesh boundary: no channel, credits unused
                }
                for v in 0..s.vcs {
                    let vc = cr_sim::VcId::new(v as u8);
                    assert_eq!(r.credits(port, vc), full, "leak at {node} {port} {vc}");
                    assert!(r.output_owner(port, vc).is_none());
                    assert_eq!(r.occupancy(port, vc), 0);
                }
            }
        }
    });
}

/// Determinism: any scenario replayed gives the identical report.
#[test]
fn replay_determinism() {
    check("replay_determinism", Config::cases(24), |src| {
        let s = scenario(src);
        let run = || {
            let mut net = build(&s, ProtocolKind::Cr, FaultModel::new());
            for &(src, dst) in &s.messages {
                net.send_message(NodeId::new(src), NodeId::new(dst), s.payload_len);
            }
            net.run_until_quiescent(500_000);
            let r = net.report();
            (
                r.counters.messages_delivered,
                r.counters.kills_source_timeout,
                r.counters.retransmissions,
                r.cycles,
            )
        };
        assert_eq!(run(), run());
    });
}
