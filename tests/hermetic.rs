//! Guards the zero-dependency build: every manifest in the workspace
//! may depend only on sibling path crates, never on registry packages.
//!
//! The reproduction must build with `--offline` and an empty registry
//! cache (see README "Offline / hermetic build"); a stray
//! `rand = "0.8"` in any `[dependencies]` table would silently break
//! that on the next machine. The check parses the manifests directly —
//! line-oriented, since there is (by design) no TOML crate to lean on —
//! so it also catches dependencies that are declared but never
//! imported.

use std::path::{Path, PathBuf};

/// Collects every Cargo.toml in the workspace: the root manifest plus
/// one per `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).expect("read crates/");
    for entry in entries {
        let manifest = entry.expect("read dir entry").path().join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "workspace member without a manifest: {}",
            manifest.display()
        );
        manifests.push(manifest);
    }
    assert!(manifests.len() >= 2, "no workspace members found");
    manifests
}

/// True for table headers that declare dependencies, including
/// target-specific ones like `[target.'cfg(unix)'.dependencies]`.
fn is_dependency_table(header: &str) -> bool {
    header.ends_with("dependencies]") || header.ends_with("dependencies")
}

/// Extracts `(name, spec)` lines from the dependency tables of one
/// manifest.
fn dependency_entries(text: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let mut in_dep_table = false;
    for raw in text.lines() {
        let line = raw.split_once('#').map_or(raw, |(code, _)| code).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_table = is_dependency_table(line.trim_matches(['[', ']']));
            continue;
        }
        if !in_dep_table {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        entries.push((name.trim().to_string(), spec.trim().to_string()));
    }
    entries
}

/// A dependency is hermetic iff it resolves by path: either an inline
/// `path = ...` table or a `<name>.workspace = true` reference whose
/// workspace entry is itself a path dependency (checked separately on
/// the root manifest).
fn is_hermetic(name: &str, spec: &str) -> bool {
    if name.ends_with(".workspace") || spec.contains("workspace = true") {
        return true;
    }
    spec.contains("path =") || spec.contains("path=")
}

#[test]
fn all_dependencies_are_path_dependencies() {
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        for (name, spec) in dependency_entries(&text) {
            assert!(
                is_hermetic(&name, &spec),
                "non-path dependency `{name} = {spec}` in {} — the workspace \
                 must keep building offline with an empty registry cache",
                manifest.display()
            );
        }
    }
}

#[test]
fn workspace_dependency_table_is_all_paths() {
    // The shared [workspace.dependencies] table is where a registry
    // dependency would most likely sneak back in; check it explicitly
    // so the failure names the root manifest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(&root).expect("read root Cargo.toml");
    let mut in_table = false;
    let mut checked = 0;
    for raw in text.lines() {
        let line = raw.split_once('#').map_or(raw, |(code, _)| code).trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() {
            continue;
        }
        let (name, spec) = line.split_once('=').expect("dependency line");
        assert!(
            spec.contains("path ="),
            "workspace dependency `{}` is not a path dependency: {}",
            name.trim(),
            spec.trim()
        );
        checked += 1;
    }
    assert!(checked > 0, "[workspace.dependencies] not found or empty");
}

#[test]
fn no_retired_crate_names_anywhere() {
    // The crates this workspace replaced with in-repo modules must not
    // reappear even as names (a `use rand::` would fail the build, but
    // a manifest line or doc instruction would only fail at the next
    // offline rebuild).
    let retired = [
        "rand_chacha",
        "proptest",
        "criterion",
        "serde_json",
        "serde",
    ];
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).expect("read manifest");
        for name in retired {
            assert!(
                !text.contains(name),
                "retired dependency name `{name}` appears in {}",
                manifest.display()
            );
        }
    }
}
