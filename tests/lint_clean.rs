//! The workspace must lint clean.
//!
//! Companion to `tests/hermetic.rs`: that test guards the manifests,
//! this one runs the full `cr-lint` rule set (determinism,
//! hermeticity, unsafe, panic discipline, trace discipline) over every
//! source file, in-process. `scripts/verify.sh` runs the same check
//! via the CLI (`cargo run -p cr-lint -- --json`); this copy makes a
//! plain `cargo test` catch violations too.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = cr_lint::lint_workspace(root).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "cr-lint found {} violation(s):\n{}",
        diags.len(),
        cr_lint::diagnostics::render_human(&diags)
    );
    let files = cr_lint::count_files(root).expect("workspace sources are readable");
    assert!(files > 50, "lint walk looks broken: only {files} files found");
}
