//! **Extension (Section 7 discussion)** — latency distribution under
//! CR: "repeated kills can give some messages much larger latencies,
//! increasing the variance of message latency" (the paper points to
//! the authors' bimodal-load study, reference \[32\], for modelling and
//! mitigation).
//!
//! This experiment quantifies the effect: CR's latency *tail*
//! (p95/p99/max relative to the mean) widens with load as kills and
//! retransmissions concentrate delay on unlucky messages, while
//! kill-free DOR keeps a tighter distribution until it saturates. A
//! bimodal-length workload (short messages mixed with long ones) is
//! included, mirroring reference \[32\]'s setting.

use crate::harness::{run_report, sweep, Scale};
use crate::table::{fmt_f, fmt_p, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the distribution experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Offered loads.
    pub loads: Vec<f64>,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            loads: vec![0.1, 0.2, 0.3],
            seed: 200,
        }
    }
}

/// One (network, workload, load) distribution measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"CR"` or `"DOR"`.
    pub network: &'static str,
    /// `"fixed-16"` or `"bimodal-4/64"`.
    pub workload: &'static str,
    /// Offered load.
    pub offered: f64,
    /// Mean latency.
    pub mean: f64,
    /// Latency standard deviation.
    pub std_dev: f64,
    /// 50th / 95th / 99th percentiles.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observed latency.
    pub max: f64,
    /// Kills during the window.
    pub kills: u64,
}

/// Distribution results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Results {
    let workloads: [(&'static str, LengthDistribution); 2] = [
        ("fixed-16", LengthDistribution::Fixed(16)),
        (
            "bimodal-4/64",
            LengthDistribution::Bimodal {
                short: 4,
                long: 64,
                long_fraction: 0.2,
            },
        ),
    ];
    let mut points = Vec::new();
    for (wname, lengths) in workloads {
        for &load in &cfg.loads {
            for (network, routing, protocol) in [
                ("CR", RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr),
                (
                    "DOR",
                    RoutingKind::Dor { lanes: 1 },
                    ProtocolKind::Baseline,
                ),
            ] {
                points.push((wname, lengths, load, network, routing, protocol));
            }
        }
    }
    let scale = cfg.scale;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(wname, lengths, load, network, routing, protocol)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(routing)
                        .protocol(protocol)
                        .traffic(TrafficPattern::Uniform, lengths, load)
                        .seed(seed);
                    let report = run_report(&mut b, scale);
                    Row {
                        network,
                        workload: wname,
                        offered: load,
                        mean: report.mean_latency(),
                        std_dev: report.latency.std_dev(),
                        p50: report.latency_percentiles.0,
                        p95: report.latency_percentiles.1,
                        p99: report.latency_percentiles.2,
                        max: report.latency.max(),
                        kills: report.total_kills(),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension — latency distribution (kill-induced variance)",
            &[
                "network", "workload", "offered", "mean", "stddev", "p50", "p95", "p99", "max",
                "kills",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.network.to_string(),
                r.workload.to_string(),
                fmt_f(r.offered),
                fmt_f(r.mean),
                fmt_f(r.std_dev),
                fmt_p(r.p50),
                fmt_p(r.p95),
                fmt_p(r.p99),
                fmt_f(r.max),
                r.kills.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kills_widen_the_latency_tail() {
        let res = run(&Config {
            scale: Scale::Tiny,
            // Past CR's saturation on the tiny torus, so kills occur.
            loads: vec![0.55],
            seed: 14,
        });
        // 2 workloads x 1 load x 2 networks.
        assert_eq!(res.rows.len(), 4);
        let cr = res
            .rows
            .iter()
            .find(|r| r.network == "CR" && r.workload == "fixed-16")
            .unwrap();
        assert!(cr.kills > 0, "tail analysis needs kills to have happened");
        // The tail is heavier than the median once kills kick in.
        assert!(cr.p99 > cr.p50, "p99 {} vs p50 {}", cr.p99, cr.p50);
        assert!(cr.max >= cr.p99 as f64);
        assert!(res.to_string().contains("distribution"));
    }

    #[test]
    fn bimodal_workload_runs_on_both_networks() {
        let res = run(&Config {
            scale: Scale::Tiny,
            loads: vec![0.15],
            seed: 15,
        });
        for r in res.rows.iter().filter(|r| r.workload == "bimodal-4/64") {
            assert!(r.mean > 0.0, "{} produced no traffic", r.network);
        }
    }
}
