//! Prints the DOR / planar-adaptive / CR mesh comparison. Pass
//! `--quick` or `--tiny` to shrink the run.

use cr_experiments::{ext_par, Scale};

fn main() {
    let cfg = ext_par::Config {
        scale: Scale::from_args(),
        ..Default::default()
    };
    println!("{}", ext_par::run(&cfg));
}
