//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig14ab`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig14ab, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig14ab::Config {
        scale,
        ..Default::default()
    };
    let results = fig14ab::run(&cfg);
    println!("{results}");
}
