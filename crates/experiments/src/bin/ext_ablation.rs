//! Prints the CR mechanism ablation study. Pass `--quick` or `--tiny`
//! to shrink the run.

use cr_experiments::{ext_ablation, Scale};

fn main() {
    let cfg = ext_ablation::Config {
        scale: Scale::from_args(),
        ..Default::default()
    };
    println!("{}", ext_ablation::run(&cfg));
}
