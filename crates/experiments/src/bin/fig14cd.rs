//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig14cd`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig14cd, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig14cd::Config {
        scale,
        ..Default::default()
    };
    let results = fig14cd::run(&cfg);
    println!("{results}");
}
