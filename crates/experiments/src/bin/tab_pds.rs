//! Regenerates the paper artifact implemented by
//! [`cr_experiments::tab_pds`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{tab_pds, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = tab_pds::Config {
        scale,
        ..Default::default()
    };
    let results = tab_pds::run(&cfg);
    println!("{results}");
}
