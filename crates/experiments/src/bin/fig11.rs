//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig11`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig11, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig11::Config {
        scale,
        ..Default::default()
    };
    let results = fig11::run(&cfg);
    println!("{results}");
}
