//! Regenerates the live-churn extension implemented by
//! [`cr_experiments::churn`]: CR vs FCR vs DOR through the same seeded
//! kill-and-revive storm. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.
//!
//! Extra flags beyond the shared harness set (`--jobs`, `--shards`,
//! `--trace`, `--churn`):
//!
//! * `--emit-plan <path>` — write this run's generated storm schedule
//!   as a `--churn`-compatible JSON plan (primitive kill/revive
//!   events, expanded against the run's torus) and continue. Lets
//!   `verify.sh` replay the identical storm through other runners.
//! * `--dense` — force the dense reference stepper for every scheme
//!   (slow; twin-run diffing against the default active stepper).

use cr_experiments::{churn, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = churn::Config {
        scale,
        ..Default::default()
    };

    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let path = if a == "--emit-plan" {
            it.next().cloned()
        } else {
            a.strip_prefix("--emit-plan=").map(String::from)
        };
        if let Some(p) = path {
            // Emit primitive events only, so the plan replays
            // identically on any runner regardless of topology.
            let topo = cr_topology::KAryNCube::torus(scale.radix(), 2);
            let plan = cfg.storm().expanded(&topo).to_json().to_pretty();
            if let Err(e) = std::fs::write(&p, plan + "\n") {
                eprintln!("error: cannot write --emit-plan file {p}: {e}");
                std::process::exit(2);
            }
        }
    }

    if args.iter().any(|a| a == "--dense") {
        cr_experiments::churn::set_dense(true);
    }

    let results = churn::run(&cfg);
    println!("{results}");
}
