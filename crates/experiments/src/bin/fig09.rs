//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig09`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig09, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig09::Config {
        scale,
        ..Default::default()
    };
    let results = fig09::run(&cfg);
    println!("{results}");
}
