//! Prints the Section 5 hardware-complexity table.

use cr_experiments::tab_hardware;

fn main() {
    println!("{}", tab_hardware::run(&tab_hardware::Config::default()));
}
