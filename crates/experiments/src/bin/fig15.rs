//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig15`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig15, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig15::Config {
        scale,
        ..Default::default()
    };
    let results = fig15::run(&cfg);
    println!("{results}");
}
