//! Validates a JSON-lines event trace produced by `--trace <path>`:
//! every line must parse as a JSON object with a known `type` and an
//! `at` cycle, and the dump must contain at least one kill, one
//! scheduled retransmit and one delivery (the protocol lifecycle a
//! faulty/stressed run is expected to exhibit).
//!
//! Usage: `trace_check <path> [required_type ...]`
//!
//! Extra arguments add required event types beyond the default three.
//! Exits non-zero (with a message on stderr) on any violation.

use cr_sim::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

const KNOWN_TYPES: [&str; 9] = [
    "inject",
    "commit",
    "kill",
    "retransmit_scheduled",
    "deliver",
    "corruption_detected",
    "link_stall",
    "link_killed",
    "link_revived",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.jsonl> [required_type ...]");
        return ExitCode::FAILURE;
    };
    let mut required: Vec<String> = args.collect();
    if required.is_empty() {
        required = vec![
            "kill".to_string(),
            "retransmit_scheduled".to_string(),
            "deliver".to_string(),
        ];
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trace_check: line {}: bad JSON: {e:?}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        let Some(kind) = v.get("type").and_then(Json::as_str) else {
            eprintln!("trace_check: line {}: missing \"type\"", lineno + 1);
            return ExitCode::FAILURE;
        };
        if !KNOWN_TYPES.contains(&kind) {
            eprintln!("trace_check: line {}: unknown type {kind:?}", lineno + 1);
            return ExitCode::FAILURE;
        }
        if v.get("at").and_then(Json::as_u64).is_none() {
            eprintln!("trace_check: line {}: missing \"at\" cycle", lineno + 1);
            return ExitCode::FAILURE;
        }
        *counts.entry(kind.to_string()).or_insert(0) += 1;
    }

    let total: u64 = counts.values().sum();
    let summary: Vec<String> = counts.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!("trace_check: {total} events ({})", summary.join(" "));

    for req in &required {
        if counts.get(req).copied().unwrap_or(0) == 0 {
            eprintln!("trace_check: no {req:?} events in {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
