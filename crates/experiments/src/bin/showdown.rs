//! Prints the topology-zoo showdown: CR vs DOR vs the zero-VC
//! ordered-detour scheme across torus, mesh, fat-tree and full mesh.
//! Pass `--quick` or `--tiny` to shrink the run.

use cr_experiments::{showdown, Scale};

fn main() {
    let cfg = showdown::Config {
        scale: Scale::from_args(),
        ..Default::default()
    };
    println!("{}", showdown::run(&cfg));
}
