//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig14ef`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig14ef, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig14ef::Config {
        scale,
        ..Default::default()
    };
    let results = fig14ef::run(&cfg);
    println!("{results}");
}
