//! Regenerates every table and figure of the paper's evaluation in one
//! run. Pass `--quick` or `--tiny` to shrink the runs; the default
//! paper-scale run takes a while.

use cr_experiments::{
    churn, ext_ablation, ext_distribution, ext_par, ext_nonuniform, fig09, fig10, fig11, fig12,
    fig14ab, fig14cd, fig14ef, fig15, fig16, showdown, tab_hardware, tab_padding, tab_pds, Scale,
};

fn main() {
    let scale = Scale::from_args();
    macro_rules! run {
        ($m:ident) => {{
            let cfg = $m::Config {
                scale,
                ..Default::default()
            };
            println!("{}", $m::run(&cfg));
        }};
    }
    run!(fig09);
    run!(fig10);
    run!(fig11);
    run!(fig12);
    run!(fig14ab);
    run!(fig14cd);
    run!(fig14ef);
    run!(fig15);
    run!(fig16);
    run!(tab_pds);
    run!(tab_padding);
    println!("{}", tab_hardware::run(&tab_hardware::Config::default()));
    run!(ext_distribution);
    run!(ext_ablation);
    run!(ext_nonuniform);
    run!(ext_par);
    run!(showdown);
    run!(churn);
}
