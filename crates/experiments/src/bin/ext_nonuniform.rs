//! Regenerates the paper artifact implemented by
//! [`cr_experiments::ext_nonuniform`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{ext_nonuniform, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = ext_nonuniform::Config {
        scale,
        ..Default::default()
    };
    let results = ext_nonuniform::run(&cfg);
    println!("{results}");
}
