//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig10`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig10, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig10::Config {
        scale,
        ..Default::default()
    };
    let results = fig10::run(&cfg);
    println!("{results}");
}
