//! Prints the kill-induced latency-distribution analysis. Pass
//! `--quick` or `--tiny` to shrink the run.

use cr_experiments::{ext_distribution, Scale};

fn main() {
    let cfg = ext_distribution::Config {
        scale: Scale::from_args(),
        ..Default::default()
    };
    println!("{}", ext_distribution::run(&cfg));
}
