//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig12`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig12, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig12::Config {
        scale,
        ..Default::default()
    };
    let results = fig12::run(&cfg);
    println!("{results}");
}
