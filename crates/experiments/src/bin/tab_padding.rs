//! Regenerates the paper artifact implemented by
//! [`cr_experiments::tab_padding`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{tab_padding, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = tab_padding::Config {
        scale,
        ..Default::default()
    };
    let results = tab_padding::run(&cfg);
    println!("{results}");
}
