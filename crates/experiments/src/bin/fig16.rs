//! Regenerates the paper artifact implemented by
//! [`cr_experiments::fig16`]. Pass `--quick` or `--tiny` to shrink the
//! run; default is the paper-scale configuration.

use cr_experiments::{fig16, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = fig16::Config {
        scale,
        ..Default::default()
    };
    let results = fig16::run(&cfg);
    println!("{results}");
}
