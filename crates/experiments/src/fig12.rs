//! **Fig. 12 (reconstructed)** — source-based versus path-wide kill
//! detection.
//!
//! The paper's Section 7 fragment is explicit about the outcome:
//! "the path-wide schemes produce unnecessary message kills, providing
//! inferior performance". A router watching only local stall cannot
//! tell a deadlocked worm from one that is merely slow (or already
//! committed and draining); the source-based scheme never kills a
//! committed worm.

use crate::harness::{run_report, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_sim::NodeId;
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 12 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Stall threshold used by both schemes (cycles).
    pub timeout: u64,
    /// Message length in flits.
    pub message_len: usize,
    /// Extra high loads beyond the scale's default sweep (the effect
    /// lives past saturation).
    pub extra_loads: Vec<f64>,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            timeout: 32,
            message_len: 16,
            extra_loads: vec![0.5, 0.6],
            seed: 120,
        }
    }
}

/// One (scheme, pattern, load) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"uniform"` or `"hotspot"`.
    pub pattern: &'static str,
    /// `"source"` or `"path-wide"`.
    pub scheme: &'static str,
    /// The measurement.
    pub point: MeasuredPoint,
    /// Kills of already-committed worms — unnecessary by
    /// construction; the source scheme can never produce one.
    pub committed_kills: u64,
}

/// Fig. 12 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment: a uniform-traffic sweep, plus a hotspot sweep
/// where ejection queueing makes the path-wide scheme's blindness to
/// commitment really hurt (a worm parked at the hotspot's busy
/// ejection port looks exactly like a deadlocked one to a router).
pub fn run(cfg: &Config) -> Results {
    let mut loads = cfg.scale.loads();
    loads.extend_from_slice(&cfg.extra_loads);
    let patterns: [(&'static str, TrafficPattern); 2] = [
        ("uniform", TrafficPattern::Uniform),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                hotspot: NodeId::new(0),
                fraction: 0.25,
            },
        ),
    ];
    let mut points = Vec::new();
    for (pattern_name, pattern) in patterns {
        for scheme in ["source", "path-wide"] {
            for &load in &loads {
                points.push((pattern_name, pattern, scheme, load));
            }
        }
    }
    let scale = cfg.scale;
    let timeout = cfg.timeout;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(pattern_name, pattern, scheme, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .timeout(timeout)
                        .traffic(pattern, LengthDistribution::Fixed(message_len), load)
                        .seed(seed);
                    if scheme == "path-wide" {
                        b.path_wide(timeout);
                    }
                    let report = run_report(&mut b, scale);
                    Row {
                        pattern: pattern_name,
                        scheme,
                        point: MeasuredPoint::from_report(&report),
                        committed_kills: report.counters.kills_committed,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Total kills of a scheme summed over the sweep.
    pub fn total_kills_of(&self, scheme: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.point.kills)
            .sum()
    }

    /// Total unnecessary (committed-worm) kills of a scheme.
    pub fn committed_kills_of(&self, scheme: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.committed_kills)
            .sum()
    }

    /// Total deliveries of a scheme summed over the sweep.
    pub fn total_delivered_of(&self, scheme: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.point.delivered)
            .sum()
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 12 — source-based vs path-wide kill detection",
            &[
                "pattern",
                "scheme",
                "offered",
                "latency",
                "kills",
                "unnecessary",
                "delivered",
                "accepted",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.pattern.to_string(),
                r.scheme.to_string(),
                fmt_f(r.point.offered),
                fmt_f(r.point.latency),
                r.point.kills.to_string(),
                r.committed_kills.to_string(),
                r.point.delivered.to_string(),
                fmt_f(r.point.accepted),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_wide_produces_unnecessary_kills_and_source_never_does() {
        let res = run(&Config {
            scale: Scale::Tiny,
            timeout: 32,
            message_len: 16,
            extra_loads: vec![0.55],
            seed: 4,
        });
        // The source scheme cannot kill a committed worm, by
        // construction (the injector checks commitment first).
        assert_eq!(res.committed_kills_of("source"), 0);
        // The path-wide scheme kills blindly, so under congestion some
        // of its victims were committed and would have drained.
        assert!(
            res.committed_kills_of("path-wide") > 0,
            "path-wide must produce unnecessary kills"
        );
        assert!(res.total_kills_of("path-wide") > 0);
        assert!(res.total_delivered_of("source") > 0);
        assert!(res.to_string().contains("Fig. 12"));
    }
}
