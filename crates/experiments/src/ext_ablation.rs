//! **Extension — ablation study** of CR's three mechanisms, as called
//! for in DESIGN.md: what does each piece of the protocol buy?
//!
//! | Variant | What is removed | Expected outcome |
//! |---------|-----------------|------------------|
//! | `full` | nothing | the reference |
//! | `no-padding` | worms not padded to `I_min` | the deadlock-freedom argument breaks: a short worm can be fully injected while uncommitted, so nobody watches it. Wedged rings accumulate and throughput collapses (the global watchdog may stay quiet because *other* rings still move — the failure is partial wedging, which is arguably worse: it looks like congestion) |
//! | `no-commit-check` | sources kill *any* stalled worm | still correct, but committed (draining) worms get killed too: more kills, more retransmissions, lower goodput |
//! | `instant-teardown` | kill tokens walk the whole path in one cycle | an idealized infinitely-fast kill wire: bounds how much the 1-hop-per-cycle teardown latency costs |

use crate::harness::{run_report, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{Ablations, ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the ablation study.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Offered load — pick something past the knee so the mechanisms
    /// are actually exercised.
    pub load: f64,
    /// Message length in flits. Short relative to `I_min` so padding
    /// matters.
    pub message_len: usize,
    /// Flit-buffer depth per VC (shallow buffers make worms span more
    /// channels, which is where padding earns its keep).
    pub buffer_depth: usize,
    /// Traffic pattern (tornado ring traffic is the classic
    /// deadlock-former on a torus with one virtual channel).
    pub pattern: cr_traffic::TrafficPattern,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            load: 0.6,
            message_len: 4,
            buffer_depth: 1,
            pattern: TrafficPattern::Tornado,
            seed: 210,
        }
    }
}

/// One ablation variant's measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label.
    pub variant: &'static str,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Ablation results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the study.
pub fn run(cfg: &Config) -> Results {
    let variants: [(&'static str, Ablations); 4] = [
        ("full", Ablations::default()),
        (
            "no-padding",
            Ablations {
                disable_padding: true,
                ..Default::default()
            },
        ),
        (
            "no-commit-check",
            Ablations {
                ignore_commitment: true,
                ..Default::default()
            },
        ),
        (
            "instant-teardown",
            Ablations {
                instant_teardown: true,
                ..Default::default()
            },
        ),
    ];
    let scale = cfg.scale;
    let load = cfg.load;
    let message_len = cfg.message_len;
    let buffer_depth = cfg.buffer_depth;
    let pattern = cfg.pattern;
    let seed = cfg.seed;
    let rows = sweep(
        variants
            .into_iter()
            .map(|(name, ablations)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .buffer_depth(buffer_depth)
                        .ablations(ablations)
                        .deadlock_threshold((scale.cycles() / 5).max(500))
                        .traffic(pattern, LengthDistribution::Fixed(message_len), load)
                        .seed(seed);
                    let report = run_report(&mut b, scale);
                    Row {
                        variant: name,
                        point: MeasuredPoint::from_report(&report),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// The row for a variant.
    pub fn row(&self, variant: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.variant == variant)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Ablation — what each CR mechanism contributes",
            &[
                "variant",
                "deadlocked",
                "accepted",
                "latency",
                "kills",
                "retx",
                "pad%",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.variant.to_string(),
                r.point.deadlocked.to_string(),
                fmt_f(r.point.accepted),
                fmt_f(r.point.latency),
                r.point.kills.to_string(),
                r.point.retransmissions.to_string(),
                fmt_f(r.point.pad_overhead * 100.0),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_padding_wedges_rings_and_collapses_throughput() {
        // Tornado ring traffic, 4-flit worms, shallow buffers: every
        // unpadded worm is unwatched once injected, and the rings
        // wedge.
        let res = run(&Config {
            scale: Scale::Tiny,
            load: 0.6,
            message_len: 4,
            buffer_depth: 1,
            pattern: TrafficPattern::Tornado,
            seed: 16,
        });
        let full = res.row("full").unwrap();
        let unpadded = res.row("no-padding").unwrap();
        assert!(!full.point.deadlocked, "the real protocol must survive");
        assert!(
            unpadded.point.accepted < full.point.accepted * 0.85,
            "unpadded throughput should collapse ({:.3} vs {:.3})",
            unpadded.point.accepted,
            full.point.accepted
        );
    }

    #[test]
    fn ignoring_commitment_wastes_work() {
        // Long messages (> I_min) under uniform traffic: the window
        // between commitment and completion is where the blind scheme
        // kills worms that would have drained.
        let res = run(&Config {
            scale: Scale::Tiny,
            load: 0.45,
            message_len: 16,
            buffer_depth: 1,
            pattern: TrafficPattern::Uniform,
            seed: 16,
        });
        let full = res.row("full").unwrap();
        let blind = res.row("no-commit-check").unwrap();
        assert!(!blind.point.deadlocked, "still correct, just wasteful");
        assert!(
            blind.point.kills > full.point.kills,
            "killing committed worms means more kills ({} vs {})",
            blind.point.kills,
            full.point.kills
        );
    }

    #[test]
    fn instant_teardown_is_no_worse() {
        let res = run(&Config {
            scale: Scale::Tiny,
            ..Default::default()
        });
        let full = res.row("full").unwrap();
        let instant = res.row("instant-teardown").unwrap();
        assert!(!instant.point.deadlocked);
        // Faster channel release can only help throughput (within
        // noise).
        assert!(instant.point.accepted >= full.point.accepted * 0.9);
    }
}
