//! **Extension — live fault churn** (DESIGN.md §13).
//!
//! The paper evaluates FCR against *static* fault plans: links die
//! before cycle zero and stay dead. Real fabrics lose and regain
//! channels while traffic is in flight. This experiment subjects CR,
//! FCR, and oblivious DOR to the same seeded kill-and-revive storm
//! (regional outages: every link touching a region dies for a window,
//! then comes back) and measures what the paper's protocol machinery
//! actually buys:
//!
//! * **exactly-once delivery** — a finite scheduled workload is
//!   offered, the network is drained to quiescence, and the delivered
//!   message set is compared against the offered set (message ids are
//!   dense, so the check is exact);
//! * **time-to-drain per event** — from each churn event's fire cycle
//!   until every message it stranded has been delivered
//!   ([`cr_core::ChurnSummary`]);
//! * **storm survival** — whether the network drains at all, and
//!   whether anything corrupt reached a receiver.
//!
//! Expected shape: FCR delivers everything exactly once (kills,
//! retransmissions, and misrouting absorb the storm); plain CR drains
//! but can hand corrupt payloads to receivers (it does not detect
//! faults); DOR either wedges in the dead region or delivers corrupt
//! flits, depending on where the storm lands.

use crate::harness::{build_traced, finish_run, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind, SimReport};
use cr_faults::ChurnSchedule;
use cr_sim::{Cycle, SimRng};
use cr_traffic::Trace;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Session-wide dense-stepper override (the runner's `--dense` flag):
/// every scheme runs on the dense reference stepper instead of the
/// active scheduler. Results must be byte-identical either way — the
/// flag exists so `verify.sh` can twin-run and diff.
static DENSE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the dense reference stepper for subsequent
/// [`run`] calls.
pub fn set_dense(on: bool) {
    DENSE.store(on, Ordering::Relaxed);
}

/// Parameters for the churn storm run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size (fixes the torus radix and the storm/traffic windows).
    pub scale: Scale,
    /// Number of regional outages in the storm.
    pub outages: usize,
    /// Maximum outage radius in hops (0 = a single node's links).
    pub max_radius: u32,
    /// Shortest and longest outage durations in cycles.
    pub down_range: (u64, u64),
    /// Number of permutation-traffic waves offered across the storm.
    pub waves: usize,
    /// Message length in flits.
    pub message_len: u32,
    /// Misrouting hop budget for the FCR scheme.
    pub misroute_budget: u16,
    /// Random seed (storm placement and traffic permutations).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            outages: 6,
            max_radius: 1,
            down_range: (300, 600),
            waves: 48,
            message_len: 16,
            misroute_budget: 8,
            seed: 0xC4A2,
        }
    }
}

impl Config {
    /// The storm schedule this configuration generates — deterministic
    /// per seed, shared by every scheme so all three face identical
    /// churn. Kills land in the first half of the nominal run window;
    /// every outage revives by `window_end + max_down`, so a drained
    /// run always ends fault-free.
    pub fn storm(&self) -> ChurnSchedule {
        let topo = cr_topology::KAryNCube::torus(self.scale.radix(), 2);
        let cycles = self.scale.cycles();
        let mut schedule = ChurnSchedule::new();
        schedule.random_regional_outages(
            &topo,
            self.outages,
            Cycle::new(cycles / 10),
            Cycle::new(cycles / 2),
            self.max_radius,
            self.down_range.0,
            self.down_range.1,
            &mut SimRng::from_seed(self.seed ^ 0x5708),
        );
        schedule
    }

    /// The finite scheduled workload: `waves` random permutations
    /// spread across the storm window, so traffic is alive before,
    /// during, and after every outage.
    pub fn workload(&self) -> Trace {
        let nodes = self.scale.radix() * self.scale.radix();
        let span = self.scale.cycles() / 2;
        let mut rng = SimRng::from_seed(self.seed ^ 0x7AFF);
        let mut trace = Trace::from_events(Vec::new());
        for w in 0..self.waves {
            let at = span * w as u64 / self.waves.max(1) as u64;
            trace = trace.chain(&Trace::permutation(nodes, Cycle::ZERO, self.message_len, &mut rng), at);
        }
        trace
    }
}

/// One scheme's survival record for the storm.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheme label (`dor`, `cr`, `fcr`).
    pub scheme: &'static str,
    /// Messages offered (trace events).
    pub offered: u64,
    /// Distinct messages delivered.
    pub delivered: u64,
    /// `true` when the delivered set is exactly the offered set — no
    /// loss and no duplicates.
    pub exactly_once: bool,
    /// Corrupt payloads accepted by receivers (FCR must show 0).
    pub corrupt_deliveries: u64,
    /// `true` when the network reached quiescence inside the drain
    /// budget.
    pub drained: bool,
    /// Churn events fired / churn events fully drained.
    pub events_fired: usize,
    /// Churn events whose stranded messages all delivered.
    pub events_drained: usize,
    /// Worst per-event time-to-drain in cycles.
    pub max_time_to_drain: u64,
    /// Worm kills of any kind.
    pub kills: u64,
    /// Retransmission attempts.
    pub retransmissions: u64,
    /// The full report (for downstream tooling).
    pub report: SimReport,
}

/// Churn storm results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per scheme, in sweep order (`dor`, `cr`, `fcr`).
    pub rows: Vec<Row>,
}

/// The compared schemes: oblivious DOR, plain CR, and full FCR with
/// misrouting.
fn schemes(misroute_budget: u16) -> [(&'static str, RoutingKind, ProtocolKind); 3] {
    [
        ("dor", RoutingKind::Dor { lanes: 2 }, ProtocolKind::Baseline),
        ("cr", RoutingKind::Adaptive { vcs: 1 }, ProtocolKind::Cr),
        (
            "fcr",
            RoutingKind::AdaptiveMisroute {
                vcs: 1,
                extra_hops: misroute_budget,
            },
            ProtocolKind::Fcr,
        ),
    ]
}

/// Runs one scheme through the shared storm + workload and distils its
/// row.
fn run_scheme(
    cfg: &Config,
    scheme: &'static str,
    routing: RoutingKind,
    protocol: ProtocolKind,
) -> Row {
    let storm = cfg.storm();
    let workload = cfg.workload();
    let offered = workload.len() as u64;

    let mut b: NetworkBuilder = cfg.scale.builder();
    b.routing(routing)
        .protocol(protocol)
        .seed(cfg.seed)
        .churn(storm);
    let mut net = build_traced(&mut b);
    if DENSE.load(Ordering::Relaxed) {
        net.set_reference_stepper(true);
    }
    net.set_record_deliveries(true);
    net.schedule_trace(&workload);

    // Drain budget: generous, so "did not drain" means wedged, not
    // impatient.
    let drained = net.run_until_quiescent(20 * cfg.scale.cycles());
    let report = finish_run(&mut net, 0);

    let mut delivered: Vec<u64> = net
        .take_delivery_log()
        .iter()
        .map(|d| d.id.as_u64())
        .collect();
    delivered.sort_unstable();
    let distinct = {
        let mut d = delivered.clone();
        d.dedup();
        d.len() as u64
    };
    let exactly_once =
        delivered == (0..offered).collect::<Vec<_>>() && net.counters().messages_generated == offered;

    Row {
        scheme,
        offered,
        delivered: distinct,
        exactly_once,
        corrupt_deliveries: report.counters.corrupt_payload_delivered,
        drained,
        events_fired: report.churn.events.len(),
        events_drained: report.churn.drained_events(),
        max_time_to_drain: report.churn.max_time_to_drain(),
        kills: report.total_kills(),
        retransmissions: report.counters.retransmissions,
        report,
    }
}

/// Runs the experiment: the same storm and workload against each
/// scheme, as independent sweep points.
pub fn run(cfg: &Config) -> Results {
    let rows = sweep(
        schemes(cfg.misroute_budget)
            .into_iter()
            .map(|(scheme, routing, protocol)| {
                let cfg = cfg.clone();
                move || run_scheme(&cfg, scheme, routing, protocol)
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Live churn — CR vs FCR vs DOR through a kill-and-revive storm",
            &[
                "scheme",
                "offered",
                "delivered",
                "exactly_once",
                "corrupt",
                "drained",
                "events",
                "events_drained",
                "max_ttd",
                "kills",
                "retransmissions",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.scheme.to_string(),
                r.offered.to_string(),
                r.delivered.to_string(),
                r.exactly_once.to_string(),
                r.corrupt_deliveries.to_string(),
                r.drained.to_string(),
                r.events_fired.to_string(),
                r.events_drained.to_string(),
                r.max_time_to_drain.to_string(),
                r.kills.to_string(),
                r.retransmissions.to_string(),
            ]);
        }
        t.fmt(f)?;
        if let Some(fcr) = self.rows.iter().find(|r| r.scheme == "fcr") {
            writeln!(
                f,
                "\nfcr storm survival: exactly_once={} drain_ratio={}",
                fcr.exactly_once,
                fmt_f(if fcr.events_fired == 0 {
                    1.0
                } else {
                    fcr.events_drained as f64 / fcr.events_fired as f64
                }),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: Scale::Tiny,
            outages: 2,
            max_radius: 0,
            down_range: (150, 250),
            waves: 4,
            message_len: 8,
            misroute_budget: 8,
            seed: 0xC4A2,
        }
    }

    #[test]
    fn storm_and_workload_are_deterministic() {
        let cfg = tiny();
        assert_eq!(
            cfg.storm().to_json().to_string(),
            cfg.storm().to_json().to_string()
        );
        assert_eq!(cfg.workload().len(), tiny().workload().len());
        assert!(cfg.storm().len() >= 1);
        assert!(cfg.workload().len() > 10);
    }

    #[test]
    fn fcr_survives_the_storm_exactly_once() {
        let res = run(&tiny());
        assert_eq!(res.rows.len(), 3);
        let fcr = res
            .rows
            .iter()
            .find(|r| r.scheme == "fcr")
            .expect("fcr row");
        assert!(fcr.drained, "FCR failed to drain the storm");
        assert!(
            fcr.exactly_once,
            "FCR lost or duplicated messages: delivered {} of {}",
            fcr.delivered, fcr.offered
        );
        assert_eq!(fcr.corrupt_deliveries, 0, "FCR delivered corrupt payload");
        assert!(fcr.events_fired > 0, "storm never fired");
        assert_eq!(
            fcr.events_drained, fcr.events_fired,
            "some churn events never drained"
        );
        assert!(res.to_string().contains("Live churn"));
    }
}
