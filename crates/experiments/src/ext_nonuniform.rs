//! **Extension** — CR versus DOR on non-uniform traffic.
//!
//! The paper measures uniform traffic and argues the rest: "CR
//! outperforms DOR with equal resources on uniform traffic, and
//! because CR includes adaptive routing, it would likely produce an
//! even larger performance difference for non-uniform traffic
//! patterns." This experiment checks that prediction on the classic
//! adversarial permutations.

use crate::harness::{saturation_throughput, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_sim::NodeId;
use cr_traffic::TrafficPattern;
use std::fmt;

/// Parameters for the non-uniform comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            message_len: 16,
            seed: 190,
        }
    }
}

/// One traffic-pattern comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pattern name.
    pub pattern: &'static str,
    /// CR peak accepted throughput.
    pub cr_peak: f64,
    /// DOR peak accepted throughput.
    pub dor_peak: f64,
}

impl Row {
    /// CR's advantage over DOR (ratio of peaks).
    pub fn advantage(&self) -> f64 {
        if self.dor_peak == 0.0 {
            f64::INFINITY
        } else {
            self.cr_peak / self.dor_peak
        }
    }
}

/// Non-uniform traffic results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the comparison.
pub fn run(cfg: &Config) -> Results {
    let hotspot = TrafficPattern::Hotspot {
        hotspot: NodeId::new(0),
        fraction: 0.2,
    };
    let patterns: Vec<(&'static str, TrafficPattern)> = vec![
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("bit-reversal", TrafficPattern::BitReversal),
        ("tornado", TrafficPattern::Tornado),
        ("hotspot-20%", hotspot),
    ];
    let mut points = Vec::new();
    for (name, pattern) in patterns {
        for network in ["CR", "DOR"] {
            points.push((name, pattern, network));
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let peaks = sweep(
        points
            .into_iter()
            .map(|(name, pattern, network)| {
                move || {
                    let peak = saturation_throughput(
                        |b| {
                            if network == "CR" {
                                b.routing(RoutingKind::Adaptive { vcs: 2 })
                                    .protocol(ProtocolKind::Cr);
                            } else {
                                b.routing(RoutingKind::Dor { lanes: 1 })
                                    .protocol(ProtocolKind::Baseline);
                            }
                        },
                        scale,
                        pattern,
                        message_len,
                        seed,
                    );
                    (name, peak)
                }
            })
            .collect(),
    );
    // Each pattern contributed a CR point then a DOR point, in order.
    let rows = peaks
        .chunks(2)
        .map(|pair| Row {
            pattern: pair[0].0,
            cr_peak: pair[0].1,
            dor_peak: pair[1].1,
        })
        .collect();
    Results { rows }
}

impl Results {
    /// The row for a pattern.
    pub fn row(&self, pattern: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.pattern == pattern)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension — CR vs DOR peak throughput by traffic pattern",
            &["pattern", "CR peak", "DOR peak", "CR/DOR"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.pattern.to_string(),
                fmt_f(r.cr_peak),
                fmt_f(r.dor_peak),
                fmt_f(r.advantage()),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptivity_wins_on_adversarial_patterns() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_len: 16,
            seed: 13,
        });
        assert_eq!(res.rows.len(), 5);
        for r in &res.rows {
            assert!(r.cr_peak > 0.0 && r.dor_peak > 0.0, "{}", r.pattern);
        }
        // On at least one adversarial pattern, CR's relative advantage
        // should exceed its uniform-traffic advantage.
        let uniform = res.row("uniform").unwrap().advantage();
        let best_adversarial = res
            .rows
            .iter()
            .filter(|r| r.pattern != "uniform")
            .map(Row::advantage)
            .fold(0.0, f64::max);
        assert!(
            best_adversarial > uniform,
            "adversarial advantage {best_adversarial:.2} vs uniform {uniform:.2}"
        );
    }
}
