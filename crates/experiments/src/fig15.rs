//! **Fig. 15 (reconstructed, from Section 6.2)** — Fault-tolerant CR
//! performance across a range of transient fault rates.
//!
//! The section fragment: "we explore the performance of Fault-tolerant
//! Compressionless Routing (FCR) with a range of fault rates. FCR
//! networks tolerate any transient faults." Expected shape: graceful
//! latency/throughput degradation as the rate rises, with **zero**
//! corrupt deliveries at every rate — integrity is the invariant, not
//! a statistic.

use crate::harness::{run_report, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_faults::FaultModel;
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 15 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Transient corruption probabilities per flit-hop.
    pub fault_rates: Vec<f64>,
    /// Offered load (flits/node/cycle).
    pub load: f64,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            fault_rates: vec![0.0, 1e-6, 1e-5, 1e-4, 1e-3],
            load: 0.2,
            message_len: 16,
            seed: 150,
        }
    }
}

/// One fault-rate measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Transient fault rate per flit-hop.
    pub fault_rate: f64,
    /// The measurement.
    pub point: MeasuredPoint,
    /// Fault-triggered kills during the window.
    pub fault_kills: u64,
    /// Corrupt payload deliveries (must be zero).
    pub corrupt_deliveries: u64,
}

/// Fig. 15 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Results {
    let points: Vec<f64> = cfg.fault_rates.clone();
    let scale = cfg.scale;
    let load = cfg.load;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|rate| {
                move || {
                    let mut faults = FaultModel::new();
                    faults.set_transient_rate(rate);
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Fcr)
                        .faults(faults)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    let report = run_report(&mut b, scale);
                    Row {
                        fault_rate: rate,
                        point: MeasuredPoint::from_report(&report),
                        fault_kills: report.counters.kills_fault,
                        corrupt_deliveries: report.counters.corrupt_payload_delivered,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 15 — FCR under transient faults (nonstop fault tolerance)",
            &[
                "fault_rate",
                "latency",
                "accepted",
                "fault_kills",
                "retx",
                "corrupt_deliveries",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                format!("{:.0e}", r.fault_rate),
                fmt_f(r.point.latency),
                fmt_f(r.point.accepted),
                r.fault_kills.to_string(),
                r.point.retransmissions.to_string(),
                r.corrupt_deliveries.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_holds_and_degradation_is_graceful() {
        let res = run(&Config {
            scale: Scale::Tiny,
            fault_rates: vec![0.0, 2e-3],
            load: 0.15,
            message_len: 12,
            seed: 8,
        });
        assert_eq!(res.rows.len(), 2);
        for r in &res.rows {
            assert_eq!(r.corrupt_deliveries, 0, "FCR integrity");
            assert!(!r.point.deadlocked);
            assert!(r.point.delivered > 0);
        }
        let clean = &res.rows[0];
        let faulty = &res.rows[1];
        assert_eq!(clean.fault_kills, 0);
        assert!(faulty.fault_kills > 0, "faults must have been recovered");
        assert!(
            faulty.point.latency > clean.point.latency,
            "recovery costs latency"
        );
        assert!(res.to_string().contains("Fig. 15"));
    }
}
