//! **Fig. 14(e),(f)** — the effect of network-interface (source/sink)
//! bandwidth on peak throughput.
//!
//! The paper's fragment: "network interface bandwidth is an important
//! factor affecting the achievable peak-throughput of CR networks …
//! when enough source and sink bandwidth is provided" CR's advantage
//! grows — and it name-checks the Intel iWarp's multichannel
//! interface. A single injection/ejection channel caps each node at
//! one flit per cycle in and out, which becomes the bottleneck before
//! the fabric does.

use crate::harness::{saturation_throughput, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::TrafficPattern;
use std::fmt;

/// Parameters for the Fig. 14(e)/(f) run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Interface channel counts to sweep (applied to both injection
    /// and ejection).
    pub channels: Vec<usize>,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            channels: vec![1, 2, 4],
            message_len: 16,
            seed: 142,
        }
    }
}

/// One (network, channels) saturation measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"CR"` or `"DOR"`.
    pub network: &'static str,
    /// Injection/ejection channels per node.
    pub channels: usize,
    /// Peak accepted throughput, payload flits/node/cycle.
    pub peak_accepted: f64,
}

/// Fig. 14(e)/(f) results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Results {
    let mut points: Vec<(&'static str, usize)> = Vec::new();
    for &channels in &cfg.channels {
        points.push(("CR", channels));
        points.push(("DOR", channels));
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(network, channels)| {
                move || {
                    let peak_accepted = saturation_throughput(
                        |b| {
                            if network == "CR" {
                                b.routing(RoutingKind::Adaptive { vcs: 2 })
                                    .protocol(ProtocolKind::Cr);
                            } else {
                                b.routing(RoutingKind::Dor { lanes: 1 })
                                    .protocol(ProtocolKind::Baseline);
                            }
                            b.inject_channels(channels).eject_channels(channels);
                        },
                        scale,
                        TrafficPattern::Uniform,
                        message_len,
                        seed,
                    );
                    Row {
                        network,
                        channels,
                        peak_accepted,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Peak throughput for a (network, channels) pair.
    pub fn peak(&self, network: &str, channels: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.network == network && r.channels == channels)
            .map(|r| r.peak_accepted)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 14(e),(f) — interface bandwidth vs peak throughput",
            &["network", "channels", "peak accepted (flits/node/cycle)"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.network.to_string(),
                r.channels.to_string(),
                fmt_f(r.peak_accepted),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_interface_channels_raise_cr_peak() {
        let res = run(&Config {
            scale: Scale::Tiny,
            channels: vec![1, 3],
            message_len: 16,
            seed: 7,
        });
        assert_eq!(res.rows.len(), 4);
        let cr1 = res.peak("CR", 1);
        let cr3 = res.peak("CR", 3);
        assert!(
            cr3 > cr1 * 1.1,
            "CR peak should rise with interface channels ({cr1:.3} -> {cr3:.3})"
        );
        assert!(res.to_string().contains("Fig. 14(e)"));
    }
}
