//! **Hardware-complexity table (Section 5)** — analytic estimates of
//! the interface hardware CR and FCR require, supporting the paper's
//! claim that "the hardware for CR and FCR networks is modest" and
//! "much simpler than that found in the Meiko CS-2 and perhaps
//! comparable to that found in the Intel Paragon and Thinking Machines
//! CM-5".
//!
//! The estimates follow the paper's Section 5 decomposition:
//!
//! * the **injector** needs a flit counter, a stall timer, the `I_min`
//!   calculation ("a few adders and a distance calculator that is also
//!   required in any other network interface"), padding logic, and a
//!   backoff timer;
//! * the **receiver** needs PAD/kill interpretation and per-source
//!   sequencing;
//! * the **router is completely standard** — CR adds *nothing* to the
//!   switch, which is the point: deadlock handling lives at the edge.

use crate::table::Table;
use cr_core::NetworkConfig;
use cr_topology::Topology;
use std::fmt;

/// Analytic hardware estimate for one network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareEstimate {
    /// Bits of the injection flit counter (counts to the largest
    /// padded worm).
    pub flit_counter_bits: u32,
    /// Bits of the stall timer (counts to the timeout).
    pub stall_timer_bits: u32,
    /// Bits of the `I_min` register/comparator.
    pub i_min_bits: u32,
    /// Adders in the `I_min` calculation (distance × per-hop storage +
    /// interface depth; per-hop storage is a small constant multiply).
    pub i_min_adders: u32,
    /// Bits of the exponential-backoff timer (counts the largest gap).
    pub backoff_timer_bits: u32,
    /// Source-side message buffer, in flits, that must be retained for
    /// retransmission (the padded worm; FCR holds it until the
    /// tail-acceptance implicit acknowledgement).
    pub retransmit_buffer_flits: u32,
    /// Receiver-side sequence-counter bits per source (order
    /// preservation window).
    pub receiver_seq_bits: u32,
    /// Extra virtual channels the *router* must implement beyond the
    /// single channel adaptive CR needs (0 for CR — the headline).
    pub extra_router_vcs: u32,
}

impl HardwareEstimate {
    /// Total interface state in bits (counters + comparators; the
    /// retransmit buffer is counted separately since it is plain RAM).
    pub fn control_bits(&self) -> u32 {
        self.flit_counter_bits
            + self.stall_timer_bits
            + self.i_min_bits
            + self.backoff_timer_bits
            + self.receiver_seq_bits
    }
}

/// Computes the estimate for a configuration on `topo`, with messages
/// up to `max_message_flits` and the given timeout.
pub fn estimate(
    topo: &dyn Topology,
    cfg: &NetworkConfig,
    max_message_flits: usize,
    timeout: u64,
) -> HardwareEstimate {
    let bits = |v: u64| 64 - v.max(1).leading_zeros();
    let i_min_max = cfg.i_min(topo.diameter() + cfg.routing.misroute_budget() as usize) as u64;
    let worm_max = (max_message_flits as u64).max(i_min_max);
    // Ethernet-style backoff tops out at slot * 2^10.
    let backoff_max = 16u64 << 10;
    HardwareEstimate {
        flit_counter_bits: bits(worm_max),
        stall_timer_bits: bits(timeout),
        i_min_bits: bits(i_min_max),
        // distance (one add per dimension from coordinate deltas) +
        // one shift-add multiply by (B + d_chan) + one add of d_inj.
        i_min_adders: 2 + 2,
        backoff_timer_bits: bits(backoff_max),
        retransmit_buffer_flits: worm_max as u32,
        receiver_seq_bits: 16, // generous sequence window per source
        extra_router_vcs: 0,   // CR's router is a plain wormhole router
    }
}

/// Parameters for the hardware table.
#[derive(Debug, Clone)]
pub struct Config {
    /// Torus radix values to tabulate (network size sweep).
    pub radices: Vec<usize>,
    /// Largest message the interface supports, in flits.
    pub max_message_flits: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            radices: vec![4, 8, 16],
            max_message_flits: 64,
        }
    }
}

/// One network-size row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Torus radix (network is radix × radix).
    pub radix: usize,
    /// The estimate.
    pub estimate: HardwareEstimate,
    /// For contrast: virtual channels a torus DOR router needs for
    /// deadlock freedom (2), and Duato's protocol (3).
    pub dor_router_vcs: u32,
    /// Duato's protocol's VC requirement.
    pub duato_router_vcs: u32,
}

/// Hardware-table results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All rows.
    pub rows: Vec<Row>,
}

/// Builds the table.
pub fn run(cfg: &Config) -> Results {
    let rows = cfg
        .radices
        .iter()
        .map(|&radix| {
            let topo = cr_topology::KAryNCube::torus(radix, 2);
            let net_cfg = NetworkConfig::default();
            let est = estimate(&topo, &net_cfg, cfg.max_message_flits, 16 * 4);
            Row {
                radix,
                estimate: est,
                dor_router_vcs: 2,
                duato_router_vcs: 3,
            }
        })
        .collect();
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Hardware complexity (Section 5) — CR interface state per node",
            &[
                "torus",
                "ctl bits",
                "retx buf (flits)",
                "I_min adders",
                "CR router VCs",
                "DOR router VCs",
                "Duato router VCs",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                format!("{0}x{0}", r.radix),
                r.estimate.control_bits().to_string(),
                r.estimate.retransmit_buffer_flits.to_string(),
                r.estimate.i_min_adders.to_string(),
                (1 + r.estimate.extra_router_vcs).to_string(),
                r.dor_router_vcs.to_string(),
                r.duato_router_vcs.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn estimates_are_modest_and_scale_logarithmically() {
        let res = run(&Config::default());
        assert_eq!(res.rows.len(), 3);
        for r in &res.rows {
            // "Modest": well under 100 bits of control state.
            assert!(
                r.estimate.control_bits() < 100,
                "control bits {} at radix {}",
                r.estimate.control_bits(),
                r.radix
            );
            assert_eq!(r.estimate.extra_router_vcs, 0, "CR router is standard");
        }
        // Quadrupling the network adds only a few counter bits.
        let small = res.rows[0].estimate.control_bits();
        let large = res.rows[2].estimate.control_bits();
        assert!(large - small <= 8, "growth {small} -> {large}");
        assert!(res.to_string().contains("Hardware"));
    }

    #[test]
    fn i_min_register_covers_the_diameter() {
        let topo = KAryNCube::torus(8, 2);
        let cfg = NetworkConfig::default();
        let est = estimate(&topo, &cfg, 64, 64);
        // diameter 8: I_min = 2 + 8*3 = 26 -> 5 bits.
        assert_eq!(est.i_min_bits, 5);
        assert_eq!(est.retransmit_buffer_flits, 64);
    }
}
