//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table with a title, also exportable as CSV.
///
/// # Examples
///
/// ```
/// use cr_experiments::Table;
///
/// let mut t = Table::new("demo", &["load", "latency"]);
/// t.row(&["0.10", "23.4"]);
/// t.row(&["0.20", "29.1"]);
/// let text = t.to_string();
/// assert!(text.contains("load"));
/// assert!(t.to_csv().starts_with("load,latency"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs columns");
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header first, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            render(f, r)?;
        }
        Ok(())
    }
}

/// Formats a latency percentile, rendering the histogram's overflow
/// sentinel as an open bound.
pub fn fmt_p(v: u64) -> String {
    if v == u64::MAX {
        ">4096".to_string()
    } else {
        v.to_string()
    }
}

/// Formats a float with sensible experiment precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("x", &["a", "long-header"]);
        t.row(&["1", "2"]);
        let s = t.to_string();
        assert!(s.contains("== x =="));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn wrong_arity_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn percentile_formatting() {
        assert_eq!(fmt_p(12), "12");
        assert_eq!(fmt_p(u64::MAX), ">4096");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.1234), "0.123");
        assert_eq!(fmt_f(23.46), "23.5");
        assert_eq!(fmt_f(1234.5), "1234");
    }
}
