//! **Extension — the adaptivity spectrum on a mesh**: dimension-order
//! (deterministic) vs planar-adaptive (partially adaptive, the
//! authors' earlier algorithm, references \[3\]/\[31\]) vs CR over minimal
//! fully-adaptive routing.
//!
//! The paper positions CR as the way to get *full* adaptivity without
//! virtual-channel cost; PAR was the authors' earlier compromise —
//! partial adaptivity bought with a fixed two-VC structure. This
//! experiment lines all three up on the 2-D mesh (PAR's home turf),
//! on uniform and on adversarial transpose traffic.
//!
//! Measured verdict (honest): on the *mesh*, both adaptives crush DOR
//! on transpose, but PAR beats CR — mesh diameters make `I_min` (and
//! so CR's padding) large, and PAR's structural deadlock freedom
//! costs nothing. CR's case is the torus (where DOR needs dateline
//! VCs and PAR does not even apply); the mesh is where its padding tax
//! is steepest. On uniform mesh traffic plain DOR wins outright —
//! consistent with the authors' own PAR evaluation (reference \[31\]),
//! which found adaptivity can lose on uniform loads.

use crate::harness::{run_report, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
use cr_topology::KAryNCube;
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the adaptivity-spectrum comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            message_len: 16,
            seed: 220,
        }
    }
}

/// One (algorithm, pattern) saturation measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Traffic pattern label.
    pub pattern: &'static str,
    /// Peak accepted throughput, payload flits/node/cycle.
    pub peak: f64,
}

/// Adaptivity-spectrum results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All rows.
    pub rows: Vec<Row>,
}

/// Runs the comparison on a mesh of the scale's radix.
pub fn run(cfg: &Config) -> Results {
    let radix = cfg.scale.radix();
    let algorithms: [(&'static str, RoutingKind, ProtocolKind); 3] = [
        ("DOR", RoutingKind::Dor { lanes: 2 }, ProtocolKind::Baseline),
        (
            "PAR",
            RoutingKind::PlanarAdaptive,
            ProtocolKind::Baseline,
        ),
        (
            "CR adaptive",
            RoutingKind::Adaptive { vcs: 2 },
            ProtocolKind::Cr,
        ),
    ];
    let patterns: [(&'static str, TrafficPattern); 2] = [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
    ];
    let mut points = Vec::new();
    for (pname, pattern) in patterns {
        for (aname, routing, protocol) in algorithms {
            points.push((pname, pattern, aname, routing, protocol));
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(pname, pattern, aname, routing, protocol)| {
                move || {
                    // saturation_throughput builds a torus by default;
                    // build a mesh network directly instead.
                    let peak = {
                        let mut b = NetworkBuilder::new(KAryNCube::mesh(radix, 2));
                        b.routing(routing)
                            .protocol(protocol)
                            .warmup(scale.warmup())
                            .traffic(pattern, LengthDistribution::Fixed(message_len), 0.95)
                            .seed(seed);
                        run_report(&mut b, scale).accepted_flits_per_node_cycle
                    };
                    Row {
                        algorithm: aname,
                        pattern: pname,
                        peak,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Peak for an (algorithm, pattern) pair.
    pub fn peak(&self, algorithm: &str, pattern: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.pattern == pattern)
            .map(|r| r.peak)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Adaptivity spectrum on the mesh — DOR vs PAR vs CR (peak accepted)",
            &["pattern", "algorithm", "peak"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.pattern.to_string(),
                r.algorithm.to_string(),
                fmt_f(r.peak),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_is_deadlock_free_and_all_compete_on_uniform() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_len: 16,
            seed: 17,
        });
        assert_eq!(res.rows.len(), 6);
        for r in &res.rows {
            assert!(r.peak > 0.05, "{} on {} collapsed: {}", r.algorithm, r.pattern, r.peak);
        }
    }

    #[test]
    fn adaptivity_beats_dor_on_transpose() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_len: 16,
            seed: 18,
        });
        let dor = res.peak("DOR", "transpose");
        let par = res.peak("PAR", "transpose");
        let cr = res.peak("CR adaptive", "transpose");
        // Both adaptives must beat deterministic routing on the
        // pattern built to defeat it; their relative order is a
        // padding-vs-structure trade-off documented in the module
        // docs.
        assert!(par > dor, "PAR {par:.3} vs DOR {dor:.3}");
        assert!(cr > dor, "CR {cr:.3} vs DOR {dor:.3}");
    }
}
