//! Shared experiment plumbing: scales, measurement points, presets,
//! and the parallel sweep executor every figure/table module routes
//! its point-sweeps through.

use cr_core::{NetworkBuilder, SimReport};
use cr_topology::KAryNCube;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Session-wide job-count override set by `--jobs N` (0 = unset, fall
/// back to `CR_JOBS` / available parallelism at sweep time).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Session-wide shard-count override set by `--shards N` (0 = unset,
/// fall back to `CR_SHARDS` / serial at build time). Shard count is an
/// execution strategy: any value produces byte-identical results
/// (DESIGN.md §12), so this knob never appears in printed output.
static SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Session-wide event-trace dump path set by `--trace <path>` (`None`
/// = tracing off, the default). Guarded by a mutex because sweeps run
/// [`measure`] points on worker threads.
static TRACE_PATH: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);

/// Ring capacity [`measure`] uses per traced run: large enough to hold
/// a full tiny/quick run's events without drops.
const TRACE_RING_CAPACITY: usize = 1 << 16;

/// Session-wide churn plan set by `--churn <plan.json>` (`None` = no
/// live churn, the default). Every network built through
/// [`build_traced`] gets a clone of the schedule. Guarded by a mutex
/// because sweeps build networks on worker threads.
static CHURN_PLAN: Mutex<Option<cr_faults::ChurnSchedule>> = Mutex::new(None);

/// Installs a churn schedule on every network subsequently built
/// through [`run_report`] / [`measure`] (the `--churn <plan.json>`
/// flag). `None` turns live churn back off.
pub fn set_churn_plan(plan: Option<cr_faults::ChurnSchedule>) {
    *CHURN_PLAN.lock().unwrap_or_else(PoisonError::into_inner) = plan;
}

/// The active session-wide churn schedule, if any.
pub fn churn_plan() -> Option<cr_faults::ChurnSchedule> {
    CHURN_PLAN
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Applies a `--churn` argument: reads and parses the plan file,
/// exiting with a diagnostic on failure — flag parsing has no caller
/// to hand the error to.
fn apply_churn_arg(p: &str) {
    let text = match std::fs::read_to_string(p) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read --churn plan {p}: {e}");
            std::process::exit(2);
        }
    };
    match cr_faults::ChurnSchedule::from_json_str(&text) {
        Ok(plan) => set_churn_plan(Some(plan)),
        Err(e) => {
            eprintln!("error: invalid --churn plan {p}: {e}");
            std::process::exit(2);
        }
    }
}

/// Points every subsequent [`measure`] at a JSON-lines trace dump (the
/// `--trace <path>` flag). The file is created (truncated) here; each
/// traced run appends its events as one JSON object per line. `None`
/// turns tracing back off.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be created; tracing stays
/// in its previous state.
pub fn set_trace_path(path: Option<std::path::PathBuf>) -> std::io::Result<()> {
    if let Some(p) = &path {
        std::fs::File::create(p)?;
    }
    *TRACE_PATH.lock().unwrap_or_else(PoisonError::into_inner) = path;
    Ok(())
}

/// Applies a `--trace` argument, exiting with a diagnostic if the dump
/// file cannot be created — flag parsing has no caller to hand the
/// error to.
fn apply_trace_arg(p: &str) {
    if let Err(e) = set_trace_path(Some(p.into())) {
        eprintln!("error: cannot create --trace file {p}: {e}");
        std::process::exit(2);
    }
}

/// Whether a `--trace` dump path is active.
pub fn trace_active() -> bool {
    TRACE_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Appends one run's drained events to the active trace file, one
/// JSON object per line (no-op when tracing is off). Runs append
/// atomically under the lock, so concurrent sweep points never
/// interleave mid-run.
fn dump_trace(net: &mut cr_core::Network) {
    let events = net.take_trace_events();
    let guard = TRACE_PATH.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(path) = guard.as_ref() else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        // cr-lint: allow(panic-discipline, reason = "mid-sweep trace-file loss is unrecoverable: --trace was an explicit operator request and a silently truncated dump would be worse than aborting")
        .expect("trace file vanished mid-run");
    let mut buf = String::new();
    for ev in &events {
        buf.push_str(&ev.to_json().to_string());
        buf.push('\n');
    }
    f.write_all(buf.as_bytes())
        // cr-lint: allow(panic-discipline, reason = "mid-sweep trace-file loss is unrecoverable: --trace was an explicit operator request and a silently truncated dump would be worse than aborting")
        .expect("trace write failed");
}

/// Pins the job count for every subsequent [`sweep`] in this process
/// (the `--jobs N` flag). `set_jobs(1)` restores the serial path.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The job count sweeps currently run with: the [`set_jobs`] override
/// if present, else `CR_JOBS`, else the machine's available
/// parallelism.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => cr_sim::pool::effective_jobs(None),
        n => n,
    }
}

/// Pins the spatial shard count for every network subsequently built
/// through [`run_report`] / [`measure`] (the `--shards N` flag).
/// `set_shards(1)` restores the serial stepper.
pub fn set_shards(shards: usize) {
    SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// The shard count runs are currently built with: the [`set_shards`]
/// override if present, else `CR_SHARDS`, else serial (1).
pub fn shards() -> usize {
    match SHARDS.load(Ordering::Relaxed) {
        0 => cr_sim::shard::effective_shards(None),
        n => n,
    }
}

/// Runs a batch of independent sweep points across worker threads.
///
/// Every experiment module builds its full parameter grid as a vector
/// of closures (each closure owns its point's seed and configuration)
/// and hands them here. Results come back in submission order, so a
/// sweep is **bit-identical under any job count** — parallelism is
/// pure wall-clock, never a result change. See `DESIGN.md`,
/// "Parallel sweeps & determinism".
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with an explicit job count (tests pin this; `1` is the
    /// exact serial path, a plain loop on the calling thread).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A runner honouring the session setting ([`set_jobs`] /
    /// `CR_JOBS` / available parallelism).
    pub fn current() -> Self {
        SweepRunner { jobs: jobs() }
    }

    /// The job count this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes the points, returning results in submission order.
    ///
    /// # Panics
    ///
    /// Re-panics (after all workers finish) if a point panicked, with
    /// its index and message — same observable outcome as the panic a
    /// serial loop would have raised.
    pub fn run<T, F>(&self, points: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        cr_sim::pool::run(self.jobs, points)
    }
}

/// Shorthand: [`SweepRunner::current`]`.run(points)`.
pub fn sweep<T, F>(points: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    SweepRunner::current().run(points)
}

/// How big an experiment run should be.
///
/// `Paper` matches the paper's 8×8 torus with long measurement
/// windows; `Quick` is for interactive runs and benches;
/// `Tiny` keeps unit tests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 4×4 torus, very short windows (unit tests).
    Tiny,
    /// 8×8 torus, short windows (benches, smoke runs).
    Quick,
    /// 8×8 torus, paper-length windows.
    Paper,
}

impl Scale {
    /// Torus radix (networks are `radix x radix`).
    pub fn radix(self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Quick | Scale::Paper => 8,
        }
    }

    /// Warmup cycles.
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Tiny => 300,
            Scale::Quick => 1_000,
            Scale::Paper => 3_000,
        }
    }

    /// Total cycles (warmup included).
    pub fn cycles(self) -> u64 {
        match self {
            Scale::Tiny => 2_000,
            Scale::Quick => 6_000,
            Scale::Paper => 23_000,
        }
    }

    /// The offered-load sweep (flits/node/cycle) for latency curves.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Tiny => vec![0.1, 0.3],
            Scale::Quick => vec![0.1, 0.2, 0.3, 0.4],
            Scale::Paper => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45],
        }
    }

    /// A builder over this scale's torus with its warmup configured.
    pub fn builder(self) -> NetworkBuilder {
        let mut b = NetworkBuilder::new(KAryNCube::torus(self.radix(), 2));
        b.warmup(self.warmup());
        b
    }

    /// Parses `--quick` / `--tiny` command-line flags (default:
    /// `Paper`).
    ///
    /// Also applies a `--jobs N` / `--jobs=N` flag (via [`set_jobs`])
    /// so every experiment binary accepts the sweep-parallelism knob
    /// without its own flag plumbing; without the flag, sweeps use
    /// `CR_JOBS` or all available cores. Likewise `--shards N` /
    /// `--shards=N` (via [`set_shards`]) selects the spatial shard
    /// count for every network built, defaulting to `CR_SHARDS` or
    /// serial. Results are identical either way — only wall clock
    /// changes. A `--churn <plan.json>` flag (via [`set_churn_plan`])
    /// installs a live kill/revive schedule on every network built;
    /// the plan's JSON schema is documented in `EXPERIMENTS.md`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--jobs" {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    set_jobs(n);
                }
            } else if let Some(n) = a.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
                set_jobs(n);
            } else if a == "--shards" {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    set_shards(n);
                }
            } else if let Some(n) = a.strip_prefix("--shards=").and_then(|v| v.parse().ok()) {
                set_shards(n);
            } else if a == "--trace" {
                if let Some(p) = it.next() {
                    apply_trace_arg(p);
                }
            } else if let Some(p) = a.strip_prefix("--trace=") {
                apply_trace_arg(p);
            } else if a == "--churn" {
                if let Some(p) = it.next() {
                    apply_churn_arg(p);
                }
            } else if let Some(p) = a.strip_prefix("--churn=") {
                apply_churn_arg(p);
            }
        }
        if args.iter().any(|a| a == "--tiny") {
            Scale::Tiny
        } else if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

/// One measured point of a sweep, distilled from a [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Offered load, flits/node/cycle.
    pub offered: f64,
    /// Accepted throughput, payload flits/node/cycle.
    pub accepted: f64,
    /// Mean message latency in cycles.
    pub latency: f64,
    /// 99th-percentile latency in cycles.
    pub p99: u64,
    /// Kills of any kind during the window.
    pub kills: u64,
    /// Retransmissions.
    pub retransmissions: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Fraction of injected flits that were padding.
    pub pad_overhead: f64,
    /// `true` if the run deadlocked.
    pub deadlocked: bool,
}

impl MeasuredPoint {
    /// Distils a report into a point at the given offered load.
    pub fn from_report(report: &SimReport) -> Self {
        MeasuredPoint {
            offered: report.offered_load,
            accepted: report.accepted_flits_per_node_cycle,
            latency: report.mean_latency(),
            p99: report.latency_percentiles.2,
            kills: report.total_kills(),
            retransmissions: report.counters.retransmissions,
            delivered: report.counters.messages_delivered,
            pad_overhead: report.pad_overhead(),
            deadlocked: report.deadlocked,
        }
    }
}

/// Runs a configured builder at one offered load and distils the
/// result.
///
/// Under an active `--trace <path>` ([`set_trace_path`]) the run is
/// built with event tracing on and its events are appended to the
/// dump file. Tracing is record-only, so the measured point is
/// identical either way.
pub fn measure(builder: &mut NetworkBuilder, scale: Scale) -> MeasuredPoint {
    MeasuredPoint::from_report(&run_report(builder, scale))
}

/// Builds the network, honouring the process-wide `--trace` sink (when
/// tracing is active the network gets a bounded event ring sized
/// [`TRACE_RING_CAPACITY`]) and the process-wide `--shards` setting.
/// Pair with [`finish_run`].
pub(crate) fn build_traced(builder: &mut NetworkBuilder) -> cr_core::Network {
    if trace_active() {
        builder.trace(TRACE_RING_CAPACITY);
    }
    if let Some(plan) = churn_plan() {
        builder.churn(plan);
    }
    match SHARDS.load(Ordering::Relaxed) {
        0 => {}
        n => {
            builder.shards(n);
        }
    }
    builder.build()
}

/// Runs a [`build_traced`] network for `cycles` and, when tracing is
/// active, appends its event ring to the trace file.
pub(crate) fn finish_run(net: &mut cr_core::Network, cycles: u64) -> cr_core::SimReport {
    let report = net.run(cycles);
    if trace_active() {
        dump_trace(net);
    }
    report
}

/// Builds and runs a network at `scale`, returning the full report.
/// Every experiment module routes its simulations through here (or
/// through [`measure`], which wraps it) so that a runner's `--trace`
/// flag captures every sweep point it executes.
pub fn run_report(builder: &mut NetworkBuilder, scale: Scale) -> cr_core::SimReport {
    let mut net = build_traced(builder);
    finish_run(&mut net, scale.cycles())
}

/// Measures peak accepted throughput: offer a saturating load and
/// report the accepted flits/node/cycle.
pub fn saturation_throughput(
    configure: impl Fn(&mut NetworkBuilder),
    scale: Scale,
    pattern: cr_traffic::TrafficPattern,
    message_len: usize,
    seed: u64,
) -> f64 {
    let mut b = scale.builder();
    configure(&mut b);
    b.traffic(
        pattern,
        cr_traffic::LengthDistribution::Fixed(message_len),
        0.95,
    )
    .seed(seed);
    run_report(&mut b, scale).accepted_flits_per_node_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::{ProtocolKind, RoutingKind};
    use cr_traffic::{LengthDistribution, TrafficPattern};

    #[test]
    fn sweep_preserves_submission_order() {
        let points: Vec<_> = (0..17u64).map(|i| move || i * 7).collect();
        let out = SweepRunner::new(4).run(points);
        assert_eq!(out, (0..17u64).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_runner_jobs_floor_is_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert_eq!(SweepRunner::new(6).jobs(), 6);
        assert!(SweepRunner::current().jobs() >= 1);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.cycles() < Scale::Quick.cycles());
        assert!(Scale::Quick.cycles() < Scale::Paper.cycles());
        assert!(Scale::Tiny.loads().len() <= Scale::Paper.loads().len());
    }

    #[test]
    fn measure_produces_sane_point() {
        let scale = Scale::Tiny;
        let mut b = scale.builder();
        b.routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
            .seed(1);
        let p = measure(&mut b, scale);
        assert!(!p.deadlocked);
        assert!(p.delivered > 50);
        assert!(p.latency > 5.0);
        assert!(p.accepted > 0.05);
        assert_eq!(p.offered, 0.2);
    }

    #[test]
    fn saturation_is_below_offered() {
        let sat = saturation_throughput(
            |b| {
                b.routing(RoutingKind::Adaptive { vcs: 1 })
                    .protocol(ProtocolKind::Cr);
            },
            Scale::Tiny,
            TrafficPattern::Uniform,
            8,
            2,
        );
        assert!(sat > 0.05 && sat < 0.95, "sat = {sat}");
    }
}
