//! **Fig. 14(a),(b)** — CR versus dimension-order routing across
//! buffer depths, both given two virtual channels.
//!
//! The paper's claim is verbatim in the fragments: "with equally given
//! two virtual channels, a CR network with 2-flit deep buffers matches
//! the performance of a DOR network with 16-flit deep buffers", and
//! increasing CR's buffer depth "only increases padding overhead
//! without performance gain".
//!
//! For CR, `timeout = message length x number of virtual channels`
//! (the Fig. 14 caption's rule, applied automatically by the builder).

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 14(a)/(b) run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// DOR buffer depths to sweep (flits per VC).
    pub dor_depths: Vec<usize>,
    /// CR buffer depths to sweep (the paper fixes 2; sweeping shows
    /// depth-insensitivity).
    pub cr_depths: Vec<usize>,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            dor_depths: vec![2, 4, 8, 16],
            cr_depths: vec![2, 4],
            message_len: 16,
            seed: 140,
        }
    }
}

/// One (network, depth, load) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"CR"` or `"DOR"`.
    pub network: &'static str,
    /// Buffer depth in flits per VC.
    pub depth: usize,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Fig. 14(a)/(b) results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment. Both networks get two virtual channels: CR
/// uses them as adaptive lanes, DOR as its two dateline classes.
pub fn run(cfg: &Config) -> Results {
    let mut points: Vec<(&'static str, usize, f64)> = Vec::new();
    for &depth in &cfg.cr_depths {
        for load in cfg.scale.loads() {
            points.push(("CR", depth, load));
        }
    }
    for &depth in &cfg.dor_depths {
        for load in cfg.scale.loads() {
            points.push(("DOR", depth, load));
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(network, depth, load)| {
                move || {
                    let mut b = scale.builder();
                    if network == "CR" {
                        b.routing(RoutingKind::Adaptive { vcs: 2 })
                            .protocol(ProtocolKind::Cr);
                    } else {
                        b.routing(RoutingKind::Dor { lanes: 1 }) // 2 VCs total on a torus
                            .protocol(ProtocolKind::Baseline);
                    }
                    b.buffer_depth(depth)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    Row {
                        network,
                        depth,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Peak accepted throughput of one (network, depth) curve.
    pub fn peak_accepted(&self, network: &str, depth: usize) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.network == network && r.depth == depth)
            .map(|r| r.point.accepted)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 14(a),(b) — CR vs DOR across buffer depths (2 VCs each)",
            &["network", "depth", "offered", "accepted", "latency", "kills"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.network.to_string(),
                r.depth.to_string(),
                fmt_f(r.point.offered),
                fmt_f(r.point.accepted),
                fmt_f(r.point.latency),
                r.point.kills.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_with_shallow_buffers_competes_with_deep_dor() {
        let res = run(&Config {
            scale: Scale::Tiny,
            dor_depths: vec![2, 16],
            cr_depths: vec![2],
            message_len: 16,
            seed: 5,
        });
        let cr2 = res.peak_accepted("CR", 2);
        let dor2 = res.peak_accepted("DOR", 2);
        let dor16 = res.peak_accepted("DOR", 16);
        assert!(cr2 > 0.0 && dor2 > 0.0 && dor16 > 0.0);
        // The paper's headline: CR at depth 2 is at least competitive
        // with shallow DOR, approaching deep DOR.
        assert!(
            cr2 >= dor2 * 0.9,
            "CR depth-2 ({cr2:.3}) should at least match DOR depth-2 ({dor2:.3})"
        );
        assert!(res.to_string().contains("Fig. 14(a)"));
    }
}
