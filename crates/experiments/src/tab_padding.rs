//! **Padding-overhead table** — CR's one real cost.
//!
//! CR pads every worm to `I_min = d_inj + D x (B + d_chan)` flits so it
//! spans its path. The paper's Section 7 fragments pin the analysis:
//! padding "depends only on the distance in flits" and "is independent
//! of the number of virtual channels"; deep networks (large channel
//! pipeline delay) make it worse. This table reports the analytic
//! expectation and the measured overhead side by side.

use crate::harness::{build_traced, finish_run, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{NetworkConfig, ProtocolKind, RoutingKind};
use cr_sim::NodeId;
use cr_topology::{KAryNCube, Topology};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the padding table.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Message lengths (flits) to sweep.
    pub message_lengths: Vec<usize>,
    /// Channel pipeline depths (network "depth") to sweep.
    pub channel_latencies: Vec<u64>,
    /// Offered load.
    pub load: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            message_lengths: vec![4, 8, 16, 32, 64],
            channel_latencies: vec![1, 2, 4],
            load: 0.1,
            seed: 180,
        }
    }
}

/// One (message length, channel latency) row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Message length in flits.
    pub message_len: usize,
    /// Channel pipeline depth in cycles.
    pub channel_latency: u64,
    /// Analytic expected overhead: `E[max(0, I_min(D) − L)] / L` over
    /// uniform destination pairs.
    pub analytic_overhead: f64,
    /// Measured overhead: pad flits / total flits injected.
    pub measured_overhead: f64,
}

/// Padding-table results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Expected padding overhead for uniform traffic on `topo` with the
/// given network parameters: average over ordered pairs of
/// `max(0, I_min(D) − L) / L`.
pub fn analytic_overhead(topo: &dyn Topology, cfg: &NetworkConfig, message_len: usize) -> f64 {
    let n = topo.num_nodes();
    let mut total = 0.0;
    let mut pairs = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let dist = topo.distance(NodeId::new(s as u32), NodeId::new(d as u32));
            let i_min = cfg.i_min(dist);
            let pad = i_min.saturating_sub(message_len);
            total += pad as f64 / message_len as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Results {
    let mut points: Vec<(u64, usize)> = Vec::new();
    for &chan in &cfg.channel_latencies {
        for &len in &cfg.message_lengths {
            points.push((chan, len));
        }
    }
    let scale = cfg.scale;
    let load = cfg.load;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(chan, len)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .channel_latency(chan)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(len), load)
                        .seed(seed);
                    let mut net = build_traced(&mut b);
                    let analytic = {
                        let topo = KAryNCube::torus(scale.radix(), 2);
                        analytic_overhead(&topo, net.config(), len)
                    };
                    let report = finish_run(&mut net, scale.cycles());
                    // Measured: pads / payload, matching the analytic
                    // definition (overhead relative to useful flits).
                    let measured = if report.counters.payload_flits_injected == 0 {
                        0.0
                    } else {
                        report.counters.pad_flits_injected as f64
                            / report.counters.payload_flits_injected as f64
                    };
                    Row {
                        message_len: len,
                        channel_latency: chan,
                        analytic_overhead: analytic,
                        measured_overhead: measured,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Padding overhead — pads per payload flit, analytic vs measured",
            &["chan_latency", "msg_len", "analytic", "measured"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.channel_latency.to_string(),
                r.message_len.to_string(),
                fmt_f(r.analytic_overhead),
                fmt_f(r.measured_overhead),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_hand_computation() {
        // 2-node torus(2,1): distance always 1. Defaults: inject 2,
        // buffer 2, chan 1 -> i_min = 2 + 1*(2+1) = 5.
        let topo = KAryNCube::torus(2, 1);
        let cfg = NetworkConfig::default();
        // L=4: pad 1 -> overhead 0.25. L=8: 0.
        assert!((analytic_overhead(&topo, &cfg, 4) - 0.25).abs() < 1e-12);
        assert_eq!(analytic_overhead(&topo, &cfg, 8), 0.0);
    }

    #[test]
    fn short_messages_pay_more_and_measured_tracks_analytic() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_lengths: vec![4, 32],
            channel_latencies: vec![1],
            load: 0.1,
            seed: 11,
        });
        let short = &res.rows[0];
        let long = &res.rows[1];
        assert!(short.analytic_overhead > long.analytic_overhead);
        assert!(short.measured_overhead > long.measured_overhead);
        // Measured within a loose band of analytic (traffic mixes
        // distances exactly like the analytic average).
        assert!(
            (short.measured_overhead - short.analytic_overhead).abs()
                < 0.3 * short.analytic_overhead.max(0.1),
            "measured {} vs analytic {}",
            short.measured_overhead,
            short.analytic_overhead
        );
        assert!(res.to_string().contains("Padding"));
    }

    #[test]
    fn deeper_channels_pad_more() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_lengths: vec![8],
            channel_latencies: vec![1, 4],
            load: 0.1,
            seed: 12,
        });
        assert!(res.rows[1].analytic_overhead > res.rows[0].analytic_overhead);
        assert!(res.rows[1].measured_overhead > res.rows[0].measured_overhead);
    }
}
