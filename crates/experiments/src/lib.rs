//! Experiment harness: regenerates every table and figure of the
//! Compressionless Routing paper's evaluation section.
//!
//! Each module implements one paper artifact (figure or table) as a
//! library function returning structured rows plus a paper-style
//! text rendering; each also has a runnable binary (`src/bin/`) and a
//! bench (`crates/bench`). The mapping to the paper is
//! documented per-module and indexed in `DESIGN.md`.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig09`] | Fig. 9 — CR latency vs offered load, several message lengths |
//! | [`fig10`] | Fig. 10 — sensitivity to the kill timeout |
//! | [`fig11`] | Fig. 11 — static retransmission gaps vs exponential backoff |
//! | [`fig12`] | Fig. 12 — source-based vs path-wide kill detection |
//! | [`fig14ab`] | Fig. 14(a),(b) — CR vs DOR across buffer depths |
//! | [`fig14cd`] | Fig. 14(c),(d) — CR vs DOR across virtual-channel counts |
//! | [`fig14ef`] | Fig. 14(e),(f) — interface (source/sink) bandwidth |
//! | [`fig15`] | Fig. 15 — FCR under transient fault rates |
//! | [`fig16`] | Fig. 16 — FCR with permanent link faults |
//! | [`tab_pds`] | PDS table — potential deadlock situations (Duato methodology) |
//! | [`tab_hardware`] | Section 5 — interface hardware-complexity estimates |
//! | [`ext_distribution`] | Section 7 — kill-induced latency-variance analysis |
//! | [`ext_ablation`] | Extension — per-mechanism ablation study |
//! | [`ext_par`] | Extension — DOR vs planar-adaptive vs CR on the mesh |
//! | [`tab_padding`] | Padding-overhead table — CR padding vs message length and network depth |
//! | [`ext_nonuniform`] | Extension — CR vs DOR on non-uniform traffic |
//! | [`showdown`] | Extension — topology-zoo showdown: CR vs DOR vs the zero-VC full-mesh scheme |
//! | [`churn`] | Extension — live fault churn: CR vs FCR vs DOR through a kill-and-revive storm |
//!
//! # Examples
//!
//! ```
//! use cr_experiments::{fig09, Scale};
//!
//! let results = fig09::run(&fig09::Config {
//!     scale: Scale::Tiny,
//!     ..Default::default()
//! });
//! assert!(!results.rows.is_empty());
//! println!("{results}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod ext_ablation;
pub mod ext_distribution;
pub mod ext_nonuniform;
pub mod ext_par;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14ab;
pub mod fig14cd;
pub mod fig14ef;
pub mod fig15;
pub mod fig16;
pub mod harness;
pub mod showdown;
pub mod tab_hardware;
pub mod tab_padding;
pub mod tab_pds;
pub mod table;

pub use harness::{
    churn_plan, run_report, set_churn_plan, set_shards, set_trace_path, shards, sweep,
    trace_active, MeasuredPoint, Scale, SweepRunner,
};
pub use table::Table;
