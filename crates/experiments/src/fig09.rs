//! **Fig. 9 (reconstructed)** — CR base performance: average message
//! latency and accepted throughput versus offered load, for several
//! message lengths, on the paper's torus.
//!
//! Expected shape: classic saturating latency curves; longer messages
//! saturate at a similar flit load but with higher base latency.

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, fmt_p, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 9 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Message lengths (flits) to sweep.
    pub message_lengths: Vec<usize>,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            message_lengths: vec![8, 16, 32],
            seed: 90,
        }
    }
}

/// One sweep row: a (message length, load) measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Message length in flits.
    pub message_len: usize,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Fig. 9 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment. Sweep points execute in parallel (see
/// [`crate::harness::sweep`]); results are identical under any job
/// count.
pub fn run(cfg: &Config) -> Results {
    let mut points = Vec::new();
    for &len in &cfg.message_lengths {
        for load in cfg.scale.loads() {
            points.push((len, load));
        }
    }
    let scale = cfg.scale;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(len, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(len), load)
                        .seed(seed);
                    Row {
                        message_len: len,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 9 — CR latency vs offered load (8x8 torus, minimal adaptive, no VCs)",
            &["msg_len", "offered", "accepted", "latency", "p99", "kills", "retx"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.message_len.to_string(),
                fmt_f(r.point.offered),
                fmt_f(r.point.accepted),
                fmt_f(r.point.latency),
                fmt_p(r.point.p99),
                r.point.kills.to_string(),
                r.point.retransmissions.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load_and_length() {
        let res = run(&Config {
            scale: Scale::Tiny,
            message_lengths: vec![8, 16],
            seed: 1,
        });
        assert_eq!(res.rows.len(), 4);
        assert!(res.rows.iter().all(|r| !r.point.deadlocked));
        // Latency at the higher load exceeds the lower load for each
        // length.
        for len in [8, 16] {
            let pts: Vec<&Row> = res.rows.iter().filter(|r| r.message_len == len).collect();
            assert!(pts[1].point.latency > pts[0].point.latency);
        }
        // Longer messages have higher base latency at low load.
        let l8 = res.rows.iter().find(|r| r.message_len == 8).unwrap();
        let l16 = res.rows.iter().find(|r| r.message_len == 16).unwrap();
        assert!(l16.point.latency > l8.point.latency);
        // The table renders.
        assert!(res.to_string().contains("Fig. 9"));
    }
}
