//! **Extension — the topology-zoo showdown**: CR vs its deadlock-free
//! competitors on every generated topology.
//!
//! The paper sells Compressionless Routing on "applicability to a wide
//! variety of network topologies"; this sweep actually runs the claim.
//! Each topology in the zoo carries the schemes that are *legal* on
//! it:
//!
//! * **torus / mesh** — CR over minimal-adaptive routing (zero extra
//!   VCs) against dimension-order routing (Baseline protocol; two
//!   dateline VC classes on the torus, one on the mesh).
//! * **fat-tree** — CR with one VC against CR with two. There is no
//!   dimension order here, and plain minimal-adaptive + Baseline can
//!   deadlock (every switch is also an endpoint, so down-then-up
//!   dependency cycles exist): recovery-based deadlock freedom is
//!   doing real work on this topology.
//! * **full mesh** — CR against the HOTI'25 zero-VC ordered-detour
//!   scheme ("Deadlock-free routing for Full-mesh networks without
//!   using Virtual Channels"), the modern avoidance-based answer to
//!   the same no-VC goal CR pursued by recovery. The head-to-head the
//!   related-work section promises.
//!
//! Results carry the [`TopologyKind`] config axis, so every row's
//! fabric round-trips through JSON ([`Results::to_json`]).

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
use cr_sim::Json;
use cr_topology::TopologyKind;
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the topology-zoo showdown.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size (also selects the zoo's topology sizes).
    pub scale: Scale,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            message_len: 16,
            seed: 640,
        }
    }
}

/// The topology zoo at a given scale.
pub fn zoo(scale: Scale) -> Vec<TopologyKind> {
    let radix = scale.radix();
    let (k, nodes) = match scale {
        Scale::Tiny => (4, 16),
        Scale::Quick | Scale::Paper => (8, 64),
    };
    vec![
        TopologyKind::Torus { radix, dims: 2 },
        TopologyKind::Mesh { radix, dims: 2 },
        TopologyKind::FatTree { k },
        TopologyKind::FullMesh { nodes },
    ]
}

/// The (scheme label, routing, protocol) triples legal on `kind`.
pub fn schemes(kind: TopologyKind) -> Vec<(&'static str, RoutingKind, ProtocolKind)> {
    let cr = ("CR", RoutingKind::Adaptive { vcs: 1 }, ProtocolKind::Cr);
    match kind {
        TopologyKind::Torus { .. } | TopologyKind::Mesh { .. } | TopologyKind::Hypercube { .. } => {
            vec![
                cr,
                ("DOR", RoutingKind::Dor { lanes: 1 }, ProtocolKind::Baseline),
            ]
        }
        TopologyKind::FatTree { .. } => vec![
            cr,
            ("CR 2VC", RoutingKind::Adaptive { vcs: 2 }, ProtocolKind::Cr),
        ],
        TopologyKind::FullMesh { .. } => vec![
            cr,
            (
                "0VC detour",
                RoutingKind::FullMeshOrdered,
                ProtocolKind::Baseline,
            ),
        ],
    }
}

/// One (topology, scheme, load) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// The fabric this point ran on.
    pub topology: TopologyKind,
    /// Scheme label.
    pub scheme: &'static str,
    /// Offered load, flits/node/cycle.
    pub load: f64,
    /// The measured point.
    pub point: MeasuredPoint,
}

/// Topology-zoo showdown results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All rows, grouped by topology, then scheme, then load.
    pub rows: Vec<Row>,
}

/// Runs the showdown across the zoo.
pub fn run(cfg: &Config) -> Results {
    let mut points = Vec::new();
    for kind in zoo(cfg.scale) {
        for (scheme, routing, protocol) in schemes(kind) {
            for load in cfg.scale.loads() {
                points.push((kind, scheme, routing, protocol, load));
            }
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(kind, scheme, routing, protocol, load)| {
                move || {
                    let mut b = NetworkBuilder::from_kind(&kind);
                    b.routing(routing)
                        .protocol(protocol)
                        .warmup(scale.warmup())
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    Row {
                        topology: kind,
                        scheme,
                        load,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Accepted throughput for a (topology, scheme) pair at `load`.
    pub fn accepted(&self, topology: TopologyKind, scheme: &str, load: f64) -> f64 {
        self.rows
            .iter()
            .find(|r| r.topology == topology && r.scheme == scheme && r.load == load)
            .map(|r| r.point.accepted)
            .unwrap_or(0.0)
    }

    /// The rows for one topology.
    pub fn for_topology(&self, topology: TopologyKind) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.topology == topology).collect()
    }

    /// Serializes every row with its [`TopologyKind`] config axis, so a
    /// consumer can rebuild the exact fabric each point ran on.
    pub fn to_json(&self) -> Json {
        Json::arr(self.rows.iter().map(|r| {
            Json::obj([
                ("topology", r.topology.to_json()),
                ("scheme", Json::from(r.scheme)),
                ("load", Json::from(r.load)),
                ("accepted", Json::from(r.point.accepted)),
                ("latency", Json::from(r.point.latency)),
                ("kills", Json::from(r.point.kills)),
                ("deadlocked", Json::from(r.point.deadlocked)),
            ])
        }))
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Topology-zoo showdown — CR vs deadlock-free competitors (uniform traffic)",
            &["topology", "scheme", "load", "accepted", "latency", "kills"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.topology.label(),
                r.scheme.to_string(),
                fmt_f(r.load),
                fmt_f(r.point.accepted),
                fmt_f(r.point.latency),
                r.point.kills.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Results {
        run(&Config {
            scale: Scale::Tiny,
            message_len: 8,
            seed: 11,
        })
    }

    #[test]
    fn every_topology_carries_two_schemes_and_nobody_deadlocks() {
        let res = tiny();
        // 4 topologies x 2 schemes x 2 tiny loads.
        assert_eq!(res.rows.len(), 16);
        for r in &res.rows {
            assert!(
                !r.point.deadlocked,
                "{} with {} deadlocked",
                r.topology.label(),
                r.scheme
            );
            assert!(
                r.point.delivered > 0,
                "{} with {} delivered nothing",
                r.topology.label(),
                r.scheme
            );
        }
    }

    #[test]
    fn zero_vc_schemes_never_kill() {
        let res = tiny();
        for r in &res.rows {
            if r.scheme == "0VC detour" || r.scheme == "DOR" {
                assert_eq!(r.point.kills, 0, "{} killed", r.scheme);
            }
        }
    }

    #[test]
    fn json_rows_round_trip_their_topology() {
        let res = tiny();
        let json = Json::parse(&res.to_json().to_string()).unwrap();
        let Json::Arr(rows) = &json else {
            panic!("expected array")
        };
        assert_eq!(rows.len(), res.rows.len());
        for (j, r) in rows.iter().zip(&res.rows) {
            let kind = TopologyKind::from_json(j.get("topology").unwrap());
            assert_eq!(kind, Some(r.topology));
        }
    }
}
