//! **Fig. 16 (reconstructed)** — FCR with permanent link faults.
//!
//! The abstract promises "permanent fault tolerance": dead channels are
//! modelled as corrupting every flit (a detectable failure), routers
//! exclude diagnosed-dead ports from adaptive candidates, and retries
//! misroute around fault clusters. Expected shape: every message is
//! still delivered as links die; latency rises modestly.

use crate::harness::{run_report, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_faults::FaultModel;
use cr_sim::SimRng;
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 16 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Numbers of dead links to sweep (placed randomly, preserving
    /// connectivity).
    pub dead_links: Vec<usize>,
    /// Offered load (flits/node/cycle).
    pub load: f64,
    /// Message length in flits.
    pub message_len: usize,
    /// Misrouting hop budget for routing around faults.
    pub misroute_budget: u16,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            dead_links: vec![0, 2, 4, 8],
            load: 0.15,
            message_len: 16,
            misroute_budget: 8,
            seed: 160,
        }
    }
}

/// One dead-link-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Dead links in the network.
    pub dead_links: usize,
    /// The measurement.
    pub point: MeasuredPoint,
    /// Delivered / generated.
    pub delivery_ratio: f64,
    /// Corrupt payload deliveries (must be zero).
    pub corrupt_deliveries: u64,
}

/// Fig. 16 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a fault plan cannot be placed without disconnecting the
/// network (raise the topology size or lower the counts).
pub fn run(cfg: &Config) -> Results {
    let points: Vec<usize> = cfg.dead_links.clone();
    let scale = cfg.scale;
    let load = cfg.load;
    let message_len = cfg.message_len;
    let misroute_budget = cfg.misroute_budget;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|count| {
                move || {
                    let mut b = scale.builder();
                    let mut faults = FaultModel::new();
                    if count > 0 {
                        let topo = cr_topology::KAryNCube::torus(scale.radix(), 2);
                        faults
                            .kill_random_links_connected(
                                &topo,
                                count,
                                &mut SimRng::from_seed(seed ^ 0xFA),
                            )
                            .expect("fault plan must keep the network connected");
                    }
                    b.routing(RoutingKind::AdaptiveMisroute {
                        vcs: 1,
                        extra_hops: misroute_budget,
                    })
                    .protocol(ProtocolKind::Fcr)
                    .faults(faults)
                    .traffic(
                        TrafficPattern::Uniform,
                        LengthDistribution::Fixed(message_len),
                        load,
                    )
                    .seed(seed);
                    let report = run_report(&mut b, scale);
                    Row {
                        dead_links: count,
                        point: MeasuredPoint::from_report(&report),
                        delivery_ratio: report.delivery_ratio(),
                        corrupt_deliveries: report.counters.corrupt_payload_delivered,
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 16 — FCR with permanent link faults (adaptive + misroute)",
            &[
                "dead_links",
                "latency",
                "accepted",
                "delivery_ratio",
                "kills",
                "corrupt_deliveries",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.dead_links.to_string(),
                fmt_f(r.point.latency),
                fmt_f(r.point.accepted),
                fmt_f(r.delivery_ratio),
                r.point.kills.to_string(),
                r.corrupt_deliveries.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_survives_dead_links() {
        let res = run(&Config {
            scale: Scale::Tiny,
            dead_links: vec![0, 4],
            load: 0.1,
            message_len: 12,
            misroute_budget: 8,
            seed: 9,
        });
        for r in &res.rows {
            assert!(!r.point.deadlocked);
            assert_eq!(r.corrupt_deliveries, 0);
            assert!(r.point.delivered > 0);
            // Open-loop runs always end with some traffic in flight;
            // the ratio reflects that, not loss.
            assert!(r.delivery_ratio > 0.8, "ratio {}", r.delivery_ratio);
        }
        assert!(res.to_string().contains("Fig. 16"));
    }
}
