//! **Fig. 10 (reconstructed)** — sensitivity of CR performance to the
//! kill timeout, at a moderate and a high load.
//!
//! Expected shape: very small timeouts cause spurious kills that hurt
//! latency (especially near saturation); very large timeouts slow
//! deadlock recovery; a broad middle range works well — which is why
//! the paper can use the simple `message length x VCs` rule.

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 10 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Timeout values (cycles) to sweep.
    pub timeouts: Vec<u64>,
    /// Offered loads to test each timeout at.
    pub loads: Vec<f64>,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            timeouts: vec![4, 8, 16, 32, 64, 128, 256],
            loads: vec![0.2, 0.4],
            message_len: 16,
            seed: 100,
        }
    }
}

/// One (timeout, load) measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Timeout in cycles.
    pub timeout: u64,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Fig. 10 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment (points in parallel; results identical under
/// any job count).
pub fn run(cfg: &Config) -> Results {
    let mut points = Vec::new();
    for &timeout in &cfg.timeouts {
        for &load in &cfg.loads {
            points.push((timeout, load));
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(timeout, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .timeout(timeout)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    Row {
                        timeout,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Kills per delivered message for a row.
    pub fn kill_rate(row: &Row) -> f64 {
        if row.point.delivered == 0 {
            0.0
        } else {
            row.point.kills as f64 / row.point.delivered as f64
        }
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 10 — CR sensitivity to kill timeout (16-flit messages)",
            &["timeout", "offered", "latency", "kills/msg", "accepted"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.timeout.to_string(),
                fmt_f(r.point.offered),
                fmt_f(r.point.latency),
                fmt_f(Results::kill_rate(r)),
                fmt_f(r.point.accepted),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_timeouts_kill_more() {
        let res = run(&Config {
            scale: Scale::Tiny,
            timeouts: vec![2, 64],
            loads: vec![0.3],
            message_len: 16,
            seed: 2,
        });
        assert_eq!(res.rows.len(), 2);
        let aggressive = &res.rows[0];
        let relaxed = &res.rows[1];
        assert!(
            Results::kill_rate(aggressive) > Results::kill_rate(relaxed),
            "timeout 2 must kill more than timeout 64"
        );
        assert!(res.to_string().contains("Fig. 10"));
    }
}
