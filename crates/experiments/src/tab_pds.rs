//! **PDS table** — estimating how often *potential deadlock
//! situations* occur, using the paper's own methodology:
//!
//! "To conservatively estimate the number of PDS, we simulated a
//! deadlock-free routing algorithm (Duato's routing algorithm) which
//! uses two virtual networks — an adaptive one and a deadlock-free
//! deterministic one. During the simulation, we counted the number of
//! times messages needed to use the dimension-order routed virtual
//! channels (to escape deadlock)."
//!
//! Expected shape: PDS frequency is tiny at light load and grows
//! sharply toward saturation — deadlock is rare, which is precisely the
//! argument for CR's *recovery* (pay on the rare event) over
//! *avoidance* (pay on every message).

use crate::harness::{run_report, sweep, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the PDS estimate.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Adaptive virtual channels in front of the escape network.
    pub adaptive_vcs: usize,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            adaptive_vcs: 1,
            message_len: 16,
            seed: 170,
        }
    }
}

/// One load point of the PDS estimate.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Offered load, flits/node/cycle.
    pub offered: f64,
    /// Escape-channel allocations during the measured window.
    pub escapes: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Potential deadlock situations per node per kilocycle.
    pub pds_per_node_kcycle: f64,
    /// Escapes per delivered message.
    pub escapes_per_message: f64,
}

/// PDS-table results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the estimate.
pub fn run(cfg: &Config) -> Results {
    let mut loads = cfg.scale.loads();
    loads.push(0.5); // push toward saturation where PDS spike
    let scale = cfg.scale;
    let adaptive_vcs = cfg.adaptive_vcs;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        loads
            .into_iter()
            .map(|load| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Duato { adaptive_vcs })
                        .protocol(ProtocolKind::Baseline)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    let report = run_report(&mut b, scale);
                    let delivered = report.counters.messages_delivered;
                    Row {
                        offered: load,
                        escapes: report.counters.escape_allocations,
                        delivered,
                        pds_per_node_kcycle: report.pds_per_node_kilocycle(),
                        escapes_per_message: if delivered == 0 {
                            0.0
                        } else {
                            report.counters.escape_allocations as f64 / delivered as f64
                        },
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "PDS estimate — escape-channel use under Duato's protocol",
            &[
                "offered",
                "escapes",
                "delivered",
                "PDS/node/kcycle",
                "escapes/msg",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                fmt_f(r.offered),
                r.escapes.to_string(),
                r.delivered.to_string(),
                fmt_f(r.pds_per_node_kcycle),
                fmt_f(r.escapes_per_message),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pds_grow_with_load() {
        let res = run(&Config {
            scale: Scale::Tiny,
            adaptive_vcs: 1,
            message_len: 16,
            seed: 10,
        });
        assert!(res.rows.len() >= 3);
        let first = res.rows.first().unwrap();
        let last = res.rows.last().unwrap();
        assert!(
            last.pds_per_node_kcycle > first.pds_per_node_kcycle,
            "PDS must grow toward saturation ({} -> {})",
            first.pds_per_node_kcycle,
            last.pds_per_node_kcycle
        );
        // At light load, escapes per message are rare — the motivation
        // for recovery over avoidance.
        assert!(
            first.escapes_per_message < last.escapes_per_message,
            "escapes/msg must grow with congestion"
        );
        assert!(res.to_string().contains("PDS"));
    }
}
