//! **Fig. 11** — average message latency for static retransmission
//! gaps versus the dynamic (binary-exponential-backoff) scheme, with
//! the kill timeout fixed at 32 cycles — the setup the paper states
//! explicitly ("the timeout for message kills is fixed at 32 cycles;
//! the dashed lines are the static schemes and the solid line is the
//! dynamic scheme").
//!
//! Expected shape: each static gap is good somewhere and poor
//! elsewhere (small gaps thrash under congestion, large gaps waste
//! time at light load); the dynamic scheme tracks the best static
//! choice across the whole load range.

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RetransmitScheme, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 11 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Static gaps (cycles) to compare.
    pub static_gaps: Vec<u64>,
    /// Kill timeout (the paper fixes 32).
    pub timeout: u64,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            static_gaps: vec![4, 16, 64, 256],
            timeout: 32,
            message_len: 16,
            seed: 110,
        }
    }
}

/// One (scheme, load) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheme label (`"static-4"`, …, `"dynamic"`).
    pub scheme: String,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Fig. 11 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Results {
    let mut schemes: Vec<(String, RetransmitScheme)> = cfg
        .static_gaps
        .iter()
        .map(|&gap| (format!("static-{gap}"), RetransmitScheme::StaticGap { gap }))
        .collect();
    schemes.push((
        "dynamic".to_string(),
        RetransmitScheme::ExponentialBackoff {
            slot: 16,
            ceiling: 10,
        },
    ));

    let mut points = Vec::new();
    for (name, scheme) in &schemes {
        for load in cfg.scale.loads() {
            points.push((name.clone(), *scheme, load));
        }
    }
    let scale = cfg.scale;
    let timeout = cfg.timeout;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(name, scheme, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs: 1 })
                        .protocol(ProtocolKind::Cr)
                        .timeout(timeout)
                        .retransmit(scheme)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    Row {
                        scheme: name,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Mean latency of a scheme averaged over the load sweep.
    pub fn mean_latency_of(&self, scheme: &str) -> f64 {
        let pts: Vec<&Row> = self.rows.iter().filter(|r| r.scheme == scheme).collect();
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().map(|r| r.point.latency).sum::<f64>() / pts.len() as f64
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 11 — retransmission gap schemes (timeout fixed at 32 cycles)",
            &["scheme", "offered", "latency", "retx", "accepted"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.scheme.clone(),
                fmt_f(r.point.offered),
                fmt_f(r.point.latency),
                r.point.retransmissions.to_string(),
                fmt_f(r.point.accepted),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_tracks_reasonable_latency() {
        let res = run(&Config {
            scale: Scale::Tiny,
            static_gaps: vec![4, 256],
            timeout: 16,
            message_len: 16,
            seed: 3,
        });
        // 3 schemes x 2 loads.
        assert_eq!(res.rows.len(), 6);
        let dynamic = res.mean_latency_of("dynamic");
        let worst_static = res
            .mean_latency_of("static-4")
            .max(res.mean_latency_of("static-256"));
        assert!(dynamic > 0.0);
        // The dynamic scheme must not be the worst of the bunch.
        assert!(
            dynamic <= worst_static * 1.05,
            "dynamic {dynamic} vs worst static {worst_static}"
        );
        assert!(res.to_string().contains("Fig. 11"));
    }
}
