//! **Fig. 14(c),(d)** — CR versus dimension-order routing across
//! virtual-channel counts.
//!
//! Per the paper's fragments: "the DOR networks are given a fixed
//! amount of total buffer space, so more virtual channels mean a lower
//! buffer depth" (virtual channels beat deep FIFOs, reference \[29\]);
//! "for CR networks, we vary the number of virtual channels while
//! fixing the buffer depth of each virtual channel at two flits"
//! (depth is pure padding overhead for CR).

use crate::harness::{measure, sweep, MeasuredPoint, Scale};
use crate::table::{fmt_f, Table};
use cr_core::{ProtocolKind, RoutingKind};
use cr_traffic::{LengthDistribution, TrafficPattern};
use std::fmt;

/// Parameters for the Fig. 14(c)/(d) run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run size.
    pub scale: Scale,
    /// Virtual-channel counts to sweep (total per port; DOR needs an
    /// even number on a torus).
    pub vc_counts: Vec<usize>,
    /// DOR total buffer budget per port, in flits (split across VCs).
    pub dor_total_buffer: usize,
    /// Message length in flits.
    pub message_len: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            vc_counts: vec![2, 4, 8],
            dor_total_buffer: 16,
            message_len: 16,
            seed: 141,
        }
    }
}

/// One (network, vcs, load) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"CR"` or `"DOR"`.
    pub network: &'static str,
    /// Total virtual channels per port.
    pub vcs: usize,
    /// Buffer depth per VC used in this configuration.
    pub depth: usize,
    /// The measurement.
    pub point: MeasuredPoint,
}

/// Fig. 14(c)/(d) results.
#[derive(Debug, Clone)]
pub struct Results {
    /// All measured rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a VC count is odd (DOR on a torus needs two dateline
/// classes) or does not divide the DOR buffer budget.
pub fn run(cfg: &Config) -> Results {
    let mut points: Vec<(&'static str, usize, usize, f64)> = Vec::new();
    for &vcs in &cfg.vc_counts {
        assert!(vcs >= 2 && vcs % 2 == 0, "DOR on a torus needs even VCs");
        assert_eq!(
            cfg.dor_total_buffer % vcs,
            0,
            "buffer budget must split evenly"
        );
        for load in cfg.scale.loads() {
            // CR: fixed 2-flit buffers per VC. DOR: fixed total buffer
            // split across the VCs.
            points.push(("CR", vcs, 2, load));
            points.push(("DOR", vcs, cfg.dor_total_buffer / vcs, load));
        }
    }
    let scale = cfg.scale;
    let message_len = cfg.message_len;
    let seed = cfg.seed;
    let rows = sweep(
        points
            .into_iter()
            .map(|(network, vcs, depth, load)| {
                move || {
                    let mut b = scale.builder();
                    if network == "CR" {
                        b.routing(RoutingKind::Adaptive { vcs })
                            .protocol(ProtocolKind::Cr);
                    } else {
                        b.routing(RoutingKind::Dor { lanes: vcs / 2 })
                            .protocol(ProtocolKind::Baseline);
                    }
                    b.buffer_depth(depth)
                        .traffic(
                            TrafficPattern::Uniform,
                            LengthDistribution::Fixed(message_len),
                            load,
                        )
                        .seed(seed);
                    Row {
                        network,
                        vcs,
                        depth,
                        point: measure(&mut b, scale),
                    }
                }
            })
            .collect(),
    );
    Results { rows }
}

impl Results {
    /// Peak accepted throughput of one (network, vcs) curve.
    pub fn peak_accepted(&self, network: &str, vcs: usize) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.network == network && r.vcs == vcs)
            .map(|r| r.point.accepted)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig. 14(c),(d) — CR vs DOR across virtual channels (DOR: fixed total buffer)",
            &["network", "vcs", "depth", "offered", "accepted", "latency"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.network.to_string(),
                r.vcs.to_string(),
                r.depth.to_string(),
                fmt_f(r.point.offered),
                fmt_f(r.point.accepted),
                fmt_f(r.point.latency),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_networks_gain_from_vcs() {
        let res = run(&Config {
            scale: Scale::Tiny,
            vc_counts: vec![2, 4],
            dor_total_buffer: 8,
            message_len: 16,
            seed: 6,
        });
        for network in ["CR", "DOR"] {
            let lo = res.peak_accepted(network, 2);
            let hi = res.peak_accepted(network, 4);
            assert!(lo > 0.0 && hi > 0.0);
            // More VCs should not hurt materially.
            assert!(hi >= lo * 0.85, "{network}: {hi:.3} vs {lo:.3}");
        }
        assert!(res.to_string().contains("Fig. 14(c)"));
    }

    #[test]
    #[should_panic]
    fn odd_vcs_rejected() {
        let _ = run(&Config {
            scale: Scale::Tiny,
            vc_counts: vec![3],
            dor_total_buffer: 9,
            message_len: 8,
            seed: 0,
        });
    }
}
