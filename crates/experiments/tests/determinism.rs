//! Parallel sweeps must be bit-identical to serial execution.
//!
//! Each sweep point owns its RNG seed and its whole simulation, so the
//! only way parallelism could change a result is a bug in the executor
//! (wrong result ordering, shared state, work duplication). This test
//! runs the same small sweep through `SweepRunner::new(1)` and
//! `SweepRunner::new(4)` and demands byte-identical `SimReport` JSON
//! for every point.

use cr_core::{ProtocolKind, RoutingKind};
use cr_experiments::{Scale, SweepRunner};
use cr_traffic::{LengthDistribution, TrafficPattern};

fn sweep_reports(jobs: usize) -> Vec<String> {
    let scale = Scale::Quick;
    let mut points: Vec<(usize, f64)> = Vec::new();
    for vcs in [1, 2] {
        for load in [0.1, 0.3] {
            points.push((vcs, load));
        }
    }
    SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|(vcs, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs })
                        .protocol(ProtocolKind::Cr)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
                        .seed(0xD5);
                    let mut net = b.build();
                    net.run(scale.cycles()).to_json()
                }
            })
            .collect(),
    )
}

/// The topology-zoo showdown must be byte-identical under any job
/// count too — it is the acceptance gate for the zoo's config axis.
fn showdown_json(jobs: usize) -> String {
    use cr_experiments::showdown;
    use cr_topology::TopologyKind;
    let scale = Scale::Tiny;
    let mut points = Vec::new();
    for kind in showdown::zoo(scale) {
        for (scheme, routing, protocol) in showdown::schemes(kind) {
            points.push((kind, scheme, routing, protocol));
        }
    }
    let rows = SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|(kind, scheme, routing, protocol)| {
                move || {
                    let mut b = cr_core::NetworkBuilder::from_kind(&kind);
                    b.routing(routing)
                        .protocol(protocol)
                        .warmup(scale.warmup())
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
                        .seed(0xBEE);
                    let mut net = b.build();
                    let report = net.run(scale.cycles()).to_json().to_string();
                    format!("{}/{scheme}: {report}", TopologyKind::label(&kind))
                }
            })
            .collect(),
    );
    rows.join("\n")
}

#[test]
fn showdown_zoo_is_byte_identical_under_parallelism() {
    let serial = showdown_json(1);
    let parallel = showdown_json(4);
    assert!(serial == parallel, "zoo sweep differs across job counts");
    // All four fabrics actually ran.
    for label in ["torus", "mesh", "fat-tree", "full mesh"] {
        assert!(serial.contains(label), "missing {label} rows");
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = sweep_reports(1);
    let parallel = sweep_reports(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert!(
            s == p,
            "point {i}: serial and 4-job reports differ\nserial:\n{s}\nparallel:\n{p}"
        );
    }
    // Sanity: the reports are real, not empty stubs.
    assert!(serial.iter().all(|s| s.contains("counters")));
}
