//! Churn must not break stepper equivalence (DESIGN.md §13).
//!
//! Kill/revive events fire as serial orchestrator code at the top of
//! every stepped cycle, so the dense reference, the serial active-set
//! stepper, and the sharded stepper must remain byte-identical under
//! any [`cr_faults::ChurnSchedule`] — including schedules that flip
//! the sharded arrivals gate mid-run (fault-free -> faulty -> fault-
//! free again under a fault-detecting protocol).
//!
//! The fixed grid twin-runs the churn storm experiment's own fixture
//! at `shards ∈ {2, 4, 7}` and sweep `jobs ∈ {1, 4}`. The property
//! test extends it with random tiny networks and random kill/revive
//! interleavings (every kill paired with a later revive), demanding
//! dense == active == sharded reports, exactly-once delivery of a
//! finite scheduled workload, and nothing left in flight after the
//! drain.

use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
use cr_faults::ChurnSchedule;
use cr_sim::{check, Cycle, NodeId, SimRng};
use cr_topology::{KAryNCube, Topology};
use cr_traffic::{Trace, TraceEvent};
use cr_experiments::{churn, Scale};

/// The shard counts the fixed grid sweeps (mirrors `shard_equiv.rs`).
const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

/// A churn storm that starts fault-free, kills links from two regions
/// mid-run, and revives everything — under FCR this flips the sharded
/// arrivals gate parallel -> serial -> parallel.
fn storm(scale: Scale) -> ChurnSchedule {
    let topo = KAryNCube::torus(scale.radix(), 2);
    let mut s = ChurnSchedule::new();
    s.random_regional_outages(
        &topo,
        3,
        Cycle::new(scale.cycles() / 10),
        Cycle::new(scale.cycles() / 2),
        1,
        150,
        400,
        &mut SimRng::from_seed(0xEE),
    );
    s
}

/// Twin-runs one builder dense, serial-active, and sharded; demands
/// byte-identical reports, clocks, and trace streams.
fn assert_churn_twin(label: &str, cycles: u64, mut build: impl FnMut() -> NetworkBuilder) {
    let mut dense = build().build();
    dense.set_reference_stepper(true);
    let d = dense.run(cycles).to_json();
    let d_events = dense.take_trace_events();

    let mut serial = build().build();
    assert_eq!(serial.num_shards(), 1, "{label}: serial run got sharded");
    let s = serial.run(cycles).to_json();
    assert!(d == s, "{label}: dense vs serial differ\n{d}\n{s}");
    assert_eq!(dense.now(), serial.now(), "{label}: dense clock differs");
    assert_eq!(
        d_events,
        serial.take_trace_events(),
        "{label}: dense vs serial trace streams differ"
    );

    for &shards in &SHARD_COUNTS {
        let mut sharded = build().shards(shards).build();
        assert!(
            sharded.num_shards() > 1,
            "{label}: shards={shards} fell back to serial"
        );
        sharded.set_shard_threads(Some(4));
        let p = sharded.run(cycles).to_json();
        assert!(
            s == p,
            "{label}: serial vs shards={shards} differ\n{s}\n{p}"
        );
        assert_eq!(
            d_events,
            sharded.take_trace_events(),
            "{label}: shards={shards} trace streams differ"
        );
    }
}

/// The churn experiment's own FCR fixture, storm included, across all
/// three steppers.
#[test]
fn churn_storm_twin_matches() {
    let scale = Scale::Tiny;
    assert_churn_twin("fcr storm", scale.cycles(), || {
        let mut b = scale.builder();
        b.routing(RoutingKind::AdaptiveMisroute {
            vcs: 1,
            extra_hops: 4,
        })
        .protocol(ProtocolKind::Fcr)
        .churn(storm(scale))
        .traffic(
            cr_traffic::TrafficPattern::Uniform,
            cr_traffic::LengthDistribution::Fixed(16),
            0.2,
        )
        .trace(1 << 14)
        .seed(0xC4);
        b
    });
}

/// The full churn experiment run must be identical at sweep `jobs = 1`
/// and `jobs = 4` (scheme points are independent; parallelism is pure
/// wall clock).
#[test]
fn churn_experiment_identical_across_jobs() {
    let cfg = churn::Config {
        scale: Scale::Tiny,
        outages: 2,
        max_radius: 0,
        down_range: (150, 250),
        waves: 3,
        message_len: 8,
        misroute_budget: 8,
        seed: 0x10B5,
    };
    let runs: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            // Pin the session job count the experiment's sweep uses.
            cr_experiments::harness::set_jobs(jobs);
            churn::run(&cfg)
                .rows
                .iter()
                .map(|r| r.report.to_json())
                .collect()
        })
        .collect();
    cr_experiments::harness::set_jobs(1);
    assert_eq!(runs[0], runs[1], "churn experiment differs across jobs");
    assert_eq!(runs[0].len(), 3);
}

/// Property: a random tiny network under a random kill/revive
/// interleaving (every kill gets a later revive) drains a finite
/// scheduled workload with dense == active == sharded reports,
/// exactly-once delivery, and zero flits left in flight.
#[test]
fn prop_random_churn_interleavings_equivalent_and_exactly_once() {
    check::check(
        "churn_equiv::prop_random_churn_interleavings_equivalent_and_exactly_once",
        check::Config::cases(10),
        |src| {
            let radix = src.usize_in(3..5);
            let topo = KAryNCube::torus(radix, 2);
            let nodes = topo.num_nodes();
            let links = topo.links();
            let seed = src.u64_in(0..1 << 20);

            // Random kill/revive interleaving: each chosen link dies at
            // a random cycle and revives strictly later, well before
            // the drain budget.
            let mut schedule = ChurnSchedule::new();
            let kills = src.usize_in(1..5);
            for _ in 0..kills {
                let link = links[src.usize_in(0..links.len())].id;
                let at = src.u64_in(20..600);
                let up = at + src.u64_in(50..400);
                schedule.kill_link(Cycle::new(at), link);
                schedule.revive_link(Cycle::new(up), link);
            }

            // Finite workload: a few wormlength-8 messages per node,
            // spread across the churn window.
            let mut events = Vec::new();
            for n in 0..nodes as u32 {
                for k in 0..src.usize_in(1..4) as u32 {
                    events.push(TraceEvent {
                        at: Cycle::new((n as u64 * 37 + k as u64 * 211) % 700),
                        src: NodeId::new(n),
                        dst: NodeId::new((n + 1 + k) % nodes as u32),
                        length: 8,
                    });
                }
            }
            let workload = Trace::from_events(events);
            let offered = workload.len() as u64;

            let build = |shards: usize| {
                let mut b = NetworkBuilder::new(KAryNCube::torus(radix, 2));
                b.routing(RoutingKind::AdaptiveMisroute {
                    vcs: 1,
                    extra_hops: 4,
                })
                .protocol(ProtocolKind::Fcr)
                .warmup(0)
                .churn(schedule.clone())
                .seed(seed)
                .shards(shards);
                let mut net = b.build();
                if shards > 1 {
                    net.set_shard_threads(Some(2));
                }
                net.set_record_deliveries(true);
                net.schedule_trace(&workload);
                net
            };

            let mut dense = build(1);
            dense.set_reference_stepper(true);
            let mut active = build(1);
            let mut sharded = build(src.usize_in(2..5));

            let budget = 200_000;
            assert!(dense.run_until_quiescent(budget), "dense failed to drain");
            assert!(active.run_until_quiescent(budget), "active failed to drain");
            assert!(sharded.run_until_quiescent(budget), "sharded failed to drain");

            let d = dense.report().to_json();
            let a = active.report().to_json();
            let p = sharded.report().to_json();
            assert!(d == a, "dense vs active (seed {seed}):\n{d}\n{a}");
            assert!(a == p, "active vs sharded (seed {seed}):\n{a}\n{p}");

            // Exactly-once on every stepper, and nothing left behind.
            for net in [&mut dense, &mut active, &mut sharded] {
                assert_eq!(net.flits_in_flight(), 0);
                let mut delivered: Vec<u64> = net
                    .take_delivery_log()
                    .iter()
                    .map(|d| d.id.as_u64())
                    .collect();
                delivered.sort_unstable();
                assert_eq!(
                    delivered,
                    (0..offered).collect::<Vec<_>>(),
                    "seed {seed}: delivered set != offered set"
                );
            }
        },
    );
}
