//! The active-set scheduler must be byte-identical to the dense
//! reference stepper.
//!
//! `Network` runs with active-set scheduling and cycle fast-forward by
//! default; `set_reference_stepper(true)` switches the same network to
//! the dense sweep-everything stepper (DESIGN.md §10). These tests
//! twin-run tiny versions of the paper's figure configurations — plus
//! a faulty FCR sweep — through both steppers and demand:
//!
//! * byte-identical `SimReport` JSON,
//! * an identical drained trace-event stream (order included),
//! * the same final clock,
//!
//! at `jobs = 1` and `jobs = 4` through the sweep executor. Any RNG
//! draw made in a different order, any skipped component that was not
//! actually a no-op, or any fast-forward past a cycle that mattered
//! shows up here as a diff.

use cr_core::{NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_experiments::{Scale, SweepRunner};
use cr_faults::FaultModel;
use cr_sim::{NodeId, SimRng};
use cr_topology::KAryNCube;
use cr_traffic::{LengthDistribution, TrafficPattern};

/// Runs the same configuration through the active-set stepper and the
/// dense reference stepper for `cycles`, asserting report + trace
/// equality. The builder closure is called twice so each run owns a
/// fresh network.
fn assert_twin(label: &str, cycles: u64, mut build: impl FnMut() -> NetworkBuilder) {
    let mut active = build().build();
    let mut dense = build().build();
    dense.set_reference_stepper(true);
    assert!(!active.is_reference_stepper());
    assert!(dense.is_reference_stepper());

    let a = active.run(cycles).to_json();
    let d = dense.run(cycles).to_json();
    assert!(
        a == d,
        "{label}: active and dense reports differ\nactive:\n{a}\ndense:\n{d}"
    );
    assert_eq!(active.now(), dense.now(), "{label}: clocks differ");
    assert_eq!(
        active.take_trace_events(),
        dense.take_trace_events(),
        "{label}: trace event streams differ"
    );
    // The report is real, not an empty stub.
    assert!(a.contains("counters"), "{label}: empty report");
}

/// Fig. 9 shape: plain CR, adaptive routing, uniform traffic.
#[test]
fn fig09_style_twin_run_matches() {
    for vcs in [1, 2] {
        for load in [0.1, 0.3] {
            assert_twin(
                &format!("fig09 vcs={vcs} load={load}"),
                Scale::Tiny.cycles(),
                || {
                    let mut b = Scale::Tiny.builder();
                    b.routing(RoutingKind::Adaptive { vcs })
                        .protocol(ProtocolKind::Cr)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
                        .trace(4096)
                        .seed(0x90 + vcs as u64);
                    b
                },
            );
        }
    }
}

/// Fig. 11 shape: kill timeout 32, static vs dynamic retransmission
/// gaps. The gaps are exactly the idle windows fast-forward skips, so
/// this is the config most likely to expose a lost injector wake-up.
#[test]
fn fig11_style_twin_run_matches() {
    let schemes = [
        ("static-4", RetransmitScheme::StaticGap { gap: 4 }),
        ("static-64", RetransmitScheme::StaticGap { gap: 64 }),
        (
            "dynamic",
            RetransmitScheme::ExponentialBackoff {
                slot: 16,
                ceiling: 10,
            },
        ),
    ];
    for (name, scheme) in schemes {
        assert_twin(
            &format!("fig11 {name}"),
            Scale::Tiny.cycles(),
            move || {
                let mut b = Scale::Tiny.builder();
                b.routing(RoutingKind::Adaptive { vcs: 1 })
                    .protocol(ProtocolKind::Cr)
                    .timeout(32)
                    .retransmit(scheme)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
                    .trace(4096)
                    .seed(110);
                b
            },
        );
    }
}

/// Fig. 16 shape: FCR with permanent link faults and misrouting —
/// exercises corrupt-flit drops, diagnosis and the fault registries.
#[test]
fn fig16_style_faulty_twin_run_matches() {
    for dead in [2usize, 4] {
        assert_twin(
            &format!("fig16 dead={dead}"),
            Scale::Tiny.cycles(),
            move || {
                let mut b = Scale::Tiny.builder();
                let mut faults = FaultModel::new();
                let topo = KAryNCube::torus(Scale::Tiny.radix(), 2);
                faults
                    .kill_random_links_connected(&topo, dead, &mut SimRng::from_seed(0xFA))
                    .expect("fault plan must keep the network connected");
                b.routing(RoutingKind::AdaptiveMisroute {
                    vcs: 1,
                    extra_hops: 4,
                })
                .protocol(ProtocolKind::Fcr)
                .faults(faults)
                .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
                .trace(4096)
                .seed(0x16);
                b
            },
        );
    }
}

/// Drain-to-quiescence equality: explicit messages, no open traffic
/// source, so fast-forward is fully armed (the active stepper jumps
/// the retransmission gaps) — the drained outcome, final clock and
/// report must still match the dense stepper cycle for cycle.
#[test]
fn quiescent_drain_twin_run_matches() {
    let build = || {
        let mut b = Scale::Tiny.builder();
        b.routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .timeout(16)
            .retransmit(RetransmitScheme::StaticGap { gap: 64 })
            .warmup(0)
            .trace(4096)
            .seed(7);
        b
    };
    let mut active = build().build();
    let mut dense = build().build();
    dense.set_reference_stepper(true);
    for net in [&mut active, &mut dense] {
        for src in 0..8u32 {
            net.send_message(NodeId::new(src), NodeId::new((src + 5) % 16), 16);
        }
    }
    let a_done = active.run_until_quiescent(50_000);
    let d_done = dense.run_until_quiescent(50_000);
    assert_eq!(a_done, d_done, "quiescence outcomes differ");
    assert!(a_done, "drain should finish well inside the budget");
    assert_eq!(active.now(), dense.now(), "drain clocks differ");
    assert_eq!(active.flits_in_flight(), 0);
    let a = active.report().to_json();
    let d = dense.report().to_json();
    assert!(a == d, "drain reports differ\nactive:\n{a}\ndense:\n{d}");
    assert_eq!(active.take_trace_events(), dense.take_trace_events());
}

/// A faulty FCR sweep through the parallel executor: active vs dense
/// at jobs = 1 and jobs = 4 must all agree byte-for-byte.
fn faulty_sweep_reports(jobs: usize, dense: bool) -> Vec<String> {
    let points: Vec<usize> = vec![0, 2, 4];
    SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|dead| {
                move || {
                    let scale = Scale::Tiny;
                    let mut b = scale.builder();
                    let mut faults = FaultModel::new();
                    if dead > 0 {
                        let topo = KAryNCube::torus(scale.radix(), 2);
                        faults
                            .kill_random_links_connected(
                                &topo,
                                dead,
                                &mut SimRng::from_seed(0xFA),
                            )
                            .expect("fault plan must keep the network connected");
                    }
                    b.routing(RoutingKind::AdaptiveMisroute {
                        vcs: 1,
                        extra_hops: 4,
                    })
                    .protocol(ProtocolKind::Fcr)
                    .faults(faults)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
                    .seed(0x16);
                    let mut net = b.build();
                    net.set_reference_stepper(dense);
                    net.run(scale.cycles()).to_json()
                }
            })
            .collect(),
    )
}

#[test]
fn faulty_sweep_active_matches_dense_across_jobs() {
    let active_1 = faulty_sweep_reports(1, false);
    let dense_1 = faulty_sweep_reports(1, true);
    let active_n = faulty_sweep_reports(4, false);
    let dense_n = faulty_sweep_reports(4, true);
    assert_eq!(active_1, dense_1, "active vs dense differ at jobs=1");
    assert_eq!(active_1, active_n, "active differs across job counts");
    assert_eq!(dense_1, dense_n, "dense differs across job counts");
    assert!(active_1.iter().all(|s| s.contains("counters")));
}
