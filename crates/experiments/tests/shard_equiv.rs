//! The sharded stepper must be byte-identical to the serial active-set
//! stepper.
//!
//! `--shards N` partitions the fabric into contiguous node-ID shards
//! and steps them on the work-stealing pool with phase barriers
//! (DESIGN.md §12). Shard count is an execution strategy, never an
//! experiment parameter: these tests twin-run tiny versions of the
//! paper's figure configurations — plus a faulty FCR sweep and one
//! showdown point per topology kind — at `shards ∈ {2, 4, 7}` against
//! the serial stepper and demand:
//!
//! * byte-identical `SimReport` JSON,
//! * an identical drained trace-event stream (order included),
//! * the same final clock,
//!
//! at sweep `jobs = 1` and `jobs = 4`. Each sharded run forces real
//! worker threads via `set_shard_threads(4)` even on a single-core
//! box, so cross-shard handoff ordering is actually exercised. Any
//! unsorted barrier drain, any shard-local RNG draw, or any cross-
//! shard mutation outside a barrier shows up here as a diff.
//!
//! Property tests (cr_sim::check) extend the fixed grid with random
//! topologies and random shard counts, including `shards = 1` and
//! `shards > nodes`.

use cr_core::{NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_experiments::{showdown, Scale, SweepRunner};
use cr_faults::FaultModel;
use cr_sim::shard::Plan;
use cr_sim::{check, SimRng};
use cr_topology::{KAryNCube, Topology, TopologyKind};
use cr_traffic::{LengthDistribution, TrafficPattern};

/// The shard counts every fixed-grid test sweeps: even split, more
/// shards than a tiny torus has rows, and a count that does not divide
/// the node count. `shards = 1` goes through the persistent team too,
/// via [`single_shard_through_team_twin_matches`]'s forced-sharded
/// runs.
const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

/// Runs the same configuration serially and at each count in
/// `shard_counts`, asserting report + trace + clock equality. Sharded
/// runs pin 4 worker threads so the parallel path is real even on one
/// core.
fn assert_shard_twin(
    label: &str,
    cycles: u64,
    shard_counts: &[usize],
    mut build: impl FnMut() -> NetworkBuilder,
) {
    let mut serial = build().build();
    assert_eq!(serial.num_shards(), 1, "{label}: serial run got sharded");
    let s = serial.run(cycles).to_json();
    let s_now = serial.now();
    let s_events = serial.take_trace_events();
    assert!(s.contains("counters"), "{label}: empty report");

    for &shards in shard_counts {
        let mut sharded = build().shards(shards).build();
        assert!(
            sharded.num_shards() > 1,
            "{label}: shards={shards} fell back to serial"
        );
        sharded.set_shard_threads(Some(4));
        let p = sharded.run(cycles).to_json();
        assert!(
            s == p,
            "{label}: serial and shards={shards} reports differ\nserial:\n{s}\nsharded:\n{p}"
        );
        assert_eq!(s_now, sharded.now(), "{label}: shards={shards} clock differs");
        assert_eq!(
            s_events,
            sharded.take_trace_events(),
            "{label}: shards={shards} trace event streams differ"
        );
    }
}

/// Fig. 9 shape: plain CR, adaptive routing, uniform traffic.
#[test]
fn fig09_style_shard_twin_matches() {
    for vcs in [1, 2] {
        assert_shard_twin(
            &format!("fig09 vcs={vcs}"),
            Scale::Tiny.cycles(),
            &SHARD_COUNTS,
            || {
                let mut b = Scale::Tiny.builder();
                b.routing(RoutingKind::Adaptive { vcs })
                    .protocol(ProtocolKind::Cr)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
                    .trace(4096)
                    .seed(0x90 + vcs as u64);
                b
            },
        );
    }
}

/// Fig. 11 shape: kill timeout 32, static vs dynamic retransmission
/// gaps — heavy kill/retransmit machinery across shard boundaries.
#[test]
fn fig11_style_shard_twin_matches() {
    let schemes = [
        ("static-4", RetransmitScheme::StaticGap { gap: 4 }),
        (
            "dynamic",
            RetransmitScheme::ExponentialBackoff {
                slot: 16,
                ceiling: 10,
            },
        ),
    ];
    for (name, scheme) in schemes {
        assert_shard_twin(
            &format!("fig11 {name}"),
            Scale::Tiny.cycles(),
            &SHARD_COUNTS,
            move || {
                let mut b = Scale::Tiny.builder();
                b.routing(RoutingKind::Adaptive { vcs: 1 })
                    .protocol(ProtocolKind::Cr)
                    .timeout(32)
                    .retransmit(scheme)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
                    .trace(4096)
                    .seed(110);
                b
            },
        );
    }
}

/// Fig. 16 shape: FCR with permanent link faults and misrouting — the
/// arrivals phase takes its serial fallback (fault detection can kill
/// from an arrival), so this pins the fallback's byte-identity too.
#[test]
fn fig16_style_faulty_shard_twin_matches() {
    for dead in [2usize, 4] {
        assert_shard_twin(
            &format!("fig16 dead={dead}"),
            Scale::Tiny.cycles(),
            &SHARD_COUNTS,
            move || {
                let mut b = Scale::Tiny.builder();
                let mut faults = FaultModel::new();
                let topo = KAryNCube::torus(Scale::Tiny.radix(), 2);
                faults
                    .kill_random_links_connected(&topo, dead, &mut SimRng::from_seed(0xFA))
                    .expect("fault plan must keep the network connected");
                b.routing(RoutingKind::AdaptiveMisroute {
                    vcs: 1,
                    extra_hops: 4,
                })
                .protocol(ProtocolKind::Fcr)
                .faults(faults)
                .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
                .trace(4096)
                .seed(0x16);
                b
            },
        );
    }
}

/// One showdown point per topology kind in the zoo (torus, mesh,
/// fat-tree, full mesh), each under its first legal scheme — the
/// irregular fabrics have non-grid partition hints and asymmetric
/// cross-shard link sets.
#[test]
fn showdown_point_per_topology_shard_twin_matches() {
    for kind in showdown::zoo(Scale::Tiny) {
        let (scheme, routing, protocol) = showdown::schemes(kind.clone())[0];
        assert_shard_twin(
            &format!("showdown {kind:?} {scheme}"),
            Scale::Tiny.cycles(),
            &SHARD_COUNTS,
            || {
                let mut b = NetworkBuilder::from_kind(&kind);
                b.routing(routing)
                    .protocol(protocol)
                    .warmup(Scale::Tiny.warmup())
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
                    .trace(4096)
                    .seed(640);
                b
            },
        );
    }
}

/// `shards = 1` through the persistent team: forcing the sharded
/// stepper on a single-shard plan still runs every team fan-out,
/// ownership hand-off, and phase barrier, and must stay byte-identical
/// to the serial stepper — both fault-free (parallel arrivals gate)
/// and with dead links (gated arrivals under FCR).
#[test]
fn single_shard_through_team_twin_matches() {
    for dead in [0usize, 2] {
        let label = format!("forced-team shards=1 dead={dead}");
        let build = || {
            let mut b = Scale::Tiny.builder();
            let mut faults = FaultModel::new();
            if dead > 0 {
                let topo = KAryNCube::torus(Scale::Tiny.radix(), 2);
                faults
                    .kill_random_links_connected(&topo, dead, &mut SimRng::from_seed(0xFA))
                    .expect("fault plan must keep the network connected");
            }
            b.routing(RoutingKind::AdaptiveMisroute {
                vcs: 1,
                extra_hops: 4,
            })
            .protocol(ProtocolKind::Fcr)
            .faults(faults)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
            .trace(4096)
            .seed(0x51);
            b
        };
        let mut serial = build().build();
        let s = serial.run(Scale::Tiny.cycles()).to_json();

        let mut forced = build().build();
        assert_eq!(forced.num_shards(), 1, "{label}: plan must stay single-shard");
        forced.set_force_sharded(true);
        forced.set_shard_threads(Some(4));
        let p = forced.run(Scale::Tiny.cycles()).to_json();
        assert!(
            s == p,
            "{label}: serial and forced-sharded reports differ\nserial:\n{s}\nforced:\n{p}"
        );
        assert_eq!(serial.now(), forced.now(), "{label}: clock differs");
        assert_eq!(
            serial.take_trace_events(),
            forced.take_trace_events(),
            "{label}: trace event streams differ"
        );
    }
}

/// Constructing and dropping sharded networks must not leak worker
/// threads: the persistent team is joined in `Network::drop` before
/// the shard state it references is freed. 100 construct/step/drop
/// rounds leave the process thread count where it started.
#[test]
fn repeated_sharded_drop_leaks_no_threads() {
    // /proc is the only std-visible thread census; skip quietly where
    // absent (same policy as the pool's own drop test).
    let count_threads = || -> Option<usize> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    };
    let Some(before) = count_threads() else {
        return;
    };
    for round in 0..100u64 {
        let mut b = Scale::Tiny.builder();
        b.routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
            .seed(round)
            .shards(4);
        let mut net = b.build();
        net.set_shard_threads(Some(4));
        // A handful of cycles is enough to spawn the team lazily.
        net.run(8);
    }
    let after = count_threads().expect("thread census available above");
    assert!(
        after <= before,
        "sharded network drops leaked threads: {before} -> {after}"
    );
}

/// A faulty FCR sweep through the parallel executor: serial vs sharded
/// at sweep jobs = 1 and jobs = 4 must all agree byte-for-byte
/// (sweep-level and shard-level parallelism compose).
fn faulty_sweep_reports(jobs: usize, shards: usize) -> Vec<String> {
    let points: Vec<usize> = vec![0, 2, 4];
    SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|dead| {
                move || {
                    let scale = Scale::Tiny;
                    let mut b = scale.builder();
                    let mut faults = FaultModel::new();
                    if dead > 0 {
                        let topo = KAryNCube::torus(scale.radix(), 2);
                        faults
                            .kill_random_links_connected(
                                &topo,
                                dead,
                                &mut SimRng::from_seed(0xFA),
                            )
                            .expect("fault plan must keep the network connected");
                    }
                    b.routing(RoutingKind::AdaptiveMisroute {
                        vcs: 1,
                        extra_hops: 4,
                    })
                    .protocol(ProtocolKind::Fcr)
                    .faults(faults)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
                    .seed(0x16)
                    .shards(shards);
                    let mut net = b.build();
                    if shards > 1 {
                        net.set_shard_threads(Some(4));
                    }
                    net.run(scale.cycles()).to_json()
                }
            })
            .collect(),
    )
}

#[test]
fn faulty_sweep_sharded_matches_serial_across_jobs() {
    let serial_1 = faulty_sweep_reports(1, 1);
    let sharded_1 = faulty_sweep_reports(1, 4);
    let serial_n = faulty_sweep_reports(4, 1);
    let sharded_n = faulty_sweep_reports(4, 4);
    assert_eq!(serial_1, sharded_1, "serial vs sharded differ at jobs=1");
    assert_eq!(serial_1, serial_n, "serial differs across job counts");
    assert_eq!(sharded_1, sharded_n, "sharded differs across job counts");
    assert!(serial_1.iter().all(|s| s.contains("counters")));
}

/// A random topology from the zoo shapes, with random small parameters.
fn random_topology(src: &mut check::Source<'_>) -> Box<dyn Topology> {
    match src.usize_in(0..4) {
        0 => TopologyKind::Torus {
            radix: src.usize_in(2..6),
            dims: 2,
        },
        1 => TopologyKind::Mesh {
            radix: src.usize_in(2..6),
            dims: 2,
        },
        2 => TopologyKind::FatTree {
            k: 2 * src.usize_in(1..3),
        },
        _ => TopologyKind::FullMesh {
            nodes: src.usize_in(2..20),
        },
    }
    .build()
}

/// Property: every topology's partition hint yields a plan that is a
/// disjoint exact cover of the node IDs — each node owned by exactly
/// one shard, shard ranges contiguous and ascending — for any
/// requested shard count, including 1 and more shards than nodes.
#[test]
fn prop_partition_is_disjoint_exact_cover() {
    check::check(
        "shard_equiv::prop_partition_is_disjoint_exact_cover",
        check::Config::cases(64),
        |src| {
            let topo = random_topology(src);
            let n = topo.num_nodes();
            let shards = src.usize_in(1..(2 * n + 2));
            let plan = Plan::from_hint(topo.partition_hint(shards), n, shards);
            assert_eq!(plan.num_nodes(), n);
            let owners = plan.owner_table();
            assert_eq!(owners.len(), n);
            let mut covered = 0;
            for s in 0..plan.num_shards() {
                let range = plan.range(s);
                assert!(range.start <= range.end && range.end <= n);
                for node in range.clone() {
                    assert_eq!(owners[node] as usize, s, "node {node} owner mismatch");
                    assert_eq!(plan.shard_of(node as u32) as usize, s);
                }
                covered += range.len();
            }
            assert_eq!(covered, n, "partition is not an exact cover");
        },
    );
}

/// Property: a random topology at a random shard count (1, many, or
/// more than nodes) twin-runs byte-identically against the serial
/// stepper under CR traffic.
#[test]
fn prop_random_shard_count_twin_matches() {
    check::check(
        "shard_equiv::prop_random_shard_count_twin_matches",
        check::Config::cases(12),
        |src| {
            let kind = match src.usize_in(0..3) {
                0 => TopologyKind::Torus {
                    radix: src.usize_in(3..5),
                    dims: 2,
                },
                1 => TopologyKind::FatTree { k: 4 },
                _ => TopologyKind::FullMesh {
                    nodes: src.usize_in(4..12),
                },
            };
            let nodes = kind.build().num_nodes();
            // 1, a small count, or deliberately more shards than nodes.
            let shards = src.usize_in(1..(nodes + 4));
            let seed = src.u64_in(0..1 << 20);
            let load = src.f64_in(0.05, 0.3);
            let build = |shards: usize| {
                let mut b = NetworkBuilder::from_kind(&kind);
                b.routing(RoutingKind::Adaptive { vcs: 1 })
                    .protocol(ProtocolKind::Cr)
                    .warmup(0)
                    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), load)
                    .trace(2048)
                    .seed(seed)
                    .shards(shards);
                b.build()
            };
            let mut serial = build(1);
            let mut sharded = build(shards);
            sharded.set_shard_threads(Some(4));
            let s = serial.run(400).to_json();
            let p = sharded.run(400).to_json();
            assert!(
                s == p,
                "{kind:?} shards={shards} seed={seed}: reports differ\nserial:\n{s}\nsharded:\n{p}"
            );
            assert_eq!(serial.now(), sharded.now());
            assert_eq!(serial.take_trace_events(), sharded.take_trace_events());
        },
    );
}
