//! Property-based tests of the traffic generators.

use cr_sim::{NodeId, SimRng};
use cr_traffic::{LengthDistribution, TrafficPattern, TrafficSource};
use proptest::prelude::*;

proptest! {
    /// Every pattern keeps destinations in range and never
    /// self-addresses, on any power-of-two network.
    #[test]
    fn destinations_in_range_never_self(
        bits in 2u32..7,
        src in 0u32..64,
        seed in any::<u64>(),
    ) {
        let n = 1usize << bits;
        let src = NodeId::new(src % n as u32);
        let mut rng = SimRng::from_seed(seed);
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
            TrafficPattern::Hotspot { hotspot: NodeId::new(0), fraction: 0.3 },
        ];
        for p in patterns {
            for _ in 0..8 {
                if let Some(d) = p.destination(src, n, &mut rng) {
                    prop_assert!(d.index() < n, "{p:?} out of range");
                    prop_assert_ne!(d, src, "{:?} self-addressed", p);
                }
            }
        }
    }

    /// Deterministic permutations are injective over the whole node
    /// set (counting silent fixed points as mapped to themselves).
    #[test]
    fn permutations_are_injective(bits in 2u32..7) {
        let n = 1usize << bits;
        let mut rng = SimRng::from_seed(1);
        for p in [
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
        ] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..n {
                let src = NodeId::new(s as u32);
                let d = p.destination(src, n, &mut rng).unwrap_or(src);
                prop_assert!(seen.insert(d), "{p:?} not injective at {s}");
            }
        }
    }

    /// The measured offered load tracks the configured load for any
    /// length distribution.
    #[test]
    fn offered_load_calibrated(
        load_millis in 10u32..800,
        len in 2usize..40,
        seed in any::<u64>(),
    ) {
        let load = f64::from(load_millis) / 1000.0;
        let mut src = TrafficSource::new(
            NodeId::new(0),
            64,
            TrafficPattern::Uniform,
            LengthDistribution::Fixed(len),
            load,
            SimRng::from_seed(seed),
        );
        let cycles = 30_000;
        let mut flits = 0usize;
        for _ in 0..cycles {
            if let Some(m) = src.poll() {
                flits += m.length;
            }
        }
        let measured = flits as f64 / cycles as f64;
        prop_assert!(
            (measured - load).abs() < 0.05 + load * 0.12,
            "configured {load}, measured {measured}"
        );
    }

    /// Length distributions always return lengths within their stated
    /// support.
    #[test]
    fn lengths_stay_in_support(
        short in 2usize..10,
        extra in 0usize..50,
        frac_millis in 0u32..=1000,
        seed in any::<u64>(),
    ) {
        let long = short + extra;
        let d = LengthDistribution::Bimodal {
            short,
            long,
            long_fraction: f64::from(frac_millis) / 1000.0,
        };
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..64 {
            let l = d.sample(&mut rng);
            prop_assert!(l == short || l == long);
            prop_assert!(l <= d.max());
        }
        let u = LengthDistribution::UniformRange { min: short, max: long };
        for _ in 0..64 {
            let l = u.sample(&mut rng);
            prop_assert!((short..=long).contains(&l));
        }
    }
}
