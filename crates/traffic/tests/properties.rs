//! Property-based tests of the traffic generators.

use cr_sim::check::{check, Config};
use cr_sim::{NodeId, SimRng};
use cr_traffic::{LengthDistribution, TrafficPattern, TrafficSource};

/// Every pattern keeps destinations in range and never self-addresses,
/// on any power-of-two network.
#[test]
fn destinations_in_range_never_self() {
    check("destinations_in_range_never_self", Config::default(), |source| {
        let bits = source.u32_in(2..7);
        let n = 1usize << bits;
        let src = NodeId::new(source.u32_in(0..64) % n as u32);
        let seed = source.u64_any();
        let mut rng = SimRng::from_seed(seed);
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
            TrafficPattern::Hotspot { hotspot: NodeId::new(0), fraction: 0.3 },
        ];
        for p in patterns {
            for _ in 0..8 {
                if let Some(d) = p.destination(src, n, &mut rng) {
                    assert!(d.index() < n, "{p:?} out of range");
                    assert_ne!(d, src, "{p:?} self-addressed");
                }
            }
        }
    });
}

/// Deterministic permutations are injective over the whole node set
/// (counting silent fixed points as mapped to themselves).
#[test]
fn permutations_are_injective() {
    check("permutations_are_injective", Config::default(), |source| {
        let bits = source.u32_in(2..7);
        let n = 1usize << bits;
        let mut rng = SimRng::from_seed(1);
        for p in [
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
        ] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..n {
                let src = NodeId::new(s as u32);
                let d = p.destination(src, n, &mut rng).unwrap_or(src);
                assert!(seen.insert(d), "{p:?} not injective at {s}");
            }
        }
    });
}

/// The measured offered load tracks the configured load for any length
/// distribution.
#[test]
fn offered_load_calibrated() {
    check("offered_load_calibrated", Config::default(), |source| {
        let load = f64::from(source.u32_in(10..800)) / 1000.0;
        let len = source.usize_in(2..40);
        let seed = source.u64_any();
        let mut src = TrafficSource::new(
            NodeId::new(0),
            64,
            TrafficPattern::Uniform,
            LengthDistribution::Fixed(len),
            load,
            SimRng::from_seed(seed),
        );
        let cycles = 30_000;
        let mut flits = 0usize;
        for _ in 0..cycles {
            if let Some(m) = src.poll() {
                flits += m.length;
            }
        }
        let measured = flits as f64 / cycles as f64;
        assert!(
            (measured - load).abs() < 0.05 + load * 0.12,
            "configured {load}, measured {measured}"
        );
    });
}

/// Length distributions always return lengths within their stated
/// support.
#[test]
fn lengths_stay_in_support() {
    check("lengths_stay_in_support", Config::default(), |src| {
        let short = src.usize_in(2..10);
        let extra = src.usize_in(0..50);
        let frac = f64::from(src.u32_in(0..1001)) / 1000.0;
        let seed = src.u64_any();
        let long = short + extra;
        let d = LengthDistribution::Bimodal {
            short,
            long,
            long_fraction: frac,
        };
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..64 {
            let l = d.sample(&mut rng);
            assert!(l == short || l == long);
            assert!(l <= d.max());
        }
        let u = LengthDistribution::UniformRange { min: short, max: long };
        for _ in 0..64 {
            let l = u.sample(&mut rng);
            assert!((short..=long).contains(&l));
        }
    });
}
