//! The per-node Bernoulli traffic source.

use crate::{LengthDistribution, TrafficPattern};
use cr_sim::{NodeId, SimRng};

/// A request to send one message, produced by a [`TrafficSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRequest {
    /// Destination node.
    pub dst: NodeId,
    /// Message length in flits (header and tail included).
    pub length: usize,
}

/// An open-loop Bernoulli message source for one node.
///
/// Each cycle, [`TrafficSource::poll`] generates a message with
/// probability `load / mean_length`, so that the long-run *offered
/// load* equals `load` flits per node per cycle — the normalization the
/// paper's throughput axes use. The source is open-loop: generation
/// never slows down when the network backs up, which is what drives
/// networks past saturation in the latency/throughput sweeps.
///
/// # Examples
///
/// ```
/// use cr_traffic::{LengthDistribution, TrafficPattern, TrafficSource};
/// use cr_sim::{NodeId, SimRng};
///
/// let mut src = TrafficSource::new(
///     NodeId::new(0), 16,
///     TrafficPattern::Uniform,
///     LengthDistribution::Fixed(8),
///     0.4,
///     SimRng::from_seed(5),
/// );
/// let msgs: usize = (0..1000).filter_map(|_| src.poll()).count();
/// // 0.4 flits/cycle at 8 flits/message = 0.05 msg/cycle -> ~50.
/// assert!((30..70).contains(&msgs), "msgs = {msgs}");
/// ```
#[derive(Debug, Clone)]
pub struct TrafficSource {
    node: NodeId,
    num_nodes: usize,
    pattern: TrafficPattern,
    lengths: LengthDistribution,
    message_rate: f64,
    rng: SimRng,
    generated: u64,
}

impl TrafficSource {
    /// Creates a source for `node` in a network of `num_nodes` nodes,
    /// offering `load` flits per node per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative, if the implied message rate
    /// exceeds 1 per cycle (raise the message length or lower the
    /// load), or if `num_nodes < 2`.
    pub fn new(
        node: NodeId,
        num_nodes: usize,
        pattern: TrafficPattern,
        lengths: LengthDistribution,
        load: f64,
        rng: SimRng,
    ) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(load >= 0.0, "load must be non-negative");
        let message_rate = load / lengths.mean();
        assert!(
            message_rate <= 1.0,
            "offered load {load} exceeds one message per cycle at mean length {}",
            lengths.mean()
        );
        TrafficSource {
            node,
            num_nodes,
            pattern,
            lengths,
            message_rate,
            rng,
            generated: 0,
        }
    }

    /// The node this source belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of messages generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Advances one cycle; returns a message request if one was
    /// generated this cycle.
    ///
    /// Deterministic-pattern fixed points (e.g. the transpose diagonal)
    /// consume a Bernoulli draw but produce nothing, matching the usual
    /// convention that such nodes are silent.
    pub fn poll(&mut self) -> Option<MessageRequest> {
        if !self.rng.chance(self.message_rate) {
            return None;
        }
        let dst = self
            .pattern
            .destination(self.node, self.num_nodes, &mut self.rng)?;
        let length = self.lengths.sample(&mut self.rng);
        self.generated += 1;
        Some(MessageRequest { dst, length })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(load: f64, seed: u64) -> TrafficSource {
        TrafficSource::new(
            NodeId::new(1),
            64,
            TrafficPattern::Uniform,
            LengthDistribution::Fixed(16),
            load,
            SimRng::from_seed(seed),
        )
    }

    #[test]
    fn offered_load_is_calibrated() {
        let mut s = source(0.32, 7);
        let cycles = 100_000;
        let mut flits = 0usize;
        for _ in 0..cycles {
            if let Some(m) = s.poll() {
                flits += m.length;
            }
        }
        let load = flits as f64 / cycles as f64;
        assert!((load - 0.32).abs() < 0.02, "measured load = {load}");
        assert_eq!(s.generated() as usize, flits / 16);
    }

    #[test]
    fn zero_load_is_silent() {
        let mut s = source(0.0, 3);
        for _ in 0..1000 {
            assert!(s.poll().is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = source(0.5, 42);
        let mut b = source(0.5, 42);
        for _ in 0..1000 {
            assert_eq!(a.poll(), b.poll());
        }
    }

    #[test]
    #[should_panic]
    fn impossible_load_rejected() {
        // 20 flits/cycle at 16-flit messages needs >1 message/cycle.
        let _ = source(20.0, 0);
    }

    #[test]
    fn transpose_diagonal_nodes_stay_silent() {
        let mut s = TrafficSource::new(
            NodeId::new(0), // (0,0) is a transpose fixed point
            64,
            TrafficPattern::Transpose,
            LengthDistribution::Fixed(8),
            0.9,
            SimRng::from_seed(1),
        );
        for _ in 0..1000 {
            assert!(s.poll().is_none());
        }
        assert_eq!(s.generated(), 0);
    }
}
