//! Destination-selection patterns.

use cr_sim::{NodeId, SimRng};

/// How a source node chooses message destinations.
///
/// The permutation patterns (`Transpose`, `BitReversal`,
/// `BitComplement`, `Shuffle`) interpret node indices as bit strings and
/// therefore require the node count to be a power of two; they are the
/// classic adversarial patterns for dimension-order routing, which is
/// exactly why the paper predicts CR's advantage grows on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding the source itself) — the
    /// paper's primary workload.
    Uniform,
    /// `dst = transpose(src)`: with `2b` address bits, swaps the high
    /// and low halves. On a square 2-D network this sends `(x, y)` to
    /// `(y, x)`.
    Transpose,
    /// `dst = bit-reverse(src)`.
    BitReversal,
    /// `dst = ~src` (complement every address bit).
    BitComplement,
    /// `dst = rotate-left-1(src)` (perfect shuffle).
    Shuffle,
    /// With probability `fraction`, send to `hotspot`; otherwise pick
    /// uniformly.
    Hotspot {
        /// The congested destination.
        hotspot: NodeId,
        /// Fraction of traffic aimed at the hotspot.
        fraction: f64,
    },
    /// Every node sends to the node diametrically opposite in index
    /// space (`dst = (src + N/2) mod N`) — worst case distance on a
    /// torus.
    Tornado,
}

impl TrafficPattern {
    /// Returns `true` if the pattern requires a power-of-two node count.
    pub fn requires_power_of_two(&self) -> bool {
        matches!(
            self,
            TrafficPattern::Transpose
                | TrafficPattern::BitReversal
                | TrafficPattern::BitComplement
                | TrafficPattern::Shuffle
        )
    }

    /// Draws a destination for a message from `src` in a network of
    /// `num_nodes` nodes, or `None` if the pattern maps `src` to itself
    /// (deterministic patterns may have fixed points; those sources
    /// simply stay silent, the standard convention).
    ///
    /// # Panics
    ///
    /// Panics if the pattern requires a power-of-two node count and
    /// `num_nodes` is not one, if `num_nodes < 2`, or if a `Hotspot`
    /// fraction is outside `[0, 1]`.
    pub fn destination(
        &self,
        src: NodeId,
        num_nodes: usize,
        rng: &mut SimRng,
    ) -> Option<NodeId> {
        assert!(num_nodes >= 2, "need at least two nodes");
        if self.requires_power_of_two() {
            assert!(
                num_nodes.is_power_of_two(),
                "{self:?} requires a power-of-two node count, got {num_nodes}"
            );
        }
        let s = src.index();
        let bits = num_nodes.trailing_zeros() as usize;
        let dst = match *self {
            TrafficPattern::Uniform => {
                // Draw from the N-1 non-self nodes directly.
                let r = rng.pick_index(num_nodes - 1).expect("num_nodes >= 2");
                if r >= s {
                    r + 1
                } else {
                    r
                }
            }
            TrafficPattern::Transpose => {
                let half = bits / 2;
                let low = s & ((1 << half) - 1);
                let high = s >> half;
                (low << (bits - half)) | high
            }
            TrafficPattern::BitReversal => {
                let mut v = 0usize;
                for i in 0..bits {
                    if s & (1 << i) != 0 {
                        v |= 1 << (bits - 1 - i);
                    }
                }
                v
            }
            TrafficPattern::BitComplement => !s & (num_nodes - 1),
            TrafficPattern::Shuffle => ((s << 1) | (s >> (bits - 1))) & (num_nodes - 1),
            TrafficPattern::Hotspot { hotspot, fraction } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "hotspot fraction out of range"
                );
                assert!(hotspot.index() < num_nodes, "hotspot out of range");
                if rng.chance(fraction) && hotspot.index() != s {
                    hotspot.index()
                } else {
                    let r = rng.pick_index(num_nodes - 1).expect("num_nodes >= 2");
                    if r >= s {
                        r + 1
                    } else {
                        r
                    }
                }
            }
            TrafficPattern::Tornado => (s + num_nodes / 2) % num_nodes,
        };
        if dst == s {
            None
        } else {
            Some(NodeId::new(dst as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(11)
    }

    #[test]
    fn uniform_never_self_and_covers_all() {
        let mut r = rng();
        let src = NodeId::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = TrafficPattern::Uniform.destination(src, 16, &mut r).unwrap();
            assert_ne!(d, src);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15, "all non-self nodes should appear");
    }

    #[test]
    fn transpose_swaps_coordinates() {
        // 64 nodes = 8x8; node index = y*8 + x; transpose maps
        // bits [b5..b3 | b2..b0] -> [b2..b0 | b5..b3], i.e. (x,y)->(y,x).
        let mut r = rng();
        let src = NodeId::new(3 + 8 * 6); // (x=3, y=6)
        let dst = TrafficPattern::Transpose
            .destination(src, 64, &mut r)
            .unwrap();
        assert_eq!(dst, NodeId::new(6 + 8 * 3)); // (x=6, y=3)
    }

    #[test]
    fn transpose_fixed_points_are_silent() {
        let mut r = rng();
        let src = NodeId::new(2 + 8 * 2); // (2,2) is on the diagonal
        assert_eq!(
            TrafficPattern::Transpose.destination(src, 64, &mut r),
            None
        );
    }

    #[test]
    fn bit_reversal_matches_manual() {
        let mut r = rng();
        // 16 nodes, 4 bits: 0b0001 -> 0b1000.
        let dst = TrafficPattern::BitReversal
            .destination(NodeId::new(1), 16, &mut r)
            .unwrap();
        assert_eq!(dst, NodeId::new(8));
    }

    #[test]
    fn bit_complement_is_involution() {
        let mut r = rng();
        for s in 0..32u32 {
            if let Some(d) = TrafficPattern::BitComplement.destination(NodeId::new(s), 32, &mut r)
            {
                let back = TrafficPattern::BitComplement
                    .destination(d, 32, &mut r)
                    .unwrap();
                assert_eq!(back, NodeId::new(s));
            }
        }
    }

    #[test]
    fn shuffle_rotates_bits() {
        let mut r = rng();
        // 16 nodes: 0b1001 -> 0b0011.
        let dst = TrafficPattern::Shuffle
            .destination(NodeId::new(0b1001), 16, &mut r)
            .unwrap();
        assert_eq!(dst, NodeId::new(0b0011));
    }

    #[test]
    fn tornado_goes_halfway() {
        let mut r = rng();
        let dst = TrafficPattern::Tornado
            .destination(NodeId::new(3), 64, &mut r)
            .unwrap();
        assert_eq!(dst, NodeId::new(35));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut r = rng();
        let hotspot = NodeId::new(0);
        let p = TrafficPattern::Hotspot {
            hotspot,
            fraction: 0.5,
        };
        let n = 4000;
        let hits = (0..n)
            .filter(|_| p.destination(NodeId::new(9), 64, &mut r) == Some(hotspot))
            .count();
        let frac = hits as f64 / n as f64;
        // 0.5 directed + ~0.5/63 of the uniform remainder.
        assert!((frac - 0.508).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn permutations_demand_power_of_two() {
        let mut r = rng();
        let _ = TrafficPattern::BitReversal.destination(NodeId::new(0), 12, &mut r);
    }

    #[test]
    fn permutations_are_within_range() {
        let mut r = rng();
        for pat in [
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
        ] {
            for s in 0..64u32 {
                if let Some(d) = pat.destination(NodeId::new(s), 64, &mut r) {
                    assert!(d.index() < 64, "{pat:?} escaped range");
                    assert_ne!(d.index(), s as usize);
                }
            }
        }
    }
}
