//! Trace-driven workloads: replay an explicit list of timed messages.
//!
//! Synthetic open-loop traffic answers "how does the network behave at
//! load X"; traces answer "how fast does *this application's*
//! communication finish". The generators below produce the classic
//! parallel-application shapes on any topology: bulk-synchronous
//! phases of neighbor exchange, all-to-one reductions, and permutation
//! bursts.

use cr_sim::{Cycle, NodeId, SimRng};

/// One timed message in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the source hands the message to its injector.
    pub at: Cycle,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload length in flits.
    pub length: u32,
}

/// A time-ordered list of messages to inject.
///
/// # Examples
///
/// ```
/// use cr_traffic::{Trace, TraceEvent};
/// use cr_sim::{Cycle, NodeId};
///
/// let trace = Trace::from_events(vec![
///     TraceEvent { at: Cycle::new(10), src: NodeId::new(0), dst: NodeId::new(1), length: 8 },
///     TraceEvent { at: Cycle::new(0),  src: NodeId::new(1), dst: NodeId::new(2), length: 8 },
/// ]);
/// assert_eq!(trace.len(), 2);
/// // Events are kept sorted by time:
/// assert_eq!(trace.events()[0].at, Cycle::new(0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace, sorting events by injection time (stable, so
    /// equal-time events keep their given order).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Trace { events }
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of messages in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last injection.
    pub fn end(&self) -> Cycle {
        self.events.last().map(|e| e.at).unwrap_or(Cycle::ZERO)
    }

    /// Total payload flits.
    pub fn total_flits(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.length)).sum()
    }

    /// Concatenates another trace, shifted by `offset` cycles.
    pub fn chain(mut self, other: &Trace, offset: u64) -> Self {
        self.events.extend(other.events.iter().map(|e| TraceEvent {
            at: e.at + offset,
            ..*e
        }));
        Trace::from_events(self.events)
    }

    /// Bulk-synchronous **neighbor exchange**: at each phase start,
    /// every node sends one `length`-flit message to each of its
    /// topology neighbors (the halo exchange of stencil codes).
    ///
    /// `phases` rounds separated by `compute_gap` cycles of silence.
    pub fn neighbor_exchange(
        topo: &dyn cr_topology::Topology,
        phases: usize,
        compute_gap: u64,
        length: u32,
    ) -> Self {
        let mut events = Vec::new();
        for phase in 0..phases {
            let at = Cycle::new(phase as u64 * compute_gap);
            for i in 0..topo.num_nodes() {
                let src = NodeId::new(i as u32);
                for p in 0..topo.num_ports(src) {
                    if let Some(dst) = topo.neighbor(src, cr_sim::PortId::new(p as u16)) {
                        if dst != src {
                            events.push(TraceEvent {
                                at,
                                src,
                                dst,
                                length,
                            });
                        }
                    }
                }
            }
        }
        Trace::from_events(events)
    }

    /// **All-to-one reduction**: every node sends one message to
    /// `root` at time `at` (the classic hotspot burst).
    pub fn reduction(num_nodes: usize, root: NodeId, at: Cycle, length: u32) -> Self {
        let events = (0..num_nodes)
            .filter(|&i| i != root.index())
            .map(|i| TraceEvent {
                at,
                src: NodeId::new(i as u32),
                dst: root,
                length,
            })
            .collect();
        Trace::from_events(events)
    }

    /// **Random permutation burst**: every node sends one message to a
    /// distinct random partner at time `at` (an all-to-all exchange
    /// step).
    pub fn permutation(num_nodes: usize, at: Cycle, length: u32, rng: &mut SimRng) -> Self {
        // Fisher–Yates a derangement-ish permutation (fixed points are
        // simply skipped — those nodes stay silent this burst).
        let mut perm: Vec<usize> = (0..num_nodes).collect();
        for i in (1..num_nodes).rev() {
            let j = rng.pick_index(i + 1).expect("non-empty");
            perm.swap(i, j);
        }
        let events = (0..num_nodes)
            .filter(|&i| perm[i] != i)
            .map(|i| TraceEvent {
                at,
                src: NodeId::new(i as u32),
                dst: NodeId::new(perm[i] as u32),
                length,
            })
            .collect();
        Trace::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn events_are_sorted_and_counted() {
        let t = Trace::from_events(vec![
            TraceEvent {
                at: Cycle::new(5),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                length: 4,
            },
            TraceEvent {
                at: Cycle::new(1),
                src: NodeId::new(1),
                dst: NodeId::new(0),
                length: 6,
            },
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].at, Cycle::new(1));
        assert_eq!(t.end(), Cycle::new(5));
        assert_eq!(t.total_flits(), 10);
        assert!(!t.is_empty());
    }

    #[test]
    fn neighbor_exchange_covers_every_channel_direction() {
        let topo = KAryNCube::torus(4, 2);
        let t = Trace::neighbor_exchange(&topo, 2, 100, 8);
        // Each node sends to 4 neighbors, 16 nodes, 2 phases.
        assert_eq!(t.len(), 4 * 16 * 2);
        assert!(t.events().iter().all(|e| e.src != e.dst));
        assert_eq!(t.end(), Cycle::new(100));
        // Phase 2 events all at t=100.
        let late = t.events().iter().filter(|e| e.at == Cycle::new(100)).count();
        assert_eq!(late, 64);
    }

    #[test]
    fn reduction_targets_the_root() {
        let t = Trace::reduction(16, NodeId::new(3), Cycle::new(7), 4);
        assert_eq!(t.len(), 15);
        assert!(t.events().iter().all(|e| e.dst == NodeId::new(3)));
        assert!(t.events().iter().all(|e| e.src != NodeId::new(3)));
    }

    #[test]
    fn permutation_is_a_partial_permutation() {
        let mut rng = SimRng::from_seed(4);
        let t = Trace::permutation(16, Cycle::ZERO, 8, &mut rng);
        assert!(t.len() >= 13, "few fixed points expected, got {}", t.len());
        let mut dsts: Vec<u32> = t.events().iter().map(|e| e.dst.as_u32()).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), t.len(), "destinations are distinct");
        assert!(t.events().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn chain_offsets_the_second_trace() {
        let a = Trace::reduction(4, NodeId::new(0), Cycle::ZERO, 2);
        let b = Trace::reduction(4, NodeId::new(1), Cycle::ZERO, 2);
        let c = a.clone().chain(&b, 50);
        assert_eq!(c.len(), a.len() + b.len());
        assert_eq!(c.end(), Cycle::new(50));
    }
}
