//! Message-length distributions.

use cr_sim::SimRng;

/// Distribution of message lengths, in flits (header and tail
/// included).
///
/// The paper's main experiments use fixed 16-flit messages; the
/// bimodal option reproduces the short/long mixes of the authors'
/// companion study (reference \[32\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDistribution {
    /// Every message has exactly this many flits.
    Fixed(usize),
    /// Short/long mix: with probability `long_fraction` a message has
    /// `long` flits, otherwise `short`.
    Bimodal {
        /// Length of short messages, in flits.
        short: usize,
        /// Length of long messages, in flits.
        long: usize,
        /// Probability of drawing a long message.
        long_fraction: f64,
    },
    /// Uniformly random length in `min..=max` flits.
    UniformRange {
        /// Minimum length, in flits.
        min: usize,
        /// Maximum length, in flits.
        max: usize,
    },
}

impl LengthDistribution {
    /// Draws one message length.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are invalid (zero lengths,
    /// `min > max`, or a fraction outside `\[0, 1\]`).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        match *self {
            LengthDistribution::Fixed(len) => {
                assert!(len >= 2, "a worm needs a header and a tail flit");
                len
            }
            LengthDistribution::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                assert!(short >= 2 && long >= short, "invalid bimodal lengths");
                assert!(
                    (0.0..=1.0).contains(&long_fraction),
                    "long_fraction out of range"
                );
                if rng.chance(long_fraction) {
                    long
                } else {
                    short
                }
            }
            LengthDistribution::UniformRange { min, max } => {
                assert!(min >= 2 && max >= min, "invalid length range");
                min + rng.pick_index(max - min + 1).unwrap_or(0)
            }
        }
    }

    /// Expected message length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDistribution::Fixed(len) => len as f64,
            LengthDistribution::Bimodal {
                short,
                long,
                long_fraction,
            } => short as f64 * (1.0 - long_fraction) + long as f64 * long_fraction,
            LengthDistribution::UniformRange { min, max } => (min + max) as f64 / 2.0,
        }
    }

    /// Largest length this distribution can produce.
    pub fn max(&self) -> usize {
        match *self {
            LengthDistribution::Fixed(len) => len,
            LengthDistribution::Bimodal { long, .. } => long,
            LengthDistribution::UniformRange { max, .. } => max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::from_seed(0);
        let d = LengthDistribution::Fixed(16);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 16);
        }
        assert_eq!(d.mean(), 16.0);
        assert_eq!(d.max(), 16);
    }

    #[test]
    fn bimodal_mixes() {
        let mut rng = SimRng::from_seed(1);
        let d = LengthDistribution::Bimodal {
            short: 4,
            long: 64,
            long_fraction: 0.25,
        };
        let n = 20_000;
        let longs = (0..n).filter(|_| d.sample(&mut rng) == 64).count();
        let frac = longs as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        assert_eq!(d.mean(), 4.0 * 0.75 + 64.0 * 0.25);
        assert_eq!(d.max(), 64);
    }

    #[test]
    fn uniform_range_covers_extremes() {
        let mut rng = SimRng::from_seed(2);
        let d = LengthDistribution::UniformRange { min: 2, max: 5 };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let l = d.sample(&mut rng);
            assert!((2..=5).contains(&l));
            seen.insert(l);
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    #[should_panic]
    fn one_flit_messages_rejected() {
        LengthDistribution::Fixed(1).sample(&mut SimRng::from_seed(0));
    }
}
