//! Synthetic workloads for the Compressionless Routing reproduction.
//!
//! The paper evaluates CR under open-loop synthetic traffic: every node
//! is a Bernoulli source generating fixed-length messages to
//! destinations drawn from a traffic pattern, at a controlled offered
//! load (flits per node per cycle). This crate provides:
//!
//! * [`TrafficPattern`] — destination selection: uniform random plus the
//!   standard adversarial permutations (transpose, bit-reversal,
//!   bit-complement) and hotspot traffic, used for the non-uniform
//!   extension experiment (the paper argues CR's advantage grows on
//!   non-uniform patterns).
//! * [`LengthDistribution`] — fixed or bimodal message lengths (the
//!   authors' companion paper, reference \[32\], studies bimodal loads).
//! * [`TrafficSource`] — the per-node Bernoulli generator.
//! * [`Trace`] — trace-driven workloads: replay explicit timed message
//!   lists, with generators for the classic parallel-application
//!   shapes (halo exchange, reductions, permutation bursts).
//!
//! # Examples
//!
//! ```
//! use cr_traffic::{LengthDistribution, TrafficPattern, TrafficSource};
//! use cr_sim::{NodeId, SimRng};
//!
//! let mut src = TrafficSource::new(
//!     NodeId::new(3),
//!     64,                              // nodes in the network
//!     TrafficPattern::Uniform,
//!     LengthDistribution::Fixed(16),
//!     0.2,                             // offered load, flits/node/cycle
//!     SimRng::from_seed(9),
//! );
//! let mut produced = 0;
//! for _ in 0..10_000 {
//!     if let Some(req) = src.poll() {
//!         assert_ne!(req.dst, NodeId::new(3)); // never self-addressed
//!         assert_eq!(req.length, 16);
//!         produced += 1;
//!     }
//! }
//! assert!(produced > 50); // ~125 expected at this load
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lengths;
mod pattern;
mod source;
mod trace;

pub use lengths::LengthDistribution;
pub use pattern::TrafficPattern;
pub use source::{MessageRequest, TrafficSource};
pub use trace::{Trace, TraceEvent};
