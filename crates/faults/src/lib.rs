//! Fault models for the Compressionless Routing reproduction.
//!
//! The paper's fault-tolerance evaluation (Section 6.2) injects
//! **transient faults** — individual flits corrupted in flight, at a
//! configurable rate per flit-hop — and **permanent faults** — channels
//! that stop working altogether. This crate provides both behind a
//! single [`FaultModel`] queried by the router on every flit-hop.
//!
//! The substitution for real hardware checksums (documented in
//! DESIGN.md): corruption is a boolean flag on the flit, and detection
//! happens at the next router with a configurable *miss rate*
//! (default 0, i.e. a perfect error-detecting code). FCR's nonstop
//! fault-tolerance guarantee holds exactly when the miss rate is zero,
//! and the test-suite asserts precisely that.
//!
//! # Examples
//!
//! ```
//! use cr_faults::FaultModel;
//! use cr_sim::{LinkId, SimRng};
//!
//! let mut faults = FaultModel::new();
//! faults.set_transient_rate(1e-3);
//! faults.kill_link(LinkId::new(3));
//!
//! let mut rng = SimRng::from_seed(1);
//! assert!(faults.is_dead(LinkId::new(3)));
//! assert!(!faults.is_dead(LinkId::new(4)));
//! let _hit = faults.corrupts_flit(&mut rng);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod churn;

pub use churn::{region_links, ChurnEntry, ChurnEvent, ChurnParseError, ChurnSchedule};

use cr_sim::{Cycle, LinkId, NodeId, SimRng};
use cr_topology::Topology;
use std::collections::BTreeSet;

/// Fault injection model: permanent dead links plus a transient
/// per-flit-hop corruption process.
///
/// The model is deliberately memoryless (each flit-hop is an independent
/// Bernoulli trial) — the same assumption the paper makes when sweeping
/// "a range of fault rates".
#[derive(Debug, Clone, Default)]
pub struct FaultModel {
    transient_rate: f64,
    detection_miss_rate: f64,
    // BTreeSet so `dead_links()` iterates in a defined order — the
    // experiment harness may fold this into reported output (cr-lint
    // `hash-collections`).
    dead_links: BTreeSet<LinkId>,
    // Online fault timeline: entries fire at cycle boundaries, in
    // order, advancing `churn_cursor`. Empty for static fault plans.
    churn: ChurnSchedule,
    churn_cursor: usize,
}

/// The observable effect of one fired [`ChurnEntry`]: which channels
/// actually changed state, in ascending link-id order.
///
/// No-op transitions (killing a dead link, reviving a live one) are
/// filtered out, so consumers can treat `killed`/`revived` as real
/// edges of the fault state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnFiring {
    /// Index of the entry within the schedule (stable event identity
    /// for reports).
    pub index: usize,
    /// Cycle at which the entry was scheduled (== the cycle it fired;
    /// the stepper never skips a due entry).
    pub at: Cycle,
    /// The scheduled event.
    pub event: ChurnEvent,
    /// Channels that transitioned alive → dead.
    pub killed: Vec<LinkId>,
    /// Channels that transitioned dead → alive.
    pub revived: Vec<LinkId>,
}

impl FaultModel {
    /// Creates a fault-free model (no dead links, zero transient rate).
    pub fn new() -> Self {
        FaultModel::default()
    }

    /// Sets the probability that any given flit is corrupted while
    /// traversing any given (healthy) link.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0.0, 1.0]`.
    pub fn set_transient_rate(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        self.transient_rate = rate;
        self
    }

    /// Returns the transient corruption rate.
    pub fn transient_rate(&self) -> f64 {
        self.transient_rate
    }

    /// Sets the probability that a corrupted flit escapes detection at
    /// the next router.
    ///
    /// The default of `0.0` models a perfect error-detecting code;
    /// raising it deliberately breaks FCR's integrity guarantee, which
    /// the test-suite uses as a negative control.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0.0, 1.0]`.
    pub fn set_detection_miss_rate(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        self.detection_miss_rate = rate;
        self
    }

    /// Returns the detection miss rate.
    pub fn detection_miss_rate(&self) -> f64 {
        self.detection_miss_rate
    }

    /// Marks a link permanently dead. Flits routed onto a dead link are
    /// lost; the upstream worm stalls and recovery is up to the routing
    /// protocol.
    pub fn kill_link(&mut self, link: LinkId) -> &mut Self {
        self.dead_links.insert(link);
        self
    }

    /// Heals a dead link. Returns `true` if the link was dead (i.e.
    /// this call changed the fault state).
    pub fn revive_link(&mut self, link: LinkId) -> bool {
        self.dead_links.remove(&link)
    }

    /// Marks every channel touching `node` dead, simulating a failed
    /// router, and returns the links this call actually killed (those
    /// that were alive), in ascending id order — the rollback handle a
    /// caller needs to undo exactly this kill and nothing else.
    ///
    /// No connectivity check is performed: killing a node always
    /// disconnects it from the fabric. Use
    /// [`FaultModel::kill_node_connected`] when the *surviving* nodes
    /// must remain strongly connected.
    pub fn kill_node(&mut self, topology: &dyn Topology, node: NodeId) -> Vec<LinkId> {
        let mut killed = Vec::new();
        for l in topology.links() {
            if (l.src == node || l.dst == node) && self.dead_links.insert(l.id) {
                killed.push(l.id);
            }
        }
        killed.sort();
        killed
    }

    /// Like [`FaultModel::kill_node`], but rejects (and rolls back)
    /// the kill if the surviving nodes would no longer be strongly
    /// connected among themselves — so a churn plan cannot silently
    /// partition the live part of the network.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::WouldPartition`] if removing `node`'s
    /// channels (on top of the already-dead set) disconnects the
    /// remaining nodes; the dead-link set is left exactly as it was.
    pub fn kill_node_connected(
        &mut self,
        topology: &dyn Topology,
        node: NodeId,
    ) -> Result<Vec<LinkId>, FaultPlanError> {
        let killed = self.kill_node(topology, node);
        if strongly_connected_excluding(topology, &self.dead_links, &[node]) {
            Ok(killed)
        } else {
            for l in &killed {
                self.dead_links.remove(l);
            }
            Err(FaultPlanError::WouldPartition { node })
        }
    }

    /// Heals every channel touching `node` — a full router
    /// replacement. Returns the links this call actually revived
    /// (those that were dead), in ascending id order. Channels killed
    /// independently of the node are healed too.
    pub fn revive_node(&mut self, topology: &dyn Topology, node: NodeId) -> Vec<LinkId> {
        let mut revived = Vec::new();
        for l in topology.links() {
            if (l.src == node || l.dst == node) && self.dead_links.remove(&l.id) {
                revived.push(l.id);
            }
        }
        revived.sort();
        revived
    }

    /// Returns `true` if `link` is permanently dead.
    pub fn is_dead(&self, link: LinkId) -> bool {
        self.dead_links.contains(&link)
    }

    /// Number of permanently dead links.
    pub fn num_dead_links(&self) -> usize {
        self.dead_links.len()
    }

    /// Iterates over the dead links.
    pub fn dead_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.dead_links.iter().copied()
    }

    /// Returns `true` if there are no permanent faults and the
    /// transient rate is zero *right now*.
    ///
    /// Under a churn schedule this can flip from cycle to cycle, so it
    /// is only safe for per-cycle decisions (the sharded stepper's
    /// arrivals-phase gate re-reads it every cycle). Whole-run fast
    /// paths — anything decided once and never revisited, like
    /// skipping fault RNG for an entire run — must use
    /// [`FaultModel::will_stay_fault_free`] instead.
    pub fn is_fault_free_now(&self) -> bool {
        self.dead_links.is_empty() && self.transient_rate == 0.0
    }

    /// Returns `true` if the model is fault-free now **and** no
    /// scheduled churn event remains that could change that — the only
    /// predicate strong enough to justify whole-run shortcuts.
    pub fn will_stay_fault_free(&self) -> bool {
        self.is_fault_free_now() && self.churn_cursor >= self.churn.len()
    }

    /// Installs an online fault timeline. The schedule is applied by
    /// the network at cycle boundaries via
    /// [`FaultModel::apply_churn_due`]; generator events should be
    /// expanded first ([`FaultModel::expand_churn`]).
    pub fn set_churn(&mut self, schedule: ChurnSchedule) -> &mut Self {
        self.churn = schedule;
        self.churn_cursor = 0;
        self
    }

    /// The installed churn timeline (empty by default).
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Replaces generator events (regional outages) in the installed
    /// schedule with the primitive kill/revive entries they stand for,
    /// now that a topology is known. Resets the cursor; call before
    /// the run starts (the network does this at assembly).
    pub fn expand_churn(&mut self, topology: &dyn Topology) {
        self.churn = self.churn.expanded(topology);
        self.churn_cursor = 0;
    }

    /// The cycle of the next unfired churn entry, if any — the wake
    /// source that keeps fast-forward from sleeping past a mid-idle
    /// kill.
    pub fn next_churn_at(&self) -> Option<Cycle> {
        self.churn.entries().get(self.churn_cursor).map(|e| e.at)
    }

    /// Fires every churn entry due at or before `now`, mutating the
    /// dead-link set and appending one [`ChurnFiring`] per entry
    /// (including no-op firings, whose `killed`/`revived` are empty).
    ///
    /// Generator events that survived un-expanded apply their kill
    /// wave immediately and log it in `killed`; the revive wave is
    /// lost, which is why the network expands schedules up front.
    pub fn apply_churn_due(
        &mut self,
        topology: &dyn Topology,
        now: Cycle,
        out: &mut Vec<ChurnFiring>,
    ) {
        while let Some(entry) = self.churn.entries().get(self.churn_cursor) {
            if entry.at > now {
                break;
            }
            let entry = *entry;
            let index = self.churn_cursor;
            self.churn_cursor += 1;
            let mut firing = ChurnFiring {
                index,
                at: entry.at,
                event: entry.event,
                killed: Vec::new(),
                revived: Vec::new(),
            };
            match entry.event {
                ChurnEvent::KillLink { link } => {
                    if self.dead_links.insert(link) {
                        firing.killed.push(link);
                    }
                }
                ChurnEvent::ReviveLink { link } => {
                    if self.dead_links.remove(&link) {
                        firing.revived.push(link);
                    }
                }
                ChurnEvent::KillNode { node } => {
                    firing.killed = self.kill_node(topology, node);
                }
                ChurnEvent::ReviveNode { node } => {
                    firing.revived = self.revive_node(topology, node);
                }
                ChurnEvent::RegionalOutage { center, radius, .. } => {
                    debug_assert!(false, "regional outage not expanded before the run");
                    for link in region_links(topology, center, radius) {
                        if self.dead_links.insert(link) {
                            firing.killed.push(link);
                        }
                    }
                }
            }
            out.push(firing);
        }
    }

    /// Samples whether a flit traversing a healthy link is corrupted.
    pub fn corrupts_flit(&self, rng: &mut SimRng) -> bool {
        self.transient_rate > 0.0 && rng.chance(self.transient_rate)
    }

    /// Samples whether a router *detects* a corrupted flit.
    pub fn detects_corruption(&self, rng: &mut SimRng) -> bool {
        self.detection_miss_rate == 0.0 || !rng.chance(self.detection_miss_rate)
    }

    /// Kills `count` random links while keeping the network strongly
    /// connected (so every message still has some path).
    ///
    /// Candidate links are drawn uniformly; a candidate whose removal
    /// would disconnect the network is rejected and redrawn. Only
    /// those *connectivity* rejections count against the attempt
    /// budget — redrawing a link that is already dead is free (on a
    /// mostly-dead topology almost every draw lands on a dead link,
    /// and charging for them used to abort plans that were easily
    /// satisfiable).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::TooManyFaults`] if fewer than `count`
    /// live links exist, if `100 * count` candidates were rejected for
    /// disconnecting the network, or if the (much larger) total-redraw
    /// bound is hit before the plan completes.
    pub fn kill_random_links_connected(
        &mut self,
        topology: &dyn Topology,
        count: usize,
        rng: &mut SimRng,
    ) -> Result<Vec<LinkId>, FaultPlanError> {
        let all = topology.links();
        let alive = all
            .iter()
            .filter(|l| !self.dead_links.contains(&l.id))
            .count();
        if count > alive {
            return Err(FaultPlanError::TooManyFaults { requested: count });
        }
        let mut killed = Vec::with_capacity(count);
        let mut rejections = 0usize;
        let max_rejections = 100 * count.max(1);
        // Backstop on total draws so a pathological pool (nearly all
        // dead, survivors uncuttable) still terminates. Generous
        // enough that it never fires on satisfiable plans.
        let mut draws = 0usize;
        let max_draws = max_rejections + 1_000 * all.len().max(1);
        while killed.len() < count {
            draws += 1;
            if draws > max_draws {
                for l in &killed {
                    self.dead_links.remove(l);
                }
                return Err(FaultPlanError::TooManyFaults { requested: count });
            }
            // `pick_index` is `None` only on an empty link set, which
            // the caller can handle like any other unsatisfiable plan.
            let Some(pick) = rng.pick_index(all.len()) else {
                return Err(FaultPlanError::EmptyNetwork);
            };
            let candidate = all[pick].id;
            if self.dead_links.contains(&candidate) {
                continue;
            }
            self.dead_links.insert(candidate);
            if strongly_connected(topology, &self.dead_links) {
                killed.push(candidate);
            } else {
                self.dead_links.remove(&candidate);
                rejections += 1;
                if rejections > max_rejections {
                    // Roll back everything we added in this call.
                    for l in &killed {
                        self.dead_links.remove(l);
                    }
                    return Err(FaultPlanError::TooManyFaults { requested: count });
                }
            }
        }
        Ok(killed)
    }
}

/// Error building a fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The requested number of dead links could not be placed without
    /// disconnecting the network.
    TooManyFaults {
        /// How many dead links were requested.
        requested: usize,
    },
    /// The topology has no links at all to draw candidates from.
    EmptyNetwork,
    /// Killing this node would disconnect the surviving nodes from
    /// each other (see [`FaultModel::kill_node_connected`]).
    WouldPartition {
        /// The node whose kill was rejected.
        node: NodeId,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::TooManyFaults { requested } => write!(
                f,
                "could not place {requested} dead links without disconnecting the network"
            ),
            FaultPlanError::EmptyNetwork => {
                write!(f, "the topology has no links to kill")
            }
            FaultPlanError::WouldPartition { node } => write!(
                f,
                "killing node {node} would disconnect the surviving nodes"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Returns `true` if the network remains strongly connected when the
/// links in `dead` are removed.
pub fn strongly_connected(topology: &dyn Topology, dead: &BTreeSet<LinkId>) -> bool {
    strongly_connected_excluding(topology, dead, &[])
}

/// Returns `true` if the nodes *not* listed in `excluded` remain
/// strongly connected among themselves when the links in `dead` are
/// removed.
///
/// This is the right connectivity question for node kills: the killed
/// node is disconnected by definition, so plain
/// [`strongly_connected`] always answers `false`; what matters is
/// whether the survivors can still reach each other.
pub fn strongly_connected_excluding(
    topology: &dyn Topology,
    dead: &BTreeSet<LinkId>,
    excluded: &[NodeId],
) -> bool {
    let n = topology.num_nodes();
    let mut alive = vec![true; n];
    for x in excluded {
        if x.index() < n {
            alive[x.index()] = false;
        }
    }
    let live_count = alive.iter().filter(|a| **a).count();
    if live_count <= 1 {
        return true;
    }
    // Build the surviving adjacency once, skipping excluded endpoints.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for l in topology.links() {
        if !dead.contains(&l.id) && alive[l.src.index()] && alive[l.dst.index()] {
            adj[l.src.index()].push(l.dst.index());
            radj[l.dst.index()].push(l.src.index());
        }
    }
    // The lowest live node must reach every live node in both the
    // graph and its reverse.
    let Some(root) = alive.iter().position(|a| *a) else {
        return true;
    };
    let full_bfs = |g: &Vec<Vec<usize>>| {
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &g[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == live_count
    };
    full_bfs(&adj) && full_bfs(&radj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn default_is_fault_free() {
        let f = FaultModel::new();
        assert!(f.is_fault_free_now());
        assert!(f.will_stay_fault_free());
        assert_eq!(f.num_dead_links(), 0);
        let mut rng = SimRng::from_seed(0);
        assert!(!f.corrupts_flit(&mut rng));
        assert!(f.detects_corruption(&mut rng));
    }

    #[test]
    fn dead_links_tracked() {
        let mut f = FaultModel::new();
        f.kill_link(LinkId::new(5)).kill_link(LinkId::new(9));
        assert!(f.is_dead(LinkId::new(5)));
        assert!(!f.is_dead(LinkId::new(6)));
        assert_eq!(f.num_dead_links(), 2);
        assert!(!f.is_fault_free_now());
        let mut dead: Vec<LinkId> = f.dead_links().collect();
        dead.sort();
        assert_eq!(dead, vec![LinkId::new(5), LinkId::new(9)]);
        assert!(f.revive_link(LinkId::new(5)));
        assert!(!f.revive_link(LinkId::new(5))); // already alive
        assert_eq!(f.num_dead_links(), 1);
    }

    #[test]
    fn kill_node_severs_all_its_channels_and_returns_them() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let killed = f.kill_node(&t, NodeId::new(0));
        // A torus node has 4 outgoing and 4 incoming channels.
        assert_eq!(killed.len(), 8);
        assert_eq!(f.num_dead_links(), 8);
        // Network without node 0's channels is still connected among
        // the others... but strongly_connected checks node 0 too, so it
        // reports false; the excluding variant asks the right question.
        assert!(!strongly_connected(&t, &f.dead_links.clone()));
        assert!(strongly_connected_excluding(
            &t,
            &f.dead_links.clone(),
            &[NodeId::new(0)]
        ));
        // The returned handle rolls back exactly this kill.
        for l in &killed {
            f.revive_link(*l);
        }
        assert_eq!(f.num_dead_links(), 0);
    }

    #[test]
    fn kill_node_returns_only_newly_killed_links() {
        // A pre-dead link touching the node is not double-reported, so
        // rolling back the node kill cannot resurrect it.
        let t = KAryNCube::torus(4, 2);
        let pre = t.links()[0];
        assert_eq!(pre.src, NodeId::new(0));
        let mut f = FaultModel::new();
        f.kill_link(pre.id);
        let killed = f.kill_node(&t, NodeId::new(0));
        assert_eq!(killed.len(), 7);
        assert!(!killed.contains(&pre.id));
        for l in &killed {
            f.revive_link(*l);
        }
        assert_eq!(f.num_dead_links(), 1);
        assert!(f.is_dead(pre.id));
    }

    #[test]
    fn kill_node_connected_accepts_and_rejects() {
        // On a 4x4 torus the survivors stay connected after one node
        // kill, so the checked variant accepts it.
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let killed = f.kill_node_connected(&t, NodeId::new(5)).unwrap();
        assert_eq!(killed.len(), 8);
        // On a 3-node path, the middle node is a cut vertex: killing
        // it strands nodes 0 and 2 from each other.
        use cr_topology::GraphTopology;
        let path =
            GraphTopology::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let mut g = FaultModel::new();
        let err = g.kill_node_connected(&path, NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::WouldPartition {
                node: NodeId::new(1)
            }
        );
        // Rejection rolled back cleanly.
        assert_eq!(g.num_dead_links(), 0);
        // Killing a leaf is fine: the survivors {1, 2} stay connected.
        let killed = g.kill_node_connected(&path, NodeId::new(0)).unwrap();
        assert_eq!(killed.len(), 2);
    }

    #[test]
    fn revive_node_heals_independent_kills_too() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let pre = t.links()[0];
        f.kill_link(pre.id); // independent kill touching node 0
        f.kill_node(&t, NodeId::new(0));
        let revived = f.revive_node(&t, NodeId::new(0));
        assert_eq!(revived.len(), 8); // includes the independent kill
        assert!(revived.contains(&pre.id));
        assert_eq!(f.num_dead_links(), 0);
    }

    #[test]
    fn will_stay_fault_free_sees_pending_churn() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let mut plan = ChurnSchedule::new();
        let victim = t.links()[3].id;
        plan.kill_link(Cycle::new(10), victim)
            .revive_link(Cycle::new(20), victim);
        f.set_churn(plan);
        // Fault-free now, but a kill is scheduled.
        assert!(f.is_fault_free_now());
        assert!(!f.will_stay_fault_free());

        let mut firings = Vec::new();
        f.apply_churn_due(&t, Cycle::new(9), &mut firings);
        assert!(firings.is_empty());
        f.apply_churn_due(&t, Cycle::new(10), &mut firings);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].killed, vec![victim]);
        assert!(f.is_dead(victim));
        assert!(!f.is_fault_free_now());
        assert_eq!(f.next_churn_at(), Some(Cycle::new(20)));

        // Jumping past the revive still fires it (exactly once).
        firings.clear();
        f.apply_churn_due(&t, Cycle::new(500), &mut firings);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].revived, vec![victim]);
        assert!(f.is_fault_free_now());
        assert!(f.will_stay_fault_free());
        assert_eq!(f.next_churn_at(), None);
    }

    #[test]
    fn churn_noop_transitions_are_filtered() {
        let t = KAryNCube::torus(4, 2);
        let victim = t.links()[0].id;
        let mut f = FaultModel::new();
        f.kill_link(victim); // dead before the schedule starts
        let mut plan = ChurnSchedule::new();
        plan.kill_link(Cycle::new(5), victim) // no-op: already dead
            .revive_link(Cycle::new(6), victim)
            .revive_link(Cycle::new(7), victim); // no-op: already alive
        f.set_churn(plan);
        let mut firings = Vec::new();
        f.apply_churn_due(&t, Cycle::new(100), &mut firings);
        assert_eq!(firings.len(), 3);
        assert!(firings[0].killed.is_empty() && firings[0].revived.is_empty());
        assert_eq!(firings[1].revived, vec![victim]);
        assert!(firings[2].killed.is_empty() && firings[2].revived.is_empty());
    }

    #[test]
    fn transient_rate_calibration() {
        let mut f = FaultModel::new();
        f.set_transient_rate(0.1);
        let mut rng = SimRng::from_seed(42);
        let n = 50_000;
        let hits = (0..n).filter(|_| f.corrupts_flit(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn detection_miss_rate_calibration() {
        let mut f = FaultModel::new();
        f.set_detection_miss_rate(0.5);
        let mut rng = SimRng::from_seed(43);
        let n = 20_000;
        let detected = (0..n).filter(|_| f.detects_corruption(&mut rng)).count();
        let frac = detected as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn bad_rate_rejected() {
        FaultModel::new().set_transient_rate(1.5);
    }

    #[test]
    fn connectivity_detects_cuts() {
        // A 2-node ring: killing one direction breaks strong
        // connectivity.
        let t = KAryNCube::torus(2, 1);
        assert!(strongly_connected(&t, &BTreeSet::new()));
        let l = t.links()[0].id;
        let dead: BTreeSet<LinkId> = [l].into_iter().collect();
        // radix-2 torus has parallel wrap channels, so one cut may not
        // disconnect; kill all channels leaving node 0 instead.
        let mut all_out: BTreeSet<LinkId> = BTreeSet::new();
        for link in t.links() {
            if link.src == NodeId::new(0) {
                all_out.insert(link.id);
            }
        }
        assert!(!strongly_connected(&t, &all_out));
        let _ = dead;
    }

    #[test]
    fn random_kill_preserves_connectivity() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(7);
        let killed = f.kill_random_links_connected(&t, 10, &mut rng).unwrap();
        assert_eq!(killed.len(), 10);
        assert_eq!(f.num_dead_links(), 10);
        assert!(strongly_connected(&t, &f.dead_links.clone()));
    }

    #[test]
    fn random_kill_rejects_impossible_requests() {
        // A 3-node unidirectional-ring-like graph cannot lose any link.
        use cr_topology::GraphTopology;
        let g = GraphTopology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(1);
        let err = f.kill_random_links_connected(&g, 1, &mut rng).unwrap_err();
        assert_eq!(err, FaultPlanError::TooManyFaults { requested: 1 });
        // Roll-back happened.
        assert_eq!(f.num_dead_links(), 0);
    }

    #[test]
    fn random_kill_succeeds_on_mostly_dead_topology() {
        // Regression: redraws of already-dead links used to count
        // against the 100-per-kill attempt budget, so a pool that is
        // ~98% dead exhausted it before ever sampling a live link.
        //
        // 100-node complete digraph (9900 links); everything except
        // the bidirectional ring is pre-killed, so 200 links (2%) are
        // alive and any single one of them is safe to kill (the
        // opposite direction keeps the ring strongly connected). With
        // seed 4 the first live-link draw is draw #114 — past the old
        // budget of 100 for a one-kill plan, comfortably inside the
        // new (rejection-only) accounting.
        use cr_topology::GraphTopology;
        let n = 100usize;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = GraphTopology::from_edges(n, &edges).unwrap();
        let ring: BTreeSet<(usize, usize)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        let mut f = FaultModel::new();
        for l in g.links() {
            if !ring.contains(&(l.src.index(), l.dst.index())) {
                f.kill_link(l.id);
            }
        }
        let pre_dead = f.num_dead_links();
        assert_eq!(pre_dead, 9900 - 200);

        let mut rng = SimRng::from_seed(4);
        let killed = f.kill_random_links_connected(&g, 1, &mut rng).unwrap();
        assert_eq!(killed.len(), 1);
        assert_eq!(f.num_dead_links(), pre_dead + 1);
        assert!(strongly_connected(&g, &f.dead_links.clone()));
    }

    #[test]
    fn random_kill_errors_fast_when_too_few_links_survive() {
        // Requesting more kills than there are live links fails
        // immediately instead of spinning through redraws.
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        for l in t.links() {
            f.kill_link(l.id);
        }
        let mut rng = SimRng::from_seed(2);
        let err = f.kill_random_links_connected(&t, 1, &mut rng).unwrap_err();
        assert_eq!(err, FaultPlanError::TooManyFaults { requested: 1 });
    }

    #[test]
    fn random_kill_is_deterministic_per_seed() {
        let t = KAryNCube::torus(4, 2);
        let mut f1 = FaultModel::new();
        let mut f2 = FaultModel::new();
        let k1 = f1
            .kill_random_links_connected(&t, 5, &mut SimRng::from_seed(99))
            .unwrap();
        let k2 = f2
            .kill_random_links_connected(&t, 5, &mut SimRng::from_seed(99))
            .unwrap();
        assert_eq!(k1, k2);
    }
}
