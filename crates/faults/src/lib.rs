//! Fault models for the Compressionless Routing reproduction.
//!
//! The paper's fault-tolerance evaluation (Section 6.2) injects
//! **transient faults** — individual flits corrupted in flight, at a
//! configurable rate per flit-hop — and **permanent faults** — channels
//! that stop working altogether. This crate provides both behind a
//! single [`FaultModel`] queried by the router on every flit-hop.
//!
//! The substitution for real hardware checksums (documented in
//! DESIGN.md): corruption is a boolean flag on the flit, and detection
//! happens at the next router with a configurable *miss rate*
//! (default 0, i.e. a perfect error-detecting code). FCR's nonstop
//! fault-tolerance guarantee holds exactly when the miss rate is zero,
//! and the test-suite asserts precisely that.
//!
//! # Examples
//!
//! ```
//! use cr_faults::FaultModel;
//! use cr_sim::{LinkId, SimRng};
//!
//! let mut faults = FaultModel::new();
//! faults.set_transient_rate(1e-3);
//! faults.kill_link(LinkId::new(3));
//!
//! let mut rng = SimRng::from_seed(1);
//! assert!(faults.is_dead(LinkId::new(3)));
//! assert!(!faults.is_dead(LinkId::new(4)));
//! let _hit = faults.corrupts_flit(&mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cr_sim::{LinkId, NodeId, SimRng};
use cr_topology::Topology;
use std::collections::BTreeSet;

/// Fault injection model: permanent dead links plus a transient
/// per-flit-hop corruption process.
///
/// The model is deliberately memoryless (each flit-hop is an independent
/// Bernoulli trial) — the same assumption the paper makes when sweeping
/// "a range of fault rates".
#[derive(Debug, Clone, Default)]
pub struct FaultModel {
    transient_rate: f64,
    detection_miss_rate: f64,
    // BTreeSet so `dead_links()` iterates in a defined order — the
    // experiment harness may fold this into reported output (cr-lint
    // `hash-collections`).
    dead_links: BTreeSet<LinkId>,
}

impl FaultModel {
    /// Creates a fault-free model (no dead links, zero transient rate).
    pub fn new() -> Self {
        FaultModel::default()
    }

    /// Sets the probability that any given flit is corrupted while
    /// traversing any given (healthy) link.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0.0, 1.0]`.
    pub fn set_transient_rate(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        self.transient_rate = rate;
        self
    }

    /// Returns the transient corruption rate.
    pub fn transient_rate(&self) -> f64 {
        self.transient_rate
    }

    /// Sets the probability that a corrupted flit escapes detection at
    /// the next router.
    ///
    /// The default of `0.0` models a perfect error-detecting code;
    /// raising it deliberately breaks FCR's integrity guarantee, which
    /// the test-suite uses as a negative control.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0.0, 1.0]`.
    pub fn set_detection_miss_rate(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        self.detection_miss_rate = rate;
        self
    }

    /// Returns the detection miss rate.
    pub fn detection_miss_rate(&self) -> f64 {
        self.detection_miss_rate
    }

    /// Marks a link permanently dead. Flits routed onto a dead link are
    /// lost; the upstream worm stalls and recovery is up to the routing
    /// protocol.
    pub fn kill_link(&mut self, link: LinkId) -> &mut Self {
        self.dead_links.insert(link);
        self
    }

    /// Marks every channel touching `node` dead, simulating a failed
    /// router.
    pub fn kill_node(&mut self, topology: &dyn Topology, node: NodeId) -> &mut Self {
        for l in topology.links() {
            if l.src == node || l.dst == node {
                self.dead_links.insert(l.id);
            }
        }
        self
    }

    /// Returns `true` if `link` is permanently dead.
    pub fn is_dead(&self, link: LinkId) -> bool {
        self.dead_links.contains(&link)
    }

    /// Number of permanently dead links.
    pub fn num_dead_links(&self) -> usize {
        self.dead_links.len()
    }

    /// Iterates over the dead links.
    pub fn dead_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.dead_links.iter().copied()
    }

    /// Returns `true` if there are no permanent faults and the
    /// transient rate is zero.
    pub fn is_fault_free(&self) -> bool {
        self.dead_links.is_empty() && self.transient_rate == 0.0
    }

    /// Samples whether a flit traversing a healthy link is corrupted.
    pub fn corrupts_flit(&self, rng: &mut SimRng) -> bool {
        self.transient_rate > 0.0 && rng.chance(self.transient_rate)
    }

    /// Samples whether a router *detects* a corrupted flit.
    pub fn detects_corruption(&self, rng: &mut SimRng) -> bool {
        self.detection_miss_rate == 0.0 || !rng.chance(self.detection_miss_rate)
    }

    /// Kills `count` random links while keeping the network strongly
    /// connected (so every message still has some path).
    ///
    /// Candidate links are drawn uniformly; a candidate whose removal
    /// would disconnect the network is rejected and redrawn. Only
    /// those *connectivity* rejections count against the attempt
    /// budget — redrawing a link that is already dead is free (on a
    /// mostly-dead topology almost every draw lands on a dead link,
    /// and charging for them used to abort plans that were easily
    /// satisfiable).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::TooManyFaults`] if fewer than `count`
    /// live links exist, if `100 * count` candidates were rejected for
    /// disconnecting the network, or if the (much larger) total-redraw
    /// bound is hit before the plan completes.
    pub fn kill_random_links_connected(
        &mut self,
        topology: &dyn Topology,
        count: usize,
        rng: &mut SimRng,
    ) -> Result<Vec<LinkId>, FaultPlanError> {
        let all = topology.links();
        let alive = all
            .iter()
            .filter(|l| !self.dead_links.contains(&l.id))
            .count();
        if count > alive {
            return Err(FaultPlanError::TooManyFaults { requested: count });
        }
        let mut killed = Vec::with_capacity(count);
        let mut rejections = 0usize;
        let max_rejections = 100 * count.max(1);
        // Backstop on total draws so a pathological pool (nearly all
        // dead, survivors uncuttable) still terminates. Generous
        // enough that it never fires on satisfiable plans.
        let mut draws = 0usize;
        let max_draws = max_rejections + 1_000 * all.len().max(1);
        while killed.len() < count {
            draws += 1;
            if draws > max_draws {
                for l in &killed {
                    self.dead_links.remove(l);
                }
                return Err(FaultPlanError::TooManyFaults { requested: count });
            }
            // `pick_index` is `None` only on an empty link set, which
            // the caller can handle like any other unsatisfiable plan.
            let Some(pick) = rng.pick_index(all.len()) else {
                return Err(FaultPlanError::EmptyNetwork);
            };
            let candidate = all[pick].id;
            if self.dead_links.contains(&candidate) {
                continue;
            }
            self.dead_links.insert(candidate);
            if strongly_connected(topology, &self.dead_links) {
                killed.push(candidate);
            } else {
                self.dead_links.remove(&candidate);
                rejections += 1;
                if rejections > max_rejections {
                    // Roll back everything we added in this call.
                    for l in &killed {
                        self.dead_links.remove(l);
                    }
                    return Err(FaultPlanError::TooManyFaults { requested: count });
                }
            }
        }
        Ok(killed)
    }
}

/// Error building a fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The requested number of dead links could not be placed without
    /// disconnecting the network.
    TooManyFaults {
        /// How many dead links were requested.
        requested: usize,
    },
    /// The topology has no links at all to draw candidates from.
    EmptyNetwork,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::TooManyFaults { requested } => write!(
                f,
                "could not place {requested} dead links without disconnecting the network"
            ),
            FaultPlanError::EmptyNetwork => {
                write!(f, "the topology has no links to kill")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Returns `true` if the network remains strongly connected when the
/// links in `dead` are removed.
pub fn strongly_connected(topology: &dyn Topology, dead: &BTreeSet<LinkId>) -> bool {
    let n = topology.num_nodes();
    if n == 0 {
        return true;
    }
    // Build the surviving adjacency once.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for l in topology.links() {
        if !dead.contains(&l.id) {
            adj[l.src.index()].push(l.dst.index());
            radj[l.dst.index()].push(l.src.index());
        }
    }
    // Strong connectivity <=> node 0 reaches everyone in both the graph
    // and its reverse.
    let full_bfs = |g: &Vec<Vec<usize>>| {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &g[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    };
    full_bfs(&adj) && full_bfs(&radj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn default_is_fault_free() {
        let f = FaultModel::new();
        assert!(f.is_fault_free());
        assert_eq!(f.num_dead_links(), 0);
        let mut rng = SimRng::from_seed(0);
        assert!(!f.corrupts_flit(&mut rng));
        assert!(f.detects_corruption(&mut rng));
    }

    #[test]
    fn dead_links_tracked() {
        let mut f = FaultModel::new();
        f.kill_link(LinkId::new(5)).kill_link(LinkId::new(9));
        assert!(f.is_dead(LinkId::new(5)));
        assert!(!f.is_dead(LinkId::new(6)));
        assert_eq!(f.num_dead_links(), 2);
        assert!(!f.is_fault_free());
        let mut dead: Vec<LinkId> = f.dead_links().collect();
        dead.sort();
        assert_eq!(dead, vec![LinkId::new(5), LinkId::new(9)]);
    }

    #[test]
    fn kill_node_severs_all_its_channels() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        f.kill_node(&t, NodeId::new(0));
        // A torus node has 4 outgoing and 4 incoming channels.
        assert_eq!(f.num_dead_links(), 8);
        // Network without node 0's channels is still connected among
        // the others... but strongly_connected checks node 0 too, so it
        // reports false.
        assert!(!strongly_connected(&t, &f.dead_links.clone()));
    }

    #[test]
    fn transient_rate_calibration() {
        let mut f = FaultModel::new();
        f.set_transient_rate(0.1);
        let mut rng = SimRng::from_seed(42);
        let n = 50_000;
        let hits = (0..n).filter(|_| f.corrupts_flit(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn detection_miss_rate_calibration() {
        let mut f = FaultModel::new();
        f.set_detection_miss_rate(0.5);
        let mut rng = SimRng::from_seed(43);
        let n = 20_000;
        let detected = (0..n).filter(|_| f.detects_corruption(&mut rng)).count();
        let frac = detected as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn bad_rate_rejected() {
        FaultModel::new().set_transient_rate(1.5);
    }

    #[test]
    fn connectivity_detects_cuts() {
        // A 2-node ring: killing one direction breaks strong
        // connectivity.
        let t = KAryNCube::torus(2, 1);
        assert!(strongly_connected(&t, &BTreeSet::new()));
        let l = t.links()[0].id;
        let dead: BTreeSet<LinkId> = [l].into_iter().collect();
        // radix-2 torus has parallel wrap channels, so one cut may not
        // disconnect; kill all channels leaving node 0 instead.
        let mut all_out: BTreeSet<LinkId> = BTreeSet::new();
        for link in t.links() {
            if link.src == NodeId::new(0) {
                all_out.insert(link.id);
            }
        }
        assert!(!strongly_connected(&t, &all_out));
        let _ = dead;
    }

    #[test]
    fn random_kill_preserves_connectivity() {
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(7);
        let killed = f.kill_random_links_connected(&t, 10, &mut rng).unwrap();
        assert_eq!(killed.len(), 10);
        assert_eq!(f.num_dead_links(), 10);
        assert!(strongly_connected(&t, &f.dead_links.clone()));
    }

    #[test]
    fn random_kill_rejects_impossible_requests() {
        // A 3-node unidirectional-ring-like graph cannot lose any link.
        use cr_topology::GraphTopology;
        let g = GraphTopology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(1);
        let err = f.kill_random_links_connected(&g, 1, &mut rng).unwrap_err();
        assert_eq!(err, FaultPlanError::TooManyFaults { requested: 1 });
        // Roll-back happened.
        assert_eq!(f.num_dead_links(), 0);
    }

    #[test]
    fn random_kill_succeeds_on_mostly_dead_topology() {
        // Regression: redraws of already-dead links used to count
        // against the 100-per-kill attempt budget, so a pool that is
        // ~98% dead exhausted it before ever sampling a live link.
        //
        // 100-node complete digraph (9900 links); everything except
        // the bidirectional ring is pre-killed, so 200 links (2%) are
        // alive and any single one of them is safe to kill (the
        // opposite direction keeps the ring strongly connected). With
        // seed 4 the first live-link draw is draw #114 — past the old
        // budget of 100 for a one-kill plan, comfortably inside the
        // new (rejection-only) accounting.
        use cr_topology::GraphTopology;
        let n = 100usize;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = GraphTopology::from_edges(n, &edges).unwrap();
        let ring: BTreeSet<(usize, usize)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        let mut f = FaultModel::new();
        for l in g.links() {
            if !ring.contains(&(l.src.index(), l.dst.index())) {
                f.kill_link(l.id);
            }
        }
        let pre_dead = f.num_dead_links();
        assert_eq!(pre_dead, 9900 - 200);

        let mut rng = SimRng::from_seed(4);
        let killed = f.kill_random_links_connected(&g, 1, &mut rng).unwrap();
        assert_eq!(killed.len(), 1);
        assert_eq!(f.num_dead_links(), pre_dead + 1);
        assert!(strongly_connected(&g, &f.dead_links.clone()));
    }

    #[test]
    fn random_kill_errors_fast_when_too_few_links_survive() {
        // Requesting more kills than there are live links fails
        // immediately instead of spinning through redraws.
        let t = KAryNCube::torus(4, 2);
        let mut f = FaultModel::new();
        for l in t.links() {
            f.kill_link(l.id);
        }
        let mut rng = SimRng::from_seed(2);
        let err = f.kill_random_links_connected(&t, 1, &mut rng).unwrap_err();
        assert_eq!(err, FaultPlanError::TooManyFaults { requested: 1 });
    }

    #[test]
    fn random_kill_is_deterministic_per_seed() {
        let t = KAryNCube::torus(4, 2);
        let mut f1 = FaultModel::new();
        let mut f2 = FaultModel::new();
        let k1 = f1
            .kill_random_links_connected(&t, 5, &mut SimRng::from_seed(99))
            .unwrap();
        let k2 = f2
            .kill_random_links_connected(&t, 5, &mut SimRng::from_seed(99))
            .unwrap();
        assert_eq!(k1, k2);
    }
}
