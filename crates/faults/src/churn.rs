//! Online fault churn: a deterministic, serializable timeline of
//! kill/revive events applied at cycle boundaries while traffic is in
//! flight.
//!
//! The paper's "nonstop" claim (§6.2) is about networks that keep
//! delivering *while* the fabric changes. A [`ChurnSchedule`] is the
//! plan for such a run: an ordered list of [`ChurnEvent`]s, each
//! stamped with the cycle at which it fires. The network applies due
//! events at the top of every cycle — before arrivals — so all three
//! steppers (dense, active-set, sharded) observe the exact same fault
//! state for the whole cycle and stay byte-identical.
//!
//! Two event classes exist:
//!
//! * **Primitive** events (`KillLink`, `ReviveLink`, `KillNode`,
//!   `ReviveNode`) mutate the dead-link set directly when they fire.
//! * **Generator** events (`RegionalOutage`) stand for a *pair* of
//!   future changes (a kill wave now, a revive wave `down_for` cycles
//!   later). They are expanded into primitive entries by
//!   [`ChurnSchedule::expanded`] once the topology is known — the
//!   network does this at assembly, so plan files stay
//!   topology-independent.
//!
//! Schedules serialize to the JSON shape consumed by the `--churn
//! <plan.json>` runner flag (see EXPERIMENTS.md):
//!
//! ```json
//! {"events": [
//!   {"at": 100, "kind": "kill_link", "link": 5},
//!   {"at": 400, "kind": "revive_link", "link": 5},
//!   {"at": 600, "kind": "kill_node", "node": 7},
//!   {"at": 900, "kind": "revive_node", "node": 7},
//!   {"at": 1200, "kind": "regional_outage", "center": 12, "radius": 1, "down_for": 300}
//! ]}
//! ```

use cr_sim::{Cycle, Json, LinkId, NodeId, SimRng};
use cr_topology::Topology;

/// One fault-state change (or generator thereof) in a churn timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Marks one channel dead (no-op if it is already dead).
    KillLink {
        /// The channel to kill.
        link: LinkId,
    },
    /// Heals one channel (no-op if it is alive).
    ReviveLink {
        /// The channel to revive.
        link: LinkId,
    },
    /// Kills every channel touching `node`, simulating a failed
    /// router.
    KillNode {
        /// The router that fails.
        node: NodeId,
    },
    /// Heals every channel touching `node` — a full router
    /// replacement. Channels that were killed independently of the
    /// node are healed too; see DESIGN.md §13.
    ReviveNode {
        /// The router that comes back.
        node: NodeId,
    },
    /// A bursty regional outage: every channel touching a node within
    /// `radius` hops of `center` dies when the event fires and is
    /// revived `down_for` cycles later.
    ///
    /// This is a *generator*: [`ChurnSchedule::expanded`] rewrites it
    /// into primitive kill/revive entries once a topology is
    /// available.
    RegionalOutage {
        /// Epicenter of the outage.
        center: NodeId,
        /// Hop radius of the affected region (0 = just the center).
        radius: u32,
        /// Cycles until the region is revived.
        down_for: u64,
    },
}

impl ChurnEvent {
    /// Stable string tag used in JSON and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ChurnEvent::KillLink { .. } => "kill_link",
            ChurnEvent::ReviveLink { .. } => "revive_link",
            ChurnEvent::KillNode { .. } => "kill_node",
            ChurnEvent::ReviveNode { .. } => "revive_node",
            ChurnEvent::RegionalOutage { .. } => "regional_outage",
        }
    }

    /// The raw id of the event's subject (link, node, or outage
    /// center), for compact reporting.
    pub fn subject(&self) -> u64 {
        match self {
            ChurnEvent::KillLink { link } | ChurnEvent::ReviveLink { link } => {
                link.as_u32() as u64
            }
            ChurnEvent::KillNode { node }
            | ChurnEvent::ReviveNode { node }
            | ChurnEvent::RegionalOutage { center: node, .. } => node.as_u32() as u64,
        }
    }
}

/// A [`ChurnEvent`] stamped with the cycle at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEntry {
    /// Cycle boundary at which the event applies (the network sees the
    /// new fault state for the whole of cycle `at`).
    pub at: Cycle,
    /// The change itself.
    pub event: ChurnEvent,
}

/// Error parsing a churn plan from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnParseError(String);

impl std::fmt::Display for ChurnParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad churn plan: {}", self.0)
    }
}

impl std::error::Error for ChurnParseError {}

/// A deterministic timeline of fault events, kept sorted by cycle.
///
/// Entries with equal `at` fire in insertion order, so a plan is fully
/// determined by its construction sequence (and therefore by its JSON
/// serialization, which preserves that order).
///
/// # Examples
///
/// ```
/// use cr_faults::{ChurnEvent, ChurnSchedule};
/// use cr_sim::{Cycle, LinkId};
///
/// let mut plan = ChurnSchedule::new();
/// plan.kill_link(Cycle::new(100), LinkId::new(5))
///     .revive_link(Cycle::new(400), LinkId::new(5));
/// assert_eq!(plan.len(), 2);
/// let json = plan.to_json();
/// let back = ChurnSchedule::from_json(&json).unwrap();
/// assert_eq!(plan, back);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    entries: Vec<ChurnEntry>,
}

impl ChurnSchedule {
    /// Creates an empty schedule (no churn — static faults only).
    pub fn new() -> Self {
        ChurnSchedule::default()
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in firing order.
    pub fn entries(&self) -> &[ChurnEntry] {
        &self.entries
    }

    /// Schedules `event` at cycle `at`, keeping the timeline sorted.
    /// Among equal-`at` entries the earlier insertion fires first.
    pub fn push(&mut self, at: Cycle, event: ChurnEvent) -> &mut Self {
        let pos = self.entries.partition_point(|e| e.at <= at);
        self.entries.insert(pos, ChurnEntry { at, event });
        self
    }

    /// Convenience: schedules a [`ChurnEvent::KillLink`].
    pub fn kill_link(&mut self, at: Cycle, link: LinkId) -> &mut Self {
        self.push(at, ChurnEvent::KillLink { link })
    }

    /// Convenience: schedules a [`ChurnEvent::ReviveLink`].
    pub fn revive_link(&mut self, at: Cycle, link: LinkId) -> &mut Self {
        self.push(at, ChurnEvent::ReviveLink { link })
    }

    /// Convenience: schedules a [`ChurnEvent::KillNode`].
    pub fn kill_node(&mut self, at: Cycle, node: NodeId) -> &mut Self {
        self.push(at, ChurnEvent::KillNode { node })
    }

    /// Convenience: schedules a [`ChurnEvent::ReviveNode`].
    pub fn revive_node(&mut self, at: Cycle, node: NodeId) -> &mut Self {
        self.push(at, ChurnEvent::ReviveNode { node })
    }

    /// Convenience: schedules a [`ChurnEvent::RegionalOutage`].
    pub fn regional_outage(
        &mut self,
        at: Cycle,
        center: NodeId,
        radius: u32,
        down_for: u64,
    ) -> &mut Self {
        self.push(
            at,
            ChurnEvent::RegionalOutage {
                center,
                radius,
                down_for,
            },
        )
    }

    /// Seeded storm generator: schedules `outages` regional outages
    /// with uniformly drawn epicenters, radii in `0..=max_radius`,
    /// start cycles in `[window_start, window_end)` and down times in
    /// `[min_down, max_down]`. Deterministic per RNG state.
    pub fn random_regional_outages(
        &mut self,
        topology: &dyn Topology,
        outages: usize,
        window_start: Cycle,
        window_end: Cycle,
        max_radius: u32,
        min_down: u64,
        max_down: u64,
        rng: &mut SimRng,
    ) -> &mut Self {
        let nodes = topology.num_nodes();
        let span = window_end.saturating_since(window_start).max(1);
        let down_span = max_down.saturating_sub(min_down) + 1;
        for _ in 0..outages {
            let Some(center) = rng.pick_index(nodes) else {
                break; // empty topology: nothing to kill
            };
            // cr-lint: allow(integer-narrowing, reason = "pick_index result is at most max_radius, itself a u32")
            let radius = rng.pick_index(max_radius as usize + 1).unwrap_or(0) as u32;
            let at = window_start + rng.pick_index(span as usize).unwrap_or(0) as u64;
            let down_for = min_down + rng.pick_index(down_span as usize).unwrap_or(0) as u64;
            self.regional_outage(at, NodeId::from_index(center), radius, down_for);
        }
        self
    }

    /// Expands every generator event into primitive kill/revive
    /// entries using `topology`, returning a schedule containing only
    /// primitive events (still sorted; equal-cycle order preserved).
    ///
    /// A [`ChurnEvent::RegionalOutage`] becomes one `KillLink` per
    /// channel touching the region (any node within `radius` hops of
    /// the center) at its start cycle, and a matching `ReviveLink` at
    /// `at + down_for`.
    pub fn expanded(&self, topology: &dyn Topology) -> ChurnSchedule {
        let mut out = ChurnSchedule::new();
        for e in &self.entries {
            match e.event {
                ChurnEvent::RegionalOutage {
                    center,
                    radius,
                    down_for,
                } => {
                    for link in region_links(topology, center, radius) {
                        out.kill_link(e.at, link);
                        out.revive_link(e.at + down_for, link);
                    }
                }
                ev => {
                    out.push(e.at, ev);
                }
            }
        }
        out
    }

    /// Serializes the plan to the `--churn` JSON shape.
    pub fn to_json(&self) -> Json {
        let events = self.entries.iter().map(|e| {
            let mut fields: Vec<(&str, Json)> = vec![
                ("at", Json::from(e.at.as_u64())),
                ("kind", Json::from(e.event.kind())),
            ];
            match e.event {
                ChurnEvent::KillLink { link } | ChurnEvent::ReviveLink { link } => {
                    fields.push(("link", Json::from(link.as_u32())));
                }
                ChurnEvent::KillNode { node } | ChurnEvent::ReviveNode { node } => {
                    fields.push(("node", Json::from(node.as_u32())));
                }
                ChurnEvent::RegionalOutage {
                    center,
                    radius,
                    down_for,
                } => {
                    fields.push(("center", Json::from(center.as_u32())));
                    fields.push(("radius", Json::from(radius)));
                    fields.push(("down_for", Json::from(down_for)));
                }
            }
            Json::obj(fields)
        });
        Json::obj([("events", Json::arr(events))])
    }

    /// Parses a plan from the `--churn` JSON shape.
    ///
    /// # Errors
    ///
    /// Returns [`ChurnParseError`] on a missing/ill-typed field or an
    /// unknown `kind`.
    pub fn from_json(v: &Json) -> Result<ChurnSchedule, ChurnParseError> {
        let events = v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or_else(|| ChurnParseError("missing \"events\" array".into()))?;
        let mut plan = ChurnSchedule::new();
        for (i, ev) in events.iter().enumerate() {
            let field_u64 = |name: &str| {
                ev.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ChurnParseError(format!("event {i}: missing \"{name}\"")))
            };
            let at = Cycle::new(field_u64("at")?);
            let id_u32 = |name: &str| -> Result<u32, ChurnParseError> {
                let raw = field_u64(name)?;
                u32::try_from(raw)
                    .map_err(|_| ChurnParseError(format!("event {i}: \"{name}\" out of range")))
            };
            let kind = ev
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| ChurnParseError(format!("event {i}: missing \"kind\"")))?;
            let event = match kind {
                "kill_link" => ChurnEvent::KillLink {
                    link: LinkId::new(id_u32("link")?),
                },
                "revive_link" => ChurnEvent::ReviveLink {
                    link: LinkId::new(id_u32("link")?),
                },
                "kill_node" => ChurnEvent::KillNode {
                    node: NodeId::new(id_u32("node")?),
                },
                "revive_node" => ChurnEvent::ReviveNode {
                    node: NodeId::new(id_u32("node")?),
                },
                "regional_outage" => ChurnEvent::RegionalOutage {
                    center: NodeId::new(id_u32("center")?),
                    radius: id_u32("radius")?,
                    down_for: field_u64("down_for")?,
                },
                other => {
                    return Err(ChurnParseError(format!(
                        "event {i}: unknown kind {other:?}"
                    )))
                }
            };
            plan.push(at, event);
        }
        Ok(plan)
    }

    /// Parses a plan from JSON text (the contents of a `--churn` file).
    ///
    /// # Errors
    ///
    /// Returns [`ChurnParseError`] if the text is not valid JSON or
    /// does not match the plan schema.
    pub fn from_json_str(text: &str) -> Result<ChurnSchedule, ChurnParseError> {
        let v = Json::parse(text).map_err(|e| ChurnParseError(format!("invalid JSON: {e:?}")))?;
        ChurnSchedule::from_json(&v)
    }
}

/// Every channel touching a node within `radius` hops of `center`,
/// in ascending link-id order (deduplicated).
pub fn region_links(topology: &dyn Topology, center: NodeId, radius: u32) -> Vec<LinkId> {
    let in_region = |n: NodeId| topology.distance(center, n) <= radius as usize;
    let mut links: Vec<LinkId> = topology
        .links()
        .into_iter()
        .filter(|l| in_region(l.src) || in_region(l.dst))
        .map(|l| l.id)
        .collect();
    links.sort();
    links.dedup();
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn push_keeps_sorted_and_stable() {
        let mut plan = ChurnSchedule::new();
        plan.kill_link(Cycle::new(50), LinkId::new(1))
            .kill_link(Cycle::new(10), LinkId::new(2))
            .revive_link(Cycle::new(50), LinkId::new(1))
            .kill_link(Cycle::new(30), LinkId::new(3));
        let ats: Vec<u64> = plan.entries().iter().map(|e| e.at.as_u64()).collect();
        assert_eq!(ats, vec![10, 30, 50, 50]);
        // Equal-cycle entries keep insertion order: kill before revive.
        assert_eq!(
            plan.entries()[2].event,
            ChurnEvent::KillLink {
                link: LinkId::new(1)
            }
        );
        assert_eq!(
            plan.entries()[3].event,
            ChurnEvent::ReviveLink {
                link: LinkId::new(1)
            }
        );
    }

    #[test]
    fn json_roundtrip_all_kinds() {
        let mut plan = ChurnSchedule::new();
        plan.kill_link(Cycle::new(1), LinkId::new(4))
            .revive_link(Cycle::new(2), LinkId::new(4))
            .kill_node(Cycle::new(3), NodeId::new(6))
            .revive_node(Cycle::new(4), NodeId::new(6))
            .regional_outage(Cycle::new(5), NodeId::new(9), 2, 77);
        let text = plan.to_json().to_pretty();
        let back = ChurnSchedule::from_json_str(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ChurnSchedule::from_json_str("{}").is_err());
        assert!(ChurnSchedule::from_json_str("{\"events\": [{\"at\": 3}]}").is_err());
        assert!(ChurnSchedule::from_json_str(
            "{\"events\": [{\"at\": 3, \"kind\": \"explode\"}]}"
        )
        .is_err());
        assert!(ChurnSchedule::from_json_str(
            "{\"events\": [{\"at\": 3, \"kind\": \"kill_link\"}]}"
        )
        .is_err());
        // Link ids past u32 are rejected, not truncated.
        assert!(ChurnSchedule::from_json_str(
            "{\"events\": [{\"at\": 3, \"kind\": \"kill_link\", \"link\": 4294967296}]}"
        )
        .is_err());
    }

    #[test]
    fn regional_outage_expands_to_matched_kill_revive_pairs() {
        let t = KAryNCube::torus(4, 2);
        let mut plan = ChurnSchedule::new();
        plan.regional_outage(Cycle::new(100), NodeId::new(5), 0, 40);
        let expanded = plan.expanded(&t);
        // Radius 0: just node 5's channels — 4 out + 4 in on a 2-D torus.
        let kills: Vec<LinkId> = expanded
            .entries()
            .iter()
            .filter(|e| matches!(e.event, ChurnEvent::KillLink { .. }))
            .map(|e| match e.event {
                ChurnEvent::KillLink { link } => link,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kills.len(), 8);
        for e in expanded.entries() {
            match e.event {
                ChurnEvent::KillLink { .. } => assert_eq!(e.at, Cycle::new(100)),
                ChurnEvent::ReviveLink { .. } => assert_eq!(e.at, Cycle::new(140)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(expanded.len(), 16);
        assert_eq!(expanded, expanded.expanded(&t)); // idempotent
    }

    #[test]
    fn region_links_radius_grows_monotonically() {
        let t = KAryNCube::torus(4, 2);
        let r0 = region_links(&t, NodeId::new(0), 0);
        let r1 = region_links(&t, NodeId::new(0), 1);
        let all = region_links(&t, NodeId::new(0), 4);
        assert!(r0.len() < r1.len());
        assert_eq!(all.len(), t.num_links()); // radius = diameter covers everything
        for l in &r0 {
            assert!(r1.contains(l));
        }
    }

    #[test]
    fn storm_generator_is_deterministic_per_seed() {
        let t = KAryNCube::torus(4, 2);
        let gen = |seed| {
            let mut rng = SimRng::from_seed(seed);
            let mut plan = ChurnSchedule::new();
            plan.random_regional_outages(
                &t,
                4,
                Cycle::new(100),
                Cycle::new(1000),
                2,
                50,
                200,
                &mut rng,
            );
            plan
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
        let plan = gen(9);
        assert_eq!(plan.len(), 4);
        for e in plan.entries() {
            assert!(e.at >= Cycle::new(100) && e.at < Cycle::new(1000));
            match e.event {
                ChurnEvent::RegionalOutage {
                    radius, down_for, ..
                } => {
                    assert!(radius <= 2);
                    assert!((50..=200).contains(&down_for));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
