//! Property-based tests of the fault model.

use cr_faults::{strongly_connected, FaultModel};
use cr_sim::SimRng;
use cr_topology::{KAryNCube, Topology};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Connectivity-preserving fault plans actually preserve strong
    /// connectivity, for any requested count the planner accepts.
    #[test]
    fn fault_plans_preserve_connectivity(
        radix in 3usize..6,
        count in 0usize..12,
        seed in any::<u64>(),
    ) {
        let topo = KAryNCube::torus(radix, 2);
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(seed);
        match f.kill_random_links_connected(&topo, count, &mut rng) {
            Ok(killed) => {
                prop_assert_eq!(killed.len(), count);
                prop_assert_eq!(f.num_dead_links(), count);
                let dead: HashSet<_> = f.dead_links().collect();
                prop_assert!(strongly_connected(&topo, &dead));
            }
            Err(_) => {
                // Rejection must roll back cleanly.
                prop_assert_eq!(f.num_dead_links(), 0);
            }
        }
    }

    /// Removing zero links is always connected; removing all links of
    /// any node never is (for networks with more than one node).
    #[test]
    fn connectivity_extremes(radix in 2usize..6) {
        let topo = KAryNCube::torus(radix, 2);
        prop_assert!(strongly_connected(&topo, &HashSet::new()));
        let mut dead = HashSet::new();
        for l in topo.links() {
            if l.src.index() == 0 {
                dead.insert(l.id);
            }
        }
        prop_assert!(!strongly_connected(&topo, &dead));
    }

    /// Corruption sampling honours the configured rate across seeds.
    #[test]
    fn corruption_rate_tracks_configuration(
        rate_millis in 0u32..=500,
        seed in any::<u64>(),
    ) {
        let rate = f64::from(rate_millis) / 1000.0;
        let mut f = FaultModel::new();
        f.set_transient_rate(rate);
        let mut rng = SimRng::from_seed(seed);
        let n = 8000;
        let hits = (0..n).filter(|_| f.corrupts_flit(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        prop_assert!((frac - rate).abs() < 0.03 + rate * 0.15, "rate {rate} frac {frac}");
    }

    /// Detection with miss-rate zero is certain; with miss-rate one it
    /// never detects.
    #[test]
    fn detection_extremes(seed in any::<u64>()) {
        let mut rng = SimRng::from_seed(seed);
        let mut perfect = FaultModel::new();
        perfect.set_detection_miss_rate(0.0);
        let mut blind = FaultModel::new();
        blind.set_detection_miss_rate(1.0);
        for _ in 0..64 {
            prop_assert!(perfect.detects_corruption(&mut rng));
            prop_assert!(!blind.detects_corruption(&mut rng));
        }
    }
}
