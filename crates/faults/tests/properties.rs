//! Property-based tests of the fault model.

use cr_faults::{strongly_connected, FaultModel};
use cr_sim::check::{check, Config};
use cr_sim::SimRng;
use cr_topology::{KAryNCube, Topology};
use std::collections::BTreeSet;

/// Connectivity-preserving fault plans actually preserve strong
/// connectivity, for any requested count the planner accepts.
#[test]
fn fault_plans_preserve_connectivity() {
    check("fault_plans_preserve_connectivity", Config::default(), |src| {
        let radix = src.usize_in(3..6);
        let count = src.usize_in(0..12);
        let seed = src.u64_any();
        let topo = KAryNCube::torus(radix, 2);
        let mut f = FaultModel::new();
        let mut rng = SimRng::from_seed(seed);
        match f.kill_random_links_connected(&topo, count, &mut rng) {
            Ok(killed) => {
                assert_eq!(killed.len(), count);
                assert_eq!(f.num_dead_links(), count);
                let dead: BTreeSet<_> = f.dead_links().collect();
                assert!(strongly_connected(&topo, &dead));
            }
            Err(_) => {
                // Rejection must roll back cleanly.
                assert_eq!(f.num_dead_links(), 0);
            }
        }
    });
}

/// Removing zero links is always connected; removing all links of any
/// node never is (for networks with more than one node).
#[test]
fn connectivity_extremes() {
    check("connectivity_extremes", Config::default(), |src| {
        let radix = src.usize_in(2..6);
        let topo = KAryNCube::torus(radix, 2);
        assert!(strongly_connected(&topo, &BTreeSet::new()));
        let mut dead = BTreeSet::new();
        for l in topo.links() {
            if l.src.index() == 0 {
                dead.insert(l.id);
            }
        }
        assert!(!strongly_connected(&topo, &dead));
    });
}

/// Corruption sampling honours the configured rate across seeds.
#[test]
fn corruption_rate_tracks_configuration() {
    check("corruption_rate_tracks_configuration", Config::default(), |src| {
        let rate = f64::from(src.u32_in(0..501)) / 1000.0;
        let seed = src.u64_any();
        let mut f = FaultModel::new();
        f.set_transient_rate(rate);
        let mut rng = SimRng::from_seed(seed);
        let n = 8000;
        let hits = (0..n).filter(|_| f.corrupts_flit(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - rate).abs() < 0.03 + rate * 0.15, "rate {rate} frac {frac}");
    });
}

/// Detection with miss-rate zero is certain; with miss-rate one it
/// never detects.
#[test]
fn detection_extremes() {
    check("detection_extremes", Config::default(), |src| {
        let seed = src.u64_any();
        let mut rng = SimRng::from_seed(seed);
        let mut perfect = FaultModel::new();
        perfect.set_detection_miss_rate(0.0);
        let mut blind = FaultModel::new();
        blind.set_detection_miss_rate(1.0);
        for _ in 0..64 {
            assert!(perfect.detects_corruption(&mut rng));
            assert!(!blind.detects_corruption(&mut rng));
        }
    });
}
