//! Property-based tests of the router's internal invariants under
//! randomized worm traffic and teardown.

use cr_router::flit::worm_flits;
use cr_router::routing::MinimalAdaptive;
use cr_router::{RouteTarget, Router, RouterConfig, WormId};
use cr_sim::check::{check, Config, Source};
use cr_sim::{Cycle, MessageId, NodeId, PortId, SimRng, VcId};
use cr_topology::{KAryNCube, Topology};

/// A scripted stimulus: worms arriving on random input ports, with
/// random kill points, pushed through one router standing at node 0 of
/// a 4-ary 1-cube.
#[derive(Debug, Clone)]
struct Script {
    /// (input port 0/1, destination 1..=3, length 2..10, kill_after)
    worms: Vec<(u8, u8, u8, Option<u8>)>,
    buffer_depth: usize,
    num_vcs: usize,
}

fn script(src: &mut Source<'_>) -> Script {
    let worms = src.vec_with(1..12, |s| {
        (
            s.u32_in(0..2) as u8,
            s.u32_in(1..4) as u8,
            s.u32_in(2..10) as u8,
            if s.bool_any() {
                Some(s.u32_in(0..8) as u8)
            } else {
                None
            },
        )
    });
    Script {
        worms,
        buffer_depth: src.usize_in(1..4),
        num_vcs: src.usize_in(1..3),
    }
}

/// Feed random worms through a single router, killing some midway: at
/// the end, after flushing every kill, no allocation leaks, and credit
/// spend never exceeds what traversal produced.
#[test]
fn router_never_leaks_allocations() {
    check("router_never_leaks_allocations", Config::cases(64), |src| {
        let s = script(src);
        let topo = KAryNCube::torus(4, 1);
        let cfg = RouterConfig {
            num_node_ports: topo.num_ports(NodeId::new(0)),
            num_vcs: s.num_vcs,
            buffer_depth: s.buffer_depth,
            num_inject: 1,
            inject_depth: 2,
            num_eject: 1,
            link_depth: 0,
        };
        let mut r = Router::new(NodeId::new(0), cfg, SimRng::from_seed(1));
        let rf = MinimalAdaptive::new(s.num_vcs);
        let mut now = Cycle::ZERO;

        for (i, &(in_port, dst, len, kill_after)) in s.worms.iter().enumerate() {
            let worm = WormId::new(MessageId::new(i as u64), 0);
            let flits: Vec<_> = worm_flits(
                worm,
                NodeId::new(2), // somewhere upstream
                NodeId::new(dst as u32),
                len as u32,
                0,
                i as u64,
                Cycle::ZERO,
            )
            .collect();
            let port = PortId::new(in_port as u16);
            let vc = VcId::new((i % s.num_vcs) as u8);
            let mut sent = 0usize;
            let mut steps = 0usize;
            while sent < flits.len() && steps < 200 {
                // Refill as space allows (emulating upstream).
                while sent < flits.len() && r.occupancy(port, vc) < s.buffer_depth {
                    r.accept(now, port, vc, flits[sent]);
                    sent += 1;
                }
                r.route_and_allocate(now, &rf, &topo, &|_| false);
                let out = r.traverse(now, &|_| false);
                // Return credits instantly (ideal downstream).
                for t in &out {
                    if let RouteTarget::Link { port, vc } = t.target {
                        r.add_credit(port, vc);
                    }
                }
                now += 1;
                steps += 1;
                if let Some(k) = kill_after {
                    if steps == k as usize + 1 {
                        let _ = r.flush_worm(port, vc, worm);
                        break;
                    }
                }
            }
            // Drain whatever remains of this worm normally.
            for _ in 0..200 {
                if r.occupancy(port, vc) == 0 && r.route_of(port, vc).is_none() {
                    break;
                }
                r.route_and_allocate(now, &rf, &topo, &|_| false);
                let out = r.traverse(now, &|_| false);
                for t in &out {
                    if let RouteTarget::Link { port, vc } = t.target {
                        r.add_credit(port, vc);
                    }
                }
                if out.is_empty() {
                    // Stuck remnants (e.g. killed worm's parked flits):
                    // flush, as the network's teardown would.
                    if let Some(w) = r.front_flit(port, vc).map(|f| f.worm) {
                        let _ = r.flush_worm(port, vc, w);
                    }
                }
                now += 1;
            }
        }

        // Invariants at quiescence: every input VC empty and unrouted,
        // every output free with full credits.
        let node = NodeId::new(0);
        for p in 0..topo.num_ports(node) {
            let port = PortId::new(p as u16);
            for v in 0..s.num_vcs {
                let vc = VcId::new(v as u8);
                assert_eq!(r.occupancy(port, vc), 0, "flits left at {port} {vc}");
                assert!(r.route_of(port, vc).is_none());
                assert!(r.output_owner(port, vc).is_none());
                assert_eq!(r.credits(port, vc), s.buffer_depth);
            }
        }
        assert_eq!(r.total_occupancy(), 0);
    });
}

/// `flush_worm` is idempotent and only ever touches its worm.
#[test]
fn flush_is_idempotent_and_precise() {
    check("flush_is_idempotent_and_precise", Config::cases(64), |src| {
        let len_a = src.u32_in(2..8);
        let len_b = src.u32_in(2..8);
        let seed = src.u64_any();
        let topo = KAryNCube::torus(4, 1);
        let cfg = RouterConfig {
            num_node_ports: 2,
            num_vcs: 2,
            buffer_depth: 8,
            num_inject: 1,
            inject_depth: 2,
            num_eject: 1,
            link_depth: 0,
        };
        let mut r = Router::new(NodeId::new(0), cfg, SimRng::from_seed(seed));
        let rf = MinimalAdaptive::new(2);
        let wa = WormId::new(MessageId::new(1), 0);
        let wb = WormId::new(MessageId::new(2), 0);
        let fa: Vec<_> =
            worm_flits(wa, NodeId::new(3), NodeId::new(1), len_a, 0, 0, Cycle::ZERO).collect();
        let fb: Vec<_> =
            worm_flits(wb, NodeId::new(3), NodeId::new(2), len_b, 0, 0, Cycle::ZERO).collect();
        // Interleave the two worms on different VCs of one port.
        for f in fa.iter().take(4) {
            r.accept(Cycle::ZERO, PortId::new(1), VcId::new(0), *f);
        }
        for f in fb.iter().take(4) {
            r.accept(Cycle::ZERO, PortId::new(1), VcId::new(1), *f);
        }
        r.route_and_allocate(Cycle::ZERO, &rf, &topo, &|_| false);

        let first = r.flush_worm(PortId::new(1), VcId::new(0), wa);
        assert_eq!(first.flushed, fa.len().min(4));
        let again = r.flush_worm(PortId::new(1), VcId::new(0), wa);
        assert_eq!(again.flushed, 0);
        assert_eq!(again.released, None);
        // Worm B untouched.
        assert_eq!(r.occupancy(PortId::new(1), VcId::new(1)), fb.len().min(4));
        assert_eq!(r.worm_of(PortId::new(1), VcId::new(1)), Some(wb));
    });
}
