//! Routing functions: given a header flit at a node, produce the
//! prioritized list of output (port, virtual-channel) candidates.
//!
//! The router allocates the *first free* candidate, so the routing
//! function controls policy purely through candidate order: adaptive
//! functions shuffle equivalent choices, Duato's protocol lists escape
//! channels last, and dimension-order routing offers exactly one port.

mod adaptive;
mod dor;
mod duato;
mod fullmesh;
mod par;

pub use adaptive::MinimalAdaptive;
pub use dor::DimensionOrder;
pub use duato::DuatoProtocol;
pub use fullmesh::FullMeshOrdered;
pub use par::PlanarAdaptive;

use crate::flit::Flit;
use cr_sim::{NodeId, PortId, SimRng, VcId};
use cr_topology::Topology;

/// One routing candidate: an output virtual channel, with a marker for
/// escape channels (used to count the paper's "potential deadlock
/// situations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Output port.
    pub port: PortId,
    /// Virtual channel on that port.
    pub vc: VcId,
    /// `true` if this is a deadlock-escape channel (Duato's protocol).
    pub escape: bool,
}

/// Everything a routing function may consult when routing one header.
pub struct RouteCtx<'a> {
    /// The network topology.
    pub topo: &'a dyn Topology,
    /// The node doing the routing.
    pub node: NodeId,
    /// The header flit being routed (destination, hop count, escape
    /// status).
    pub flit: &'a Flit,
    /// `dead_out[p]` is `true` if the outgoing link on port `p` is
    /// known dead; routing functions must not offer such ports.
    pub dead_out: &'a [bool],
    /// Deterministic tie-breaking randomness.
    pub rng: &'a mut SimRng,
}

impl<'a> RouteCtx<'a> {
    /// Minimal output ports toward the destination that are still
    /// alive, in ascending port order.
    pub fn live_minimal_ports(&self) -> Vec<PortId> {
        let mut ports = Vec::new();
        self.topo
            .minimal_ports_into(self.node, self.flit.dst, &mut ports);
        ports.retain(|p| !self.dead_out.get(p.index()).copied().unwrap_or(false));
        ports
    }
}

/// A routing algorithm.
///
/// Implementations must be memoryless across calls: all per-worm state
/// lives in the header flit (`hops`, `escaped`), so that killing and
/// retransmitting a message fully resets its routing state — a property
/// Compressionless Routing relies on.
///
/// Implementations are stateless decision tables (all randomness comes
/// through the caller-supplied `RouteCtx` RNG), and the sharded
/// stepper routes on several shards concurrently against one shared
/// routing object — hence the `Send + Sync` bound.
pub trait RoutingFunction: std::fmt::Debug + Send + Sync {
    /// Appends candidates for the header `ctx.flit` at `ctx.node`, in
    /// priority order (the router takes the first free one).
    ///
    /// Called only when `ctx.node != ctx.flit.dst` (ejection is the
    /// router's job) and never with an empty destination. May append
    /// nothing, in which case the header simply waits (e.g. all minimal
    /// ports dead and misrouting disabled).
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>);

    /// Number of virtual channels per physical port this algorithm
    /// requires the network to provision.
    fn num_vcs(&self) -> usize;

    /// Short human-readable name for tables and logs.
    fn name(&self) -> &'static str;
}

/// Rotates `items` left by a pseudo-random amount drawn from `rng` —
/// the cheap deterministic "pick uniformly among equivalent choices"
/// used by the adaptive functions.
pub(crate) fn rotate_by_rng<T>(items: &mut [T], rng: &mut SimRng) {
    let n = items.len();
    if n > 1 {
        let k = rng.pick_index(n).unwrap_or(0);
        items.rotate_left(k);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by routing-algorithm tests.

    use super::*;
    use crate::flit::{FlitKind, WormId};
    use cr_sim::{Cycle, MessageId};

    /// Builds a header flit from `src` to `dst`.
    pub fn header(src: NodeId, dst: NodeId) -> Flit {
        Flit::new(
            WormId::new(MessageId::new(1), 0),
            FlitKind::Head,
            src,
            dst,
            0,
            0,
            8,
            8,
            Cycle::ZERO,
        )
    }

    /// Collects candidates for `flit` at `node` with no dead links.
    pub fn candidates_at(
        rf: &dyn RoutingFunction,
        topo: &dyn Topology,
        node: NodeId,
        flit: &Flit,
    ) -> Vec<Candidate> {
        let dead = vec![false; topo.max_ports()];
        let mut rng = SimRng::from_seed(99);
        let mut ctx = RouteCtx {
            topo,
            node,
            flit,
            dead_out: &dead,
            rng: &mut rng,
        };
        let mut out = Vec::new();
        rf.candidates(&mut ctx, &mut out);
        out
    }
}
