//! Zero-virtual-channel ordered-detour routing for diameter-1
//! topologies, after "Deadlock-free routing for Full-mesh networks
//! without using Virtual Channels" (Cano, Camarero, Martínez, Beivide;
//! HOTI'25).

use super::{rotate_by_rng, Candidate, RouteCtx, RoutingFunction};
use cr_sim::VcId;

/// Ordered-detour routing on a full mesh: one virtual channel, no
/// deadlock, no kills.
///
/// At the source the function offers the direct channel first, then —
/// as congestion fallbacks — the channels toward every intermediate
/// node whose index is **greater than both** the current node and the
/// destination; after one hop only the direct channel remains. The
/// ordering restriction is what buys deadlock freedom without virtual
/// channels: a channel entering node `v` waits only on channels leaving
/// `v`, and a detour through `v` requires `v` to be a strict local
/// maximum (`v > u` and `v > w`), so two waits can never chain —
/// channel `(u, v)` depends on `(v, w)` only if `v > u` and `v > w`,
/// and `(v, w)` depends on some `(w, x)` only if `w > v`, a
/// contradiction. Every dependency path in the channel-dependency graph
/// has length ≤ 1, hence no cycles.
///
/// This is the modern zero-VC competitor to Compressionless Routing's
/// "no virtual channels needed" claim, and the scheme the `showdown`
/// experiment pits CR against on [`cr_topology::FullMesh`]. It is
/// meaningful only on diameter-1 topologies (the builder enforces
/// that); misrouting adds at most one hop, so protocol padding must
/// budget for 2-hop paths.
#[derive(Debug, Clone, Default)]
pub struct FullMeshOrdered;

impl FullMeshOrdered {
    /// Creates the ordered-detour routing function.
    pub fn new() -> Self {
        FullMeshOrdered
    }
}

impl RoutingFunction for FullMeshOrdered {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        let vc = VcId::new(0);
        // The (unique) minimal port is the direct channel to dst.
        let direct = ctx.live_minimal_ports();
        out.extend(direct.iter().map(|&port| Candidate {
            port,
            vc,
            escape: false,
        }));
        if ctx.flit.hops > 0 {
            // Already detoured (or just not at the source any more):
            // only the direct channel is legal.
            return;
        }
        // Detour candidates: intermediates ranked above both endpoints.
        let floor = ctx.node.index().max(ctx.flit.dst.index());
        let start = out.len();
        for p in 0..ctx.topo.num_ports(ctx.node) {
            let port = cr_sim::PortId::new(p as u16);
            if ctx.dead_out.get(p).copied().unwrap_or(false) {
                continue;
            }
            let Some(mid) = ctx.topo.neighbor(ctx.node, port) else {
                continue;
            };
            if mid.index() > floor {
                out.push(Candidate {
                    port,
                    vc,
                    escape: false,
                });
            }
        }
        // Spread detour load evenly; the direct channel keeps priority.
        rotate_by_rng(&mut out[start..], ctx.rng);
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "ordered detour (0 VC)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::{candidates_at, header};
    use cr_sim::NodeId;
    use cr_topology::{FullMesh, Topology};

    #[test]
    fn direct_channel_always_first() {
        let t = FullMesh::new(8);
        let rf = FullMeshOrdered::new();
        for s in 0..8u32 {
            for d in 0..8u32 {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId::new(s), NodeId::new(d));
                let cands = candidates_at(&rf, &t, src, &header(src, dst));
                assert!(!cands.is_empty());
                assert_eq!(t.neighbor(src, cands[0].port), Some(dst), "{s}->{d}");
            }
        }
    }

    #[test]
    fn detours_only_through_higher_indexed_nodes() {
        let t = FullMesh::new(8);
        let rf = FullMeshOrdered::new();
        for s in 0..8u32 {
            for d in 0..8u32 {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId::new(s), NodeId::new(d));
                let cands = candidates_at(&rf, &t, src, &header(src, dst));
                let floor = (s.max(d)) as usize;
                // Everything after the direct channel is a strict local max.
                for c in &cands[1..] {
                    let mid = t.neighbor(src, c.port).unwrap();
                    assert!(mid.index() > floor, "{s}->{d} via {}", mid.index());
                    assert_eq!(c.vc.index(), 0);
                    assert!(!c.escape);
                }
                // And every legal intermediate is offered.
                assert_eq!(cands.len() - 1, 7 - floor, "{s}->{d}");
            }
        }
    }

    #[test]
    fn after_one_hop_only_direct_remains() {
        let t = FullMesh::new(8);
        let rf = FullMeshOrdered::new();
        let (src, dst) = (NodeId::new(7), NodeId::new(1));
        let mut h = header(src, dst);
        h.hops = 1;
        // Routed at the intermediate (node 7 was the local max for 0->1).
        let cands = candidates_at(&rf, &t, src, &h);
        assert_eq!(cands.len(), 1);
        assert_eq!(t.neighbor(src, cands[0].port), Some(dst));
    }

    #[test]
    fn top_node_pair_has_no_detours() {
        let t = FullMesh::new(8);
        let rf = FullMeshOrdered::new();
        let (src, dst) = (NodeId::new(7), NodeId::new(6));
        let cands = candidates_at(&rf, &t, src, &header(src, dst));
        assert_eq!(cands.len(), 1, "nothing ranks above node 7");
    }

    #[test]
    fn single_vc() {
        assert_eq!(FullMeshOrdered::new().num_vcs(), 1);
    }
}
