//! Duato's protocol: adaptive channels backed by a dimension-order
//! escape network.
//!
//! The paper uses a Duato-style network to *estimate how often potential
//! deadlock situations (PDS) occur*: every time a message has to fall
//! back to the escape (dimension-order) virtual channels, a potential
//! deadlock was brewing. This crate reproduces that methodology: the
//! router counts escape-channel allocations, and the `tab_pds`
//! experiment sweeps load and reports the escape frequency.

use super::{rotate_by_rng, Candidate, DimensionOrder, RouteCtx, RoutingFunction};
use cr_sim::VcId;

/// Duato's deadlock-free adaptive routing (paper reference \[5\]).
///
/// Virtual channels `0..adaptive_vcs` form the fully-adaptive class
/// (any minimal port); the remaining channels form a dimension-order
/// escape network (two dateline classes on a torus). A header first
/// tries every adaptive channel; only if all are busy does it accept an
/// escape channel. Once a worm takes an escape channel it stays on the
/// escape network for the rest of its path (the conservative wormhole
/// variant of Duato's condition, which keeps the extended channel
/// dependency graph acyclic).
///
/// # Examples
///
/// ```
/// use cr_router::routing::DuatoProtocol;
/// use cr_router::RoutingFunction;
///
/// let duato = DuatoProtocol::torus(1);
/// assert_eq!(duato.num_vcs(), 3); // 1 adaptive + 2 escape classes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuatoProtocol {
    adaptive_vcs: usize,
    escape: DimensionOrder,
}

impl DuatoProtocol {
    /// Duato's protocol on a torus: `adaptive_vcs` adaptive channels
    /// plus a two-class dimension-order escape network.
    ///
    /// # Panics
    ///
    /// Panics if `adaptive_vcs` is zero.
    pub fn torus(adaptive_vcs: usize) -> Self {
        assert!(adaptive_vcs > 0, "need at least one adaptive channel");
        DuatoProtocol {
            adaptive_vcs,
            escape: DimensionOrder::torus(1).with_vc_base(adaptive_vcs),
        }
    }

    /// Duato's protocol on a mesh: `adaptive_vcs` adaptive channels
    /// plus a single-class dimension-order escape network.
    ///
    /// # Panics
    ///
    /// Panics if `adaptive_vcs` is zero.
    pub fn mesh(adaptive_vcs: usize) -> Self {
        assert!(adaptive_vcs > 0, "need at least one adaptive channel");
        DuatoProtocol {
            adaptive_vcs,
            escape: DimensionOrder::mesh(1).with_vc_base(adaptive_vcs),
        }
    }

    /// Number of adaptive (non-escape) virtual channels.
    pub fn adaptive_vcs(&self) -> usize {
        self.adaptive_vcs
    }
}

impl RoutingFunction for DuatoProtocol {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        // A worm that entered the escape network stays there.
        if !ctx.flit.escaped {
            let mut ports = ctx.live_minimal_ports();
            rotate_by_rng(&mut ports, ctx.rng);
            for port in ports {
                let start = ctx.rng.pick_index(self.adaptive_vcs).unwrap_or(0);
                for i in 0..self.adaptive_vcs {
                    out.push(Candidate {
                        port,
                        vc: VcId::new(((start + i) % self.adaptive_vcs) as u8),
                        escape: false,
                    });
                }
            }
        }
        // Escape candidates last: taking one is a "potential deadlock
        // situation" in the paper's methodology.
        let before = out.len();
        self.escape.candidates(ctx, out);
        for c in &mut out[before..] {
            c.escape = true;
        }
    }

    fn num_vcs(&self) -> usize {
        self.escape.num_vcs() // includes the adaptive base offset
    }

    fn name(&self) -> &'static str {
        "duato"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{candidates_at, header};
    use super::*;
    use cr_topology::KAryNCube;

    #[test]
    fn adaptive_candidates_precede_escape() {
        let t = KAryNCube::torus(8, 2);
        let duato = DuatoProtocol::torus(2);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[2, 3]);
        let h = header(src, dst);
        let c = candidates_at(&duato, &t, src, &h);
        // 2 minimal ports x 2 adaptive VCs + 1 escape candidate.
        assert_eq!(c.len(), 5);
        assert!(c[..4].iter().all(|x| !x.escape));
        assert!(c[4].escape);
        assert!(c[4].vc.index() >= 2, "escape VCs sit past adaptive ones");
    }

    #[test]
    fn escaped_worms_get_only_escape_candidates() {
        let t = KAryNCube::torus(8, 2);
        let duato = DuatoProtocol::torus(2);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[2, 3]);
        let mut h = header(src, dst);
        h.escaped = true;
        let c = candidates_at(&duato, &t, src, &h);
        assert_eq!(c.len(), 1);
        assert!(c[0].escape);
    }

    #[test]
    fn vc_count_includes_both_networks() {
        assert_eq!(DuatoProtocol::torus(1).num_vcs(), 3);
        assert_eq!(DuatoProtocol::torus(2).num_vcs(), 4);
        assert_eq!(DuatoProtocol::mesh(2).num_vcs(), 3);
    }

    #[test]
    fn escape_follows_dimension_order() {
        let t = KAryNCube::torus(8, 2);
        let duato = DuatoProtocol::torus(1);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[3, 5]);
        let mut h = header(src, dst);
        h.escaped = true;
        let c = candidates_at(&duato, &t, src, &h);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].port, cr_sim::PortId::new(0), "+x first");
    }
}
