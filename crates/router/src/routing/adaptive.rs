//! Minimal fully-adaptive routing — the routing freedom that
//! Compressionless Routing makes deadlock-free *without* virtual
//! channels.

use super::{rotate_by_rng, Candidate, RouteCtx, RoutingFunction};
use cr_sim::VcId;

/// Minimal fully-adaptive routing with optional misrouting.
///
/// At every hop the header may take **any** output port that lies on a
/// minimal path to its destination, on **any** virtual channel. This
/// routing relation is riddled with channel-dependency cycles — which is
/// fine, because the CR protocol recovers from any deadlock by killing
/// and retransmitting the stalled worm, rather than preventing cycles
/// with virtual-channel structure.
///
/// For Fault-tolerant CR, `with_misrouting(extra)` additionally allows
/// non-minimal hops when every minimal port is dead, up to `extra`
/// extra hops per attempt (the header's hop counter bounds it, so a
/// retransmitted attempt gets a fresh budget; kills-and-retries replace
/// livelock).
///
/// # Examples
///
/// ```
/// use cr_router::routing::MinimalAdaptive;
/// use cr_router::RoutingFunction;
///
/// let adaptive = MinimalAdaptive::new(1);
/// assert_eq!(adaptive.num_vcs(), 1); // zero *extra* VCs needed
/// let ft = MinimalAdaptive::new(2).with_misrouting(4);
/// assert_eq!(ft.num_vcs(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalAdaptive {
    vcs: usize,
    misroute_budget: Option<u16>,
}

impl MinimalAdaptive {
    /// Minimal-adaptive routing over `vcs` virtual channels per port
    /// (CR needs only 1; more act as virtual lanes for throughput).
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    pub fn new(vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        MinimalAdaptive {
            vcs,
            misroute_budget: None,
        }
    }

    /// Allows up to `extra_hops` non-minimal hops per attempt when no
    /// live minimal port exists (fault tolerance).
    pub fn with_misrouting(mut self, extra_hops: u16) -> Self {
        self.misroute_budget = Some(extra_hops);
        self
    }

    /// Returns the misrouting hop budget, if enabled.
    pub fn misroute_budget(&self) -> Option<u16> {
        self.misroute_budget
    }
}

impl RoutingFunction for MinimalAdaptive {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        let mut ports = ctx.live_minimal_ports();
        if ports.is_empty() {
            // Misroute: any live port, if the budget allows.
            let budget = match self.misroute_budget {
                Some(b) => b,
                None => return,
            };
            let min_dist = ctx.topo.distance(ctx.node, ctx.flit.dst) as u32;
            let straight_line = ctx.topo.distance(ctx.flit.src, ctx.flit.dst) as u32;
            // Hop budget: minimal distance plus the extra allowance.
            // The remaining distance from here also counts against it.
            if u32::from(ctx.flit.hops) + min_dist > straight_line + u32::from(budget) {
                return;
            }
            for p in 0..ctx.topo.num_ports(ctx.node) {
                let port = cr_sim::PortId::new(p as u16);
                if ctx.topo.neighbor(ctx.node, port).is_some()
                    && !ctx.dead_out.get(p).copied().unwrap_or(false)
                {
                    ports.push(port);
                }
            }
            if ports.is_empty() {
                return;
            }
        }
        rotate_by_rng(&mut ports, ctx.rng);
        // Offer every (port, vc) pair; rotate the VC start per port so
        // load spreads across lanes.
        for port in ports {
            let start = ctx.rng.pick_index(self.vcs).unwrap_or(0);
            for i in 0..self.vcs {
                out.push(Candidate {
                    port,
                    vc: VcId::new(((start + i) % self.vcs) as u8),
                    escape: false,
                });
            }
        }
    }

    fn num_vcs(&self) -> usize {
        self.vcs
    }

    fn name(&self) -> &'static str {
        if self.misroute_budget.is_some() {
            "minimal-adaptive+misroute"
        } else {
            "minimal-adaptive"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{candidates_at, header};
    use super::super::RouteCtx;
    use super::*;
    use cr_sim::{NodeId, PortId, SimRng};
    use cr_topology::{KAryNCube, Topology};

    #[test]
    fn offers_every_minimal_direction() {
        let t = KAryNCube::torus(8, 2);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[2, 3]);
        let h = header(src, dst);
        let c = candidates_at(&MinimalAdaptive::new(1), &t, src, &h);
        let ports: std::collections::HashSet<_> = c.iter().map(|x| x.port).collect();
        assert_eq!(
            ports,
            [PortId::new(0), PortId::new(2)].into_iter().collect(),
            "+x and +y are both minimal"
        );
        assert!(c.iter().all(|x| !x.escape));
    }

    #[test]
    fn multiplies_ports_by_vcs() {
        let t = KAryNCube::torus(8, 2);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[2, 3]);
        let h = header(src, dst);
        let c = candidates_at(&MinimalAdaptive::new(3), &t, src, &h);
        assert_eq!(c.len(), 2 * 3);
    }

    #[test]
    fn no_misrouting_by_default() {
        let t = KAryNCube::torus(4, 1);
        let h = header(NodeId::new(0), NodeId::new(1));
        // Kill the only minimal port (+x from 0 to 1).
        let mut dead = vec![false; t.max_ports()];
        dead[0] = true;
        let mut rng = SimRng::from_seed(0);
        let mut ctx = RouteCtx {
            topo: &t,
            node: NodeId::new(0),
            flit: &h,
            dead_out: &dead,
            rng: &mut rng,
        };
        let mut out = Vec::new();
        MinimalAdaptive::new(1).candidates(&mut ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn misroutes_around_dead_minimal_port() {
        let t = KAryNCube::torus(4, 1);
        let h = header(NodeId::new(0), NodeId::new(1));
        let mut dead = vec![false; t.max_ports()];
        dead[0] = true;
        let mut rng = SimRng::from_seed(0);
        let mut ctx = RouteCtx {
            topo: &t,
            node: NodeId::new(0),
            flit: &h,
            dead_out: &dead,
            rng: &mut rng,
        };
        let mut out = Vec::new();
        MinimalAdaptive::new(1)
            .with_misrouting(4)
            .candidates(&mut ctx, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId::new(1), "the long way around");
    }

    #[test]
    fn misroute_budget_exhausts() {
        let t = KAryNCube::torus(4, 1);
        let mut h = header(NodeId::new(0), NodeId::new(1));
        h.hops = 40; // way past any budget
        let mut dead = vec![false; t.max_ports()];
        dead[0] = true;
        let mut rng = SimRng::from_seed(0);
        let mut ctx = RouteCtx {
            topo: &t,
            node: NodeId::new(0),
            flit: &h,
            dead_out: &dead,
            rng: &mut rng,
        };
        let mut out = Vec::new();
        MinimalAdaptive::new(1)
            .with_misrouting(4)
            .candidates(&mut ctx, &mut out);
        assert!(out.is_empty(), "budget spent: wait (and let CR kill us)");
    }

    #[test]
    fn candidate_order_varies_with_rng() {
        // Adaptivity: different RNG streams produce different
        // priority orders over the same candidates.
        let t = KAryNCube::torus(8, 2);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[3, 3]);
        let h = header(src, dst);
        let rf = MinimalAdaptive::new(1);
        let dead = vec![false; t.max_ports()];
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..16 {
            let mut rng = SimRng::from_seed(seed);
            let mut ctx = RouteCtx {
                topo: &t,
                node: src,
                flit: &h,
                dead_out: &dead,
                rng: &mut rng,
            };
            let mut out = Vec::new();
            rf.candidates(&mut ctx, &mut out);
            firsts.insert(out[0].port);
        }
        assert_eq!(firsts.len(), 2, "both minimal ports appear first");
    }
}
