//! Deterministic dimension-order routing (DOR) — the paper's baseline.

use super::{Candidate, RouteCtx, RoutingFunction};
use cr_sim::{PortId, VcId};

/// Dimension-order routing with dateline virtual-channel classes.
///
/// Routes each message through the dimensions in ascending order,
/// always taking the (unique) minimal direction. On a **torus** the
/// wraparound channels close a cyclic channel dependency, so the
/// classic two-class scheme of the torus routing chip (paper reference
/// \[28\]) is used: within the ring of dimension `d`, a hop is class 0
/// when it cannot cross the wraparound before reaching the
/// destination's coordinate, class 1 when it will — comparing current
/// and destination coordinates decides, no per-worm state needed.
///
/// Each class may be widened into several *virtual lanes* (paper
/// reference \[29\]); a header may take any free lane of its class,
/// which is how the Fig. 14(c)/(d) experiments give DOR extra virtual
/// channels.
///
/// # Examples
///
/// ```
/// use cr_router::routing::DimensionOrder;
/// use cr_router::RoutingFunction;
///
/// let dor = DimensionOrder::torus(1);
/// assert_eq!(dor.num_vcs(), 2); // two dateline classes, one lane each
/// let wide = DimensionOrder::torus(4);
/// assert_eq!(wide.num_vcs(), 8);
/// let mesh = DimensionOrder::mesh(3);
/// assert_eq!(mesh.num_vcs(), 3); // no dateline needed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionOrder {
    lanes: usize,
    torus: bool,
    /// Offset of the first VC this function may use (lets Duato's
    /// protocol embed a DOR escape network after its adaptive VCs).
    vc_base: usize,
}

impl DimensionOrder {
    /// DOR for a torus: two dateline classes of `lanes` lanes each.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn torus(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        DimensionOrder {
            lanes,
            torus: true,
            vc_base: 0,
        }
    }

    /// DOR for a mesh (or other wrap-free cube): a single class of
    /// `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn mesh(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        DimensionOrder {
            lanes,
            torus: false,
            vc_base: 0,
        }
    }

    /// Same algorithm, but using virtual channels starting at
    /// `vc_base` (for embedding as an escape network).
    pub fn with_vc_base(mut self, vc_base: usize) -> Self {
        self.vc_base = vc_base;
        self
    }

    /// Number of lanes per dateline class.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The dimension-order output port and dateline class for the
    /// header in `ctx`, or `None` if the DOR port's link is dead
    /// (DOR cannot route around faults).
    pub(crate) fn dor_choice(&self, ctx: &RouteCtx<'_>) -> Option<(PortId, usize)> {
        let mut ports = Vec::new();
        ctx.topo
            .minimal_ports_into(ctx.node, ctx.flit.dst, &mut ports);
        // Lowest port = lowest dimension, positive direction preferred
        // on ties: deterministic dimension order.
        let port = *ports.first()?;
        if ctx.dead_out.get(port.index()).copied().unwrap_or(false) {
            return None;
        }
        let class = if self.torus && will_wrap(ctx, port) {
            1
        } else {
            0
        };
        Some((port, class))
    }
}

/// Does the remaining travel in `port`'s dimension cross a wraparound
/// channel? True exactly when walking from the current node in the
/// port's direction hits the torus rim before the destination
/// coordinate.
///
/// This is computed structurally (via [`cr_topology::Topology`]'s
/// `is_wraparound`) rather than from coordinates, so it works for any
/// cube radix and needs no per-worm state: walk the ports of this
/// dimension from the current node; if the wraparound channel appears
/// before the destination's ring position, the hop chain is class 1.
fn will_wrap(ctx: &RouteCtx<'_>, port: PortId) -> bool {
    // Walk node-by-node in the chosen direction until reaching the
    // destination's coordinate in this dimension; report whether a
    // wraparound channel is crossed. Rings are at most `radix` long, so
    // this is O(k) — negligible next to simulation work, and keeps the
    // dateline rule exactly aligned with the topology's own wraparound
    // notion.
    let mut node = ctx.node;
    let dst = ctx.flit.dst;
    let topo = ctx.topo;
    let start_dist = topo.distance(node, dst);
    let mut crossed = false;
    let mut steps = 0usize;
    loop {
        let mut ports = Vec::new();
        topo.minimal_ports_into(node, dst, &mut ports);
        // Stay in the same dimension as the original port.
        let same_dim: Vec<PortId> = ports
            .into_iter()
            .filter(|p| p.index() / 2 == port.index() / 2)
            .collect();
        // Keep the same direction if it is still minimal, otherwise
        // this dimension is resolved.
        let Some(&next_port) = same_dim
            .iter()
            .find(|p| p.index() % 2 == port.index() % 2)
        else {
            return crossed;
        };
        if topo.is_wraparound(node, next_port) {
            crossed = true;
        }
        node = match topo.neighbor(node, next_port) {
            Some(n) => n,
            None => return crossed,
        };
        steps += 1;
        if steps > start_dist {
            // Defensive: minimal walking must terminate within the
            // original distance.
            return crossed;
        }
    }
}

impl RoutingFunction for DimensionOrder {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        let Some((port, class)) = self.dor_choice(ctx) else {
            return;
        };
        // Any free lane of the class will do; rotate for load balance.
        let base = self.vc_base + class * self.lanes;
        let start = ctx.rng.pick_index(self.lanes).unwrap_or(0);
        for i in 0..self.lanes {
            let lane = (start + i) % self.lanes;
            out.push(Candidate {
                port,
                vc: VcId::new((base + lane) as u8),
                escape: false,
            });
        }
    }

    fn num_vcs(&self) -> usize {
        self.vc_base + if self.torus { 2 * self.lanes } else { self.lanes }
    }

    fn name(&self) -> &'static str {
        "dimension-order"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{candidates_at, header};
    use super::*;
    use cr_sim::NodeId;
    use cr_topology::{KAryNCube, Topology};

    #[test]
    fn routes_lowest_dimension_first() {
        let t = KAryNCube::torus(8, 2);
        let dor = DimensionOrder::torus(1);
        // (0,0) -> (3,5): must move in x (dimension 0) first.
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[3, 5]);
        let h = header(src, dst);
        let c = candidates_at(&dor, &t, src, &h);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].port, cr_sim::PortId::new(0)); // +x
    }

    #[test]
    fn single_port_offered_per_hop() {
        let t = KAryNCube::torus(4, 2);
        let dor = DimensionOrder::torus(1);
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let h = header(NodeId::new(s), NodeId::new(d));
                let c = candidates_at(&dor, &t, NodeId::new(s), &h);
                assert_eq!(c.len(), 1, "{s}->{d}");
                let ports: std::collections::HashSet<_> = c.iter().map(|x| x.port).collect();
                assert_eq!(ports.len(), 1);
            }
        }
    }

    #[test]
    fn non_wrapping_route_uses_class_zero() {
        let t = KAryNCube::torus(8, 1);
        let dor = DimensionOrder::torus(1);
        let h = header(NodeId::new(1), NodeId::new(3));
        let c = candidates_at(&dor, &t, NodeId::new(1), &h);
        assert_eq!(c[0].vc, VcId::new(0));
    }

    #[test]
    fn wrapping_route_uses_class_one_until_dateline() {
        let t = KAryNCube::torus(8, 1);
        let dor = DimensionOrder::torus(1);
        // 6 -> 1 minimal goes 6,7,0,1 crossing the wrap channel 7->0.
        let h = header(NodeId::new(6), NodeId::new(1));
        let at6 = candidates_at(&dor, &t, NodeId::new(6), &h);
        assert_eq!(at6[0].vc, VcId::new(1), "before the dateline: class 1");
        let at7 = candidates_at(&dor, &t, NodeId::new(7), &h);
        assert_eq!(at7[0].vc, VcId::new(1), "the wrap hop itself: class 1");
        let at0 = candidates_at(&dor, &t, NodeId::new(0), &h);
        assert_eq!(at0[0].vc, VcId::new(0), "after the dateline: class 0");
    }

    #[test]
    fn mesh_uses_single_class() {
        let m = KAryNCube::mesh(8, 2);
        let dor = DimensionOrder::mesh(2);
        assert_eq!(dor.num_vcs(), 2);
        let src = m.node_at(&[7, 0]);
        let dst = m.node_at(&[0, 3]);
        let h = header(src, dst);
        let c = candidates_at(&dor, &m, src, &h);
        assert_eq!(c.len(), 2); // both lanes of the one class
        assert_eq!(c[0].port, cr_sim::PortId::new(1)); // -x
        let vcs: std::collections::HashSet<_> = c.iter().map(|x| x.vc.index()).collect();
        assert_eq!(vcs, [0usize, 1].into_iter().collect());
    }

    #[test]
    fn lanes_cover_all_class_vcs() {
        let t = KAryNCube::torus(8, 2);
        let dor = DimensionOrder::torus(4);
        assert_eq!(dor.num_vcs(), 8);
        let h = header(NodeId::new(0), NodeId::new(2));
        let c = candidates_at(&dor, &t, NodeId::new(0), &h);
        assert_eq!(c.len(), 4);
        // Class 0 lanes are VCs 0..4.
        assert!(c.iter().all(|x| x.vc.index() < 4));
    }

    #[test]
    fn dead_dor_port_yields_no_candidates() {
        let t = KAryNCube::torus(4, 2);
        let dor = DimensionOrder::torus(1);
        let h = header(NodeId::new(0), NodeId::new(1));
        let mut dead = vec![false; t.max_ports()];
        dead[0] = true; // +x is the DOR port for 0 -> 1
        let mut rng = cr_sim::SimRng::from_seed(1);
        let mut ctx = RouteCtx {
            topo: &t,
            node: NodeId::new(0),
            flit: &h,
            dead_out: &dead,
            rng: &mut rng,
        };
        let mut out = Vec::new();
        dor.candidates(&mut ctx, &mut out);
        assert!(out.is_empty(), "DOR cannot route around faults");
    }

    #[test]
    fn vc_base_shifts_channels() {
        let t = KAryNCube::torus(8, 1);
        let dor = DimensionOrder::torus(1).with_vc_base(3);
        assert_eq!(dor.num_vcs(), 5);
        let h = header(NodeId::new(1), NodeId::new(3));
        let c = candidates_at(&dor, &t, NodeId::new(1), &h);
        assert_eq!(c[0].vc, VcId::new(3));
    }

    #[test]
    fn dimension_order_never_revisits_dimension() {
        // Follow DOR hop by hop; the dimension index must be
        // non-decreasing along the path.
        let t = KAryNCube::torus(8, 3);
        let dor = DimensionOrder::torus(1);
        let src = t.node_at(&[6, 2, 7]);
        let dst = t.node_at(&[1, 5, 0]);
        let h = header(src, dst);
        let mut node = src;
        let mut last_dim = 0usize;
        while node != dst {
            let c = candidates_at(&dor, &t, node, &h);
            assert_eq!(c.len(), 1);
            let dim = c[0].port.index() / 2;
            assert!(dim >= last_dim, "dimension went backwards");
            last_dim = dim;
            node = t.neighbor(node, c[0].port).unwrap();
        }
    }
}
