//! Planar-Adaptive Routing — the paper authors' own earlier algorithm
//! (Chien & Kim, ISCA 1992; evaluated in reference [31]), included as
//! the third routing baseline: partially adaptive, deadlock-free by
//! *structure* (like DOR) but with some of CR's routing freedom.

use super::{rotate_by_rng, Candidate, RouteCtx, RoutingFunction};
use cr_sim::{PortId, VcId};

/// Planar-Adaptive Routing for 2-dimensional **meshes**.
///
/// Adaptivity is restricted to a plane at a time; in two dimensions
/// there is a single plane, split into two virtual subnetworks by the
/// sign of the remaining Y offset:
///
/// * the **increasing** network (`ΔY > 0`) owns virtual channel 0 on
///   every X channel and on the `+Y` channels;
/// * the **decreasing** network (`ΔY < 0`) owns virtual channel 1 on
///   every X channel and on the `-Y` channels;
/// * `ΔY = 0` messages ride the X channels of the increasing network
///   and never turn again.
///
/// Within a subnetwork a message moves its X coordinate monotonically
/// toward the destination (one fixed direction) and its Y coordinate
/// in one fixed direction, so the channel dependency graph is acyclic
/// per subnetwork — **deadlock-free with two virtual channels**, no
/// kills, no padding, while still offering two minimal ports at most
/// hops. (The general n-dimensional construction needs three VCs; two
/// suffice for the 2-D case simulated here.)
///
/// Only valid on wrap-free topologies (the mesh); wraparound channels
/// would close the per-row/per-column dependency chains back into
/// cycles.
///
/// # Examples
///
/// ```
/// use cr_router::routing::PlanarAdaptive;
/// use cr_router::RoutingFunction;
///
/// let par = PlanarAdaptive::new();
/// assert_eq!(par.num_vcs(), 2);
/// assert_eq!(par.name(), "planar-adaptive");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanarAdaptive {
    _private: (),
}

impl PlanarAdaptive {
    /// Creates the 2-D mesh planar-adaptive routing function.
    pub fn new() -> Self {
        PlanarAdaptive { _private: () }
    }
}

impl RoutingFunction for PlanarAdaptive {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        // Minimal ports, in ascending order: X ports (0 = +x, 1 = -x)
        // come before Y ports (2 = +y, 3 = -y) by the cube convention.
        let ports = ctx.live_minimal_ports();
        if ports.is_empty() {
            return;
        }
        // Which subnetwork? +y minimal => increasing; -y minimal =>
        // decreasing; no y offset => increasing (x only).
        let has_plus_y = ports.contains(&PortId::new(2));
        let has_minus_y = ports.contains(&PortId::new(3));
        debug_assert!(
            !(has_plus_y && has_minus_y),
            "a mesh offers one minimal Y direction"
        );
        let vc = if has_minus_y { VcId::new(1) } else { VcId::new(0) };
        let mut offers: Vec<PortId> = ports
            .into_iter()
            .filter(|p| p.index() < 2 || *p == PortId::new(2) || *p == PortId::new(3))
            .collect();
        rotate_by_rng(&mut offers, ctx.rng);
        for port in offers {
            out.push(Candidate {
                port,
                vc,
                escape: false,
            });
        }
    }

    fn num_vcs(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "planar-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{candidates_at, header};
    use super::*;
    use cr_topology::{KAryNCube, Topology};

    #[test]
    fn increasing_traffic_uses_vc0_and_both_minimal_ports() {
        let m = KAryNCube::mesh(8, 2);
        let src = m.node_at(&[1, 1]);
        let dst = m.node_at(&[4, 5]); // +x, +y
        let c = candidates_at(&PlanarAdaptive::new(), &m, src, &header(src, dst));
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|x| x.vc == VcId::new(0)));
        let ports: std::collections::HashSet<_> = c.iter().map(|x| x.port).collect();
        assert_eq!(
            ports,
            [PortId::new(0), PortId::new(2)].into_iter().collect()
        );
    }

    #[test]
    fn decreasing_traffic_uses_vc1() {
        let m = KAryNCube::mesh(8, 2);
        let src = m.node_at(&[4, 5]);
        let dst = m.node_at(&[1, 1]); // -x, -y
        let c = candidates_at(&PlanarAdaptive::new(), &m, src, &header(src, dst));
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|x| x.vc == VcId::new(1)));
    }

    #[test]
    fn pure_x_traffic_rides_the_increasing_network() {
        let m = KAryNCube::mesh(8, 2);
        let src = m.node_at(&[0, 3]);
        let dst = m.node_at(&[6, 3]);
        let c = candidates_at(&PlanarAdaptive::new(), &m, src, &header(src, dst));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].port, PortId::new(0));
        assert_eq!(c[0].vc, VcId::new(0));
    }

    #[test]
    fn pure_y_traffic_has_one_candidate() {
        let m = KAryNCube::mesh(8, 2);
        let src = m.node_at(&[3, 0]);
        let dst = m.node_at(&[3, 6]);
        let c = candidates_at(&PlanarAdaptive::new(), &m, src, &header(src, dst));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].port, PortId::new(2));
        assert_eq!(c[0].vc, VcId::new(0));
    }

    #[test]
    fn every_hop_reduces_distance() {
        // Walk PAR choices greedily; must reach the destination in
        // exactly `distance` hops from every pair.
        let m = KAryNCube::mesh(5, 2);
        let par = PlanarAdaptive::new();
        for s in 0..25u32 {
            for d in 0..25u32 {
                if s == d {
                    continue;
                }
                let (src, dst) = (cr_sim::NodeId::new(s), cr_sim::NodeId::new(d));
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let c = candidates_at(&par, &m, cur, &header(src, dst));
                    assert!(!c.is_empty(), "stuck {s}->{d} at {cur}");
                    cur = m.neighbor(cur, c[0].port).unwrap();
                    hops += 1;
                    assert!(hops <= m.distance(src, dst), "non-minimal hop");
                }
            }
        }
    }
}
