//! Flits — the flow-control units of wormhole routing.

use cr_sim::{Cycle, MessageId, NodeId};
use std::fmt;

/// Identity of one worm *instance* in flight: a message plus its
/// retransmission attempt number.
///
/// Compressionless Routing kills and retransmits messages; the flits of
/// a killed attempt may still be draining out of link pipelines when the
/// retry enters the network, so attempt numbers — not just message ids —
/// distinguish live flits from corpses.
///
/// # Examples
///
/// ```
/// use cr_router::WormId;
/// use cr_sim::MessageId;
///
/// let first = WormId::new(MessageId::new(7), 0);
/// let retry = first.next_attempt();
/// assert_eq!(retry.attempt, 1);
/// assert_eq!(first.message, retry.message);
/// assert_ne!(first, retry);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct WormId {
    /// The message this worm carries.
    pub message: MessageId,
    /// Retransmission attempt, starting at 0.
    pub attempt: u32,
}

impl WormId {
    /// Creates a worm identity.
    pub const fn new(message: MessageId, attempt: u32) -> Self {
        WormId { message, attempt }
    }

    /// The identity of the next retransmission attempt.
    pub const fn next_attempt(self) -> Self {
        WormId {
            message: self.message,
            attempt: self.attempt + 1,
        }
    }
}

impl fmt::Display for WormId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.message, self.attempt)
    }
}

/// The role of a flit within its worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries the routing information.
    Head,
    /// Payload flit.
    Body,
    /// PAD flit appended by Fault-tolerant CR so the worm spans its
    /// whole path (making the tail's acceptance an implicit
    /// end-to-end acknowledgement).
    Pad,
    /// Last flit; releases channels as it passes.
    Tail,
}

impl FlitKind {
    /// Returns `true` for the tail flit.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail)
    }

    /// Returns `true` for the header flit.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head)
    }
}

/// One flow-control unit.
///
/// Real flits carry a handful of payload bits; the simulator carries
/// bookkeeping instead. The `corrupted` flag is the substitute for a
/// per-flit checksum: a fault sets it, the next router *detects* it
/// (see the fault model's detection miss rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit {
    /// Which worm instance this flit belongs to.
    pub worm: WormId,
    /// Head/body/pad/tail role.
    pub kind: FlitKind,
    /// Source node of the message.
    pub src: NodeId,
    /// Destination node of the message.
    pub dst: NodeId,
    /// Position within the worm (header = 0).
    pub seq: u32,
    /// Per-(src,dst) message sequence number, for order checking.
    pub msg_seq: u64,
    /// Total worm length in flits, padding included (header carries
    /// the authoritative value; every flit repeats it for convenience).
    pub worm_len: u32,
    /// Payload length in flits (worm length minus padding).
    pub payload_len: u32,
    /// When the *message* was created (not this attempt).
    pub created: Cycle,
    /// Set once the worm takes a deadlock-escape virtual channel under
    /// Duato's protocol; escaped worms stay on the escape network.
    pub escaped: bool,
    /// Hops traversed so far (incremented on each link traversal);
    /// bounds misrouting.
    pub hops: u16,
    /// Set when a fault corrupts this flit in flight.
    pub corrupted: bool,
}

impl Flit {
    /// Builds the `seq`-th flit of a worm.
    ///
    /// The caller supplies the `kind`; `worm_len`/`payload_len` are the
    /// padded and unpadded lengths in flits.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        worm: WormId,
        kind: FlitKind,
        src: NodeId,
        dst: NodeId,
        seq: u32,
        msg_seq: u64,
        worm_len: u32,
        payload_len: u32,
        created: Cycle,
    ) -> Self {
        Flit {
            worm,
            kind,
            src,
            dst,
            seq,
            msg_seq,
            worm_len,
            payload_len,
            created,
            escaped: false,
            hops: 0,
            corrupted: false,
        }
    }

    /// Returns `true` for the tail flit.
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }

    /// Returns `true` for the header flit.
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {:?} {}->{}",
            self.worm, self.seq, self.worm_len, self.kind, self.src, self.dst
        )
    }
}

/// Generates the flits of one worm, in order.
///
/// `payload_len` flits of real message (head, bodies, and — when there
/// is no padding — the tail) plus `pad` PAD flits; the final flit is
/// always the tail. With padding, the tail is the last PAD slot,
/// modelling FCR's "transmission is complete only when the (padded)
/// tail enters the network".
///
/// # Panics
///
/// Panics if `payload_len < 2` (a worm needs a head and a tail).
///
/// # Examples
///
/// ```
/// use cr_router::flit::{worm_flits, WormId};
/// use cr_router::FlitKind;
/// use cr_sim::{Cycle, MessageId, NodeId};
///
/// let flits: Vec<_> = worm_flits(
///     WormId::new(MessageId::new(1), 0),
///     NodeId::new(0), NodeId::new(5),
///     4,      // payload flits
///     3,      // pad flits
///     7,      // per-pair sequence number
///     Cycle::ZERO,
/// ).collect();
/// assert_eq!(flits.len(), 7);
/// assert!(flits[0].is_head());
/// assert_eq!(flits[4].kind, FlitKind::Pad);
/// assert!(flits[6].is_tail());
/// ```
pub fn worm_flits(
    worm: WormId,
    src: NodeId,
    dst: NodeId,
    payload_len: u32,
    pad: u32,
    msg_seq: u64,
    created: Cycle,
) -> impl Iterator<Item = Flit> {
    assert!(payload_len >= 2, "a worm needs a head and a tail flit");
    let worm_len = payload_len + pad;
    (0..worm_len).map(move |seq| {
        let kind = if seq == 0 {
            FlitKind::Head
        } else if seq == worm_len - 1 {
            FlitKind::Tail
        } else if seq >= payload_len {
            FlitKind::Pad
        } else {
            FlitKind::Body
        };
        Flit::new(
            worm,
            kind,
            src,
            dst,
            seq,
            msg_seq,
            worm_len,
            payload_len,
            created,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worm() -> WormId {
        WormId::new(MessageId::new(3), 1)
    }

    #[test]
    fn worm_id_attempts() {
        let w = worm();
        assert_eq!(w.next_attempt().attempt, 2);
        assert_eq!(w.to_string(), "m3#1");
    }

    #[test]
    fn unpadded_worm_shape() {
        let flits: Vec<Flit> = worm_flits(
            worm(),
            NodeId::new(0),
            NodeId::new(1),
            4,
            0,
            0,
            Cycle::ZERO,
        )
        .collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
        assert!(flits.iter().all(|f| f.worm_len == 4 && f.payload_len == 4));
    }

    #[test]
    fn padded_worm_ends_with_tail() {
        let flits: Vec<Flit> = worm_flits(
            worm(),
            NodeId::new(0),
            NodeId::new(1),
            2,
            5,
            0,
            Cycle::ZERO,
        )
        .collect();
        assert_eq!(flits.len(), 7);
        assert_eq!(flits[0].kind, FlitKind::Head);
        // With payload 2 and padding, the payload "tail slot" becomes a
        // body-position; pads fill the middle; the final flit is Tail.
        assert_eq!(flits[6].kind, FlitKind::Tail);
        let pads = flits.iter().filter(|f| f.kind == FlitKind::Pad).count();
        assert_eq!(pads, 4); // seq 2..=5 are pads, seq 6 is the tail
    }

    #[test]
    fn minimum_worm_is_head_and_tail() {
        let flits: Vec<Flit> =
            worm_flits(worm(), NodeId::new(0), NodeId::new(1), 2, 0, 0, Cycle::ZERO).collect();
        assert_eq!(flits.len(), 2);
        assert!(flits[0].is_head());
        assert!(flits[1].is_tail());
    }

    #[test]
    #[should_panic]
    fn single_flit_worm_rejected() {
        let _ = worm_flits(worm(), NodeId::new(0), NodeId::new(1), 1, 0, 0, Cycle::ZERO)
            .collect::<Vec<_>>();
    }

    #[test]
    fn display_is_informative() {
        let f = Flit::new(
            worm(),
            FlitKind::Head,
            NodeId::new(2),
            NodeId::new(9),
            0,
            0,
            8,
            8,
            Cycle::ZERO,
        );
        let s = f.to_string();
        assert!(s.contains("m3#1") && s.contains("n2") && s.contains("n9"));
    }
}
