//! Wormhole router microarchitecture for the Compressionless Routing
//! reproduction.
//!
//! This crate models the router the paper assumes: an input-buffered
//! wormhole router with per-virtual-channel FIFO buffers, per-flit
//! flow control (credits standing in for the request/acknowledge
//! handshake — identical back-pressure semantics), a crossbar limited to
//! one flit per physical port per cycle, and pluggable routing
//! functions:
//!
//! * [`routing::DimensionOrder`] — the deterministic baseline, with
//!   dateline virtual-channel classes for deadlock freedom on tori
//!   (Dally & Seitz's torus routing chip scheme, paper reference \[28\]).
//! * [`routing::PlanarAdaptive`] — the authors' earlier
//!   partially-adaptive algorithm (2-D mesh variant), deadlock-free
//!   with two virtual channels.
//! * [`routing::MinimalAdaptive`] — fully adaptive minimal routing with
//!   **no** virtual-channel requirement: the routing function CR makes
//!   deadlock-free by recovery instead of avoidance. Optionally allows
//!   misrouting around dead links for fault tolerance.
//! * [`routing::DuatoProtocol`] — adaptive virtual channels backed by a
//!   dimension-order escape network; used to reproduce the paper's
//!   estimate of how often *potential deadlock situations* arise.
//! * [`routing::FullMeshOrdered`] — the HOTI'25 zero-virtual-channel
//!   ordered-detour scheme for diameter-1 (full-mesh) topologies, CR's
//!   modern competitor in the topology-zoo showdown.
//!
//! The [`Router`] itself is protocol-agnostic: kills, timeouts, padding
//! and retransmission live one layer up (the `cr-core` crate), which
//! drives routers through [`Router::accept`],
//! [`Router::route_and_allocate`], [`Router::traverse`] and
//! [`Router::flush_worm`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flit;
pub mod router;
pub mod routing;

pub use flit::{Flit, FlitKind, WormId};
pub use router::{
    LinkStallStreak, LinkStats, PortKind, Router, RouterConfig, RouterCounters, RouteTarget,
    Traversal,
};
pub use routing::{
    DimensionOrder, DuatoProtocol, FullMeshOrdered, MinimalAdaptive, PlanarAdaptive, RouteCtx,
    RoutingFunction,
};
