//! The input-buffered wormhole router.
//!
//! A [`Router`] owns, for one node:
//!
//! * **input units** — one per neighbor port plus one per injection
//!   channel; each neighbor input holds `num_vcs` virtual channels with
//!   `buffer_depth`-flit FIFOs, each injection input holds a single
//!   FIFO of `inject_depth` flits;
//! * **output state** — per (neighbor port, VC): which input VC holds
//!   the channel, and a credit counter mirroring the downstream buffer
//!   space; plus ejection ports with allocation but no credits
//!   (the receiver always sinks one flit per ejection port per cycle);
//! * the **routing/allocation** and **switch-traversal** pipeline
//!   stages, invoked once per cycle by the network.
//!
//! The router is deliberately protocol-agnostic: it neither times out
//! nor kills. The CR/FCR machinery drives it through
//! [`Router::flush_worm`] (teardown) and the counters it exposes.

use crate::flit::{Flit, WormId};
use crate::routing::{Candidate, RouteCtx, RoutingFunction};
use cr_sim::trace::StallCause;
use cr_sim::{Cycle, Fifo, NodeId, PortId, SimRng, VcId};
use cr_topology::Topology;

/// Where an allocated worm is headed from this router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteTarget {
    /// Out a neighbor port on a specific virtual channel.
    Link {
        /// Output port.
        port: PortId,
        /// Virtual channel on the output port.
        vc: VcId,
    },
    /// Into the node's receiver via an ejection port.
    Eject {
        /// Ejection-port index (`0..num_eject`).
        port: usize,
    },
}

/// What kind of input unit a port index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// A neighbor (topology) port.
    Node,
    /// An injection interface port.
    Inject,
}

/// Static configuration of one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Number of neighbor ports (the topology's port span at this
    /// node).
    pub num_node_ports: usize,
    /// Virtual channels per neighbor port.
    pub num_vcs: usize,
    /// Flit-buffer depth per neighbor input VC.
    pub buffer_depth: usize,
    /// Number of injection channels (paper Fig. 14(e)/(f): "multiple
    /// source channels").
    pub num_inject: usize,
    /// Flit-buffer depth of each injection channel.
    pub inject_depth: usize,
    /// Number of ejection channels ("sink channels").
    pub num_eject: usize,
    /// Flits the outgoing channel pipeline latches can hold when
    /// stalled (the channel depth `d_chan`). Wormhole handshake
    /// channels store one flit per pipeline stage when blocked, so
    /// output credits cover `buffer_depth + link_depth`.
    pub link_depth: usize,
}

impl RouterConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized resources.
    pub fn validate(&self) {
        assert!(self.num_vcs > 0, "need at least one virtual channel");
        assert!(self.buffer_depth > 0, "need at least one buffer slot");
        assert!(self.num_inject > 0, "need at least one injection channel");
        assert!(self.inject_depth > 0, "injection FIFO needs a slot");
        assert!(self.num_eject > 0, "need at least one ejection channel");
    }
}

/// Counters exposed for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Headers granted an output (or ejection) channel.
    pub headers_routed: u64,
    /// Flits moved through the crossbar.
    pub flits_forwarded: u64,
    /// Escape-channel allocations under Duato's protocol — the paper's
    /// "potential deadlock situation" events.
    pub escape_allocations: u64,
    /// Defensive count of flits dropped because their worm state was
    /// gone (should stay zero; teardown catches worms via the killed
    /// registry first).
    pub orphan_flits_dropped: u64,
    /// Flits flushed out of buffers by worm teardown.
    pub flits_flushed: u64,
    /// Headers that were offered no candidate (blocked by faults).
    pub unroutable_headers: u64,
}

/// Per-output-port utilization and stall-attribution counters.
///
/// Maintained by [`Router::traverse_into`] for every neighbor output
/// port, every cycle, whether or not tracing is on (plain counter
/// adds on the already-slow blocked path). A port is *stalled* on a
/// cycle when some allocated output VC had a flit ready to forward
/// but none crossed; the cause attribution follows
/// [`StallCause`]: a dead output link wins, then zero credits
/// (backpressure), then input-port contention or a frozen killed
/// owner (busy channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Flits forwarded out this port.
    pub flits_forwarded: u64,
    /// Stalled cycles attributed to crossbar-input contention or a
    /// frozen (killed) channel owner.
    pub stall_busy: u64,
    /// Stalled cycles on a port whose outgoing link is dead.
    pub stall_dead_link: u64,
    /// Stalled cycles attributed to exhausted downstream credits.
    pub stall_backpressure: u64,
}

impl LinkStats {
    /// Total stalled cycles of any cause.
    pub fn stall_total(&self) -> u64 {
        self.stall_busy + self.stall_dead_link + self.stall_backpressure
    }

    /// Accumulates `other` into `self` field by field. All fields are
    /// plain `u64` sums, so merging per-shard accumulators in any
    /// order yields the same totals the serial stepper counts — this
    /// is what lets the sharded stepper fold per-router stats into
    /// one `SimReport` deterministically.
    pub fn merge(&mut self, other: &LinkStats) {
        self.flits_forwarded += other.flits_forwarded;
        self.stall_busy += other.stall_busy;
        self.stall_dead_link += other.stall_dead_link;
        self.stall_backpressure += other.stall_backpressure;
    }

    /// The stalled-cycle count attributed to `cause`.
    pub fn stall_for(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::BusyChannel => self.stall_busy,
            StallCause::DeadLink => self.stall_dead_link,
            StallCause::Backpressure => self.stall_backpressure,
        }
    }
}

/// A finished run of consecutive stalled cycles on one output port,
/// with a constant attributed cause. Produced only while streak
/// recording is on (see [`Router::set_record_streaks`]); the network
/// converts these to `LinkStall` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStallStreak {
    /// The stalled output port.
    pub port: PortId,
    /// The attributed cause (constant across the streak).
    pub cause: StallCause,
    /// Cycle the streak started.
    pub since: Cycle,
    /// Streak length in cycles.
    pub cycles: u64,
}

/// One flit leaving the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traversal {
    /// The departing flit (header mutations — escape marking — already
    /// applied).
    pub flit: Flit,
    /// Input port it came from (for upstream credit return).
    pub from_port: PortId,
    /// Input virtual channel it came from.
    pub from_vc: VcId,
    /// Where it is going.
    pub target: RouteTarget,
}

/// Result of flushing one worm out of one input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushResult {
    /// Flits removed from the FIFO.
    pub flushed: usize,
    /// The downstream hop the worm had allocated, if any — the next
    /// stop for a teardown token.
    pub released: Option<RouteTarget>,
}

#[derive(Debug)]
struct InputVc {
    buf: Fifo<Flit>,
    route: Option<RouteTarget>,
    worm: Option<WormId>,
    /// Last cycle a flit was forwarded out of this VC (or arrived into
    /// an empty VC); drives path-wide stall detection.
    last_progress: Cycle,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            buf: Fifo::with_capacity(depth),
            route: None,
            worm: None,
            last_progress: Cycle::ZERO,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OutputVc {
    /// The input VC currently holding this output channel.
    allocated_to: Option<(PortId, VcId)>,
    /// Free buffer slots at the downstream input VC.
    credits: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct EjectPort {
    allocated_to: Option<(PortId, VcId)>,
}

/// The wormhole router for one node. See the module docs for the
/// microarchitecture.
#[derive(Debug)]
pub struct Router {
    node: NodeId,
    cfg: RouterConfig,
    /// inputs[port][vc]; injection ports have a single VC.
    inputs: Vec<Vec<InputVc>>,
    /// outputs[port][vc] for neighbor ports only.
    outputs: Vec<Vec<OutputVc>>,
    ejects: Vec<EjectPort>,
    dead_out: Vec<bool>,
    counters: RouterCounters,
    rng: SimRng,
    /// (port, vc) pairs whose orphan drop needs an upstream credit.
    orphan_credits: Vec<(PortId, VcId)>,
    /// The flattened `(port, vc)` input list, precomputed once: the
    /// allocation stage's round-robin walks it every cycle, and the
    /// input geometry never changes after construction.
    input_list: Vec<(usize, usize)>,
    /// Routing-candidate scratch, reused across headers and cycles.
    candidates: Vec<Candidate>,
    /// Per-cycle "input port already supplied a flit" flags, reused
    /// across cycles.
    input_used: Vec<bool>,
    /// Per-neighbor-output-port utilization/stall counters.
    link_stats: Vec<LinkStats>,
    /// Open stall streak per neighbor output port: `(cause, start,
    /// length)`.
    stall_open: Vec<Option<(StallCause, Cycle, u64)>>,
    /// Finished streaks awaiting [`Router::drain_streaks_into`]; only
    /// populated while `record_streaks` is on.
    finished_streaks: Vec<LinkStallStreak>,
    /// Whether finished stall streaks are kept for the trace layer.
    record_streaks: bool,
    /// Flits buffered across all input VCs, maintained incrementally
    /// so [`Router::total_occupancy`] is O(1) — the active-set
    /// scheduler and the quiescence check probe it every cycle.
    occupancy: usize,
    /// How many entries of `stall_open` are `Some` — O(1) answer to
    /// [`Router::has_open_streaks`].
    open_streaks: usize,
}

impl Router {
    /// Builds the router for `node` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RouterConfig::validate`]).
    pub fn new(node: NodeId, cfg: RouterConfig, rng: SimRng) -> Self {
        cfg.validate();
        let mut inputs = Vec::with_capacity(cfg.num_node_ports + cfg.num_inject);
        for _ in 0..cfg.num_node_ports {
            inputs.push(
                (0..cfg.num_vcs)
                    .map(|_| InputVc::new(cfg.buffer_depth))
                    .collect(),
            );
        }
        for _ in 0..cfg.num_inject {
            inputs.push(vec![InputVc::new(cfg.inject_depth)]);
        }
        let outputs = (0..cfg.num_node_ports)
            .map(|_| {
                (0..cfg.num_vcs)
                    .map(|_| OutputVc {
                        allocated_to: None,
                        credits: cfg.buffer_depth + cfg.link_depth,
                    })
                    .collect()
            })
            .collect();
        let input_list: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(p, vcs)| (0..vcs.len()).map(move |v| (p, v)))
            .collect();
        let num_inputs = inputs.len();
        Router {
            node,
            cfg,
            inputs,
            outputs,
            ejects: vec![EjectPort::default(); cfg.num_eject],
            dead_out: vec![false; cfg.num_node_ports],
            counters: RouterCounters::default(),
            rng,
            orphan_credits: Vec::new(),
            input_list,
            candidates: Vec::new(),
            input_used: vec![false; num_inputs],
            link_stats: vec![LinkStats::default(); cfg.num_node_ports],
            stall_open: vec![None; cfg.num_node_ports],
            finished_streaks: Vec::new(),
            record_streaks: false,
            occupancy: 0,
            open_streaks: 0,
        }
    }

    /// The node this router serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The experiment counters.
    pub fn counters(&self) -> &RouterCounters {
        &self.counters
    }

    /// The input-port index of injection channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inject`.
    pub fn inject_port(&self, i: usize) -> PortId {
        assert!(i < self.cfg.num_inject, "injection channel out of range");
        PortId::from_index(self.cfg.num_node_ports + i)
    }

    /// What kind of input unit `port` is.
    pub fn port_kind(&self, port: PortId) -> PortKind {
        if port.index() < self.cfg.num_node_ports {
            PortKind::Node
        } else {
            PortKind::Inject
        }
    }

    /// Marks the outgoing link on `port` as dead; routing functions
    /// will no longer be offered it.
    pub fn set_dead_out(&mut self, port: PortId) {
        self.dead_out[port.index()] = true;
    }

    /// Clears the dead marking on `port`'s outgoing link — the link
    /// was revived and routing functions may use it again. Worms that
    /// were stalled waiting for an alternative resume on their next
    /// allocation attempt.
    pub fn clear_dead_out(&mut self, port: PortId) {
        self.dead_out[port.index()] = false;
    }

    /// Returns `true` if the outgoing link on `port` is marked dead.
    pub fn is_dead_out(&self, port: PortId) -> bool {
        self.dead_out
            .get(port.index())
            .copied()
            .unwrap_or(false)
    }

    /// Accepts a flit arriving on a neighbor input channel.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — that would mean the upstream
    /// router violated credit flow control, which is a simulator bug,
    /// never a legal network state.
    pub fn accept(&mut self, now: Cycle, port: PortId, vc: VcId, flit: Flit) {
        let ivc = &mut self.inputs[port.index()][vc.index()];
        if ivc.buf.is_empty() {
            ivc.last_progress = now;
        }
        ivc.buf
            .push(flit)
            // cr-lint: allow(panic-discipline, reason = "documented invariant: a full buffer here means upstream violated credit flow control, which is a simulator bug and must abort loudly, never a recoverable network state")
            .unwrap_or_else(|_| panic!("credit violation at {} {port} {vc}", self.node));
        self.occupancy += 1;
    }

    /// Free space in injection channel `i`'s FIFO.
    pub fn injection_free(&self, i: usize) -> usize {
        let port = self.inject_port(i);
        self.inputs[port.index()][0].buf.free()
    }

    /// Pushes a flit into injection channel `i`; returns `false`
    /// (leaving the flit with the caller) when the FIFO is full —
    /// which is exactly the back-pressure the CR injector watches.
    pub fn try_inject(&mut self, now: Cycle, i: usize, flit: Flit) -> bool {
        let port = self.inject_port(i);
        let ivc = &mut self.inputs[port.index()][0];
        if ivc.buf.is_empty() {
            ivc.last_progress = now;
        }
        let ok = ivc.buf.push(flit).is_ok();
        if ok {
            self.occupancy += 1;
        }
        ok
    }

    /// Routing and virtual-channel allocation stage: every input VC
    /// whose head-of-line flit is an unrouted header tries to acquire
    /// an output VC (or an ejection port, at the destination).
    ///
    /// Iteration order rotates with `now` for fairness.
    ///
    /// Returns the number of orphan flits dropped this call (the
    /// network subtracts them from its in-flight flit counter;
    /// inject-port orphans produce no `orphan_credits` entry, so the
    /// credit list cannot stand in for this count).
    pub fn route_and_allocate(
        &mut self,
        now: Cycle,
        routing: &dyn RoutingFunction,
        topo: &dyn Topology,
        is_killed: &dyn Fn(WormId) -> bool,
    ) -> usize {
        let n = self.input_list.len();
        if n == 0 {
            return 0;
        }
        let mut orphans_dropped = 0;
        let offset = (now.as_u64() as usize) % n;
        // The candidate scratch has to leave `self` for the loop body
        // to borrow the router mutably alongside it.
        let mut candidates = std::mem::take(&mut self.candidates);
        for k in 0..n {
            let (p, v) = self.input_list[(k + offset) % n];
            if self.inputs[p][v].route.is_some() {
                continue;
            }
            let Some(front) = self.inputs[p][v].buf.front().copied() else {
                continue;
            };
            if is_killed(front.worm) {
                // Teardown in progress: the kill token will flush this.
                continue;
            }
            if !front.is_head() {
                // A non-head flit with no route: its worm was torn down
                // while this flit was in flight and it slipped past the
                // killed registry. Drop defensively.
                let Some(f) = self.inputs[p][v].buf.pop() else {
                    continue; // unreachable: front() just succeeded
                };
                debug_assert!(!f.is_head());
                self.occupancy -= 1;
                orphans_dropped += 1;
                self.counters.orphan_flits_dropped += 1;
                if p < self.cfg.num_node_ports {
                    self.orphan_credits
                        .push((PortId::from_index(p), VcId::from_index(v)));
                }
                continue;
            }
            // Ejection?
            if front.dst == self.node {
                if let Some(e) = self
                    .ejects
                    .iter()
                    .position(|ej| ej.allocated_to.is_none())
                {
                    self.ejects[e].allocated_to =
                        Some((PortId::from_index(p), VcId::from_index(v)));
                    let ivc = &mut self.inputs[p][v];
                    ivc.route = Some(RouteTarget::Eject { port: e });
                    ivc.worm = Some(front.worm);
                    self.counters.headers_routed += 1;
                }
                continue;
            }
            // Network routing.
            candidates.clear();
            let mut ctx = RouteCtx {
                topo,
                node: self.node,
                flit: &front,
                dead_out: &self.dead_out,
                rng: &mut self.rng,
            };
            routing.candidates(&mut ctx, &mut candidates);
            if candidates.is_empty() {
                self.counters.unroutable_headers += 1;
                continue;
            }
            let grant = candidates.iter().copied().find(|c: &Candidate| {
                self.outputs[c.port.index()][c.vc.index()]
                    .allocated_to
                    .is_none()
            });
            if let Some(c) = grant {
                self.outputs[c.port.index()][c.vc.index()].allocated_to =
                    Some((PortId::from_index(p), VcId::from_index(v)));
                let ivc = &mut self.inputs[p][v];
                ivc.route = Some(RouteTarget::Link {
                    port: c.port,
                    vc: c.vc,
                });
                ivc.worm = Some(front.worm);
                if c.escape {
                    self.counters.escape_allocations += 1;
                    if let Some(front) = ivc.buf.front_mut() {
                        front.escaped = true;
                    }
                }
                self.counters.headers_routed += 1;
            }
        }
        self.candidates = candidates;
        orphans_dropped
    }

    /// Switch-traversal stage: each output port and each ejection port
    /// forwards at most one flit; each input port supplies at most one.
    ///
    /// `is_killed` freezes worms undergoing teardown: their flits stop
    /// moving (and in particular their tails stop releasing channels),
    /// so that kill tokens are the only thing that releases a killed
    /// worm's resources — otherwise a draining worm's tail races the
    /// token and hands channels to new worms before the teardown has
    /// cleaned the downstream endpoint.
    ///
    /// Returns the departing flits; the caller moves them onto links or
    /// into receivers and returns credits upstream.
    pub fn traverse(&mut self, now: Cycle, is_killed: &dyn Fn(WormId) -> bool) -> Vec<Traversal> {
        let mut out = Vec::new();
        self.traverse_into(now, is_killed, &mut out);
        out
    }

    /// [`Router::traverse`] into a caller-owned buffer (appended, not
    /// cleared), so the per-cycle network loop can reuse one allocation
    /// across all routers and cycles.
    pub fn traverse_into(
        &mut self,
        now: Cycle,
        is_killed: &dyn Fn(WormId) -> bool,
        out: &mut Vec<Traversal>,
    ) {
        let input_used = &mut self.input_used;
        input_used.fill(false);

        // Neighbor outputs: one flit per physical port per cycle,
        // round-robin over that port's VCs. Alongside the forwarding
        // decision, attribute the port's cycle for the link-stats
        // layer: `sent` when a flit crossed, else the first
        // ready-but-blocked VC's stall cause (if any).
        for port in 0..self.cfg.num_node_ports {
            let nvcs = self.cfg.num_vcs;
            let start = (now.as_u64() as usize) % nvcs;
            let mut sent = false;
            let mut blocked: Option<StallCause> = None;
            for k in 0..nvcs {
                let vc = (start + k) % nvcs;
                let Some((ip, iv)) = self.outputs[port][vc].allocated_to else {
                    continue;
                };
                if input_used[ip.index()] || self.outputs[port][vc].credits == 0 {
                    if blocked.is_none() {
                        let ivc = &self.inputs[ip.index()][iv.index()];
                        let ready = ivc
                            .worm
                            .is_some_and(|w| ivc.buf.front().is_some_and(|f| f.worm == w));
                        if ready {
                            blocked = Some(if self.outputs[port][vc].credits == 0 {
                                StallCause::Backpressure
                            } else {
                                StallCause::BusyChannel
                            });
                        }
                    }
                    continue;
                }
                let ivc = &mut self.inputs[ip.index()][iv.index()];
                let Some(owner) = ivc.worm else {
                    continue;
                };
                // Frozen: the owner is being torn down; only its kill
                // token may release this channel. (The front flit may
                // even belong to a live successor worm whose tailward
                // predecessor flits were swallowed by the killed
                // registry — it waits here until the token clears the
                // stale route.)
                if is_killed(owner) {
                    if blocked.is_none() && !ivc.buf.is_empty() {
                        blocked = Some(StallCause::BusyChannel);
                    }
                    continue;
                }
                let Some(front) = ivc.buf.front() else {
                    continue;
                };
                debug_assert_eq!(
                    front.worm, owner,
                    "output owner and buffered worm diverged at {}",
                    self.node
                );
                if front.worm != owner {
                    continue; // defensive in release builds
                }
                let Some(flit) = ivc.buf.pop() else {
                    continue; // unreachable: front() just succeeded
                };
                self.occupancy -= 1;
                ivc.last_progress = now;
                input_used[ip.index()] = true;
                self.outputs[port][vc].credits -= 1;
                if flit.is_tail() {
                    ivc.route = None;
                    ivc.worm = None;
                    self.outputs[port][vc].allocated_to = None;
                }
                self.counters.flits_forwarded += 1;
                out.push(Traversal {
                    flit,
                    from_port: ip,
                    from_vc: iv,
                    target: RouteTarget::Link {
                        port: PortId::from_index(port),
                        vc: VcId::from_index(vc),
                    },
                });
                sent = true;
                break; // this physical port is used this cycle
            }
            Self::note_link_cycle(
                &mut self.link_stats[port],
                &mut self.stall_open[port],
                &mut self.open_streaks,
                &mut self.finished_streaks,
                self.record_streaks,
                self.dead_out[port],
                PortId::from_index(port),
                now,
                sent,
                blocked,
            );
        }

        // Ejection ports: one flit each per cycle.
        for e in 0..self.ejects.len() {
            let Some((ip, iv)) = self.ejects[e].allocated_to else {
                continue;
            };
            if input_used[ip.index()] {
                continue;
            }
            let ivc = &mut self.inputs[ip.index()][iv.index()];
            let Some(owner) = ivc.worm else {
                continue;
            };
            if is_killed(owner) {
                continue;
            }
            let Some(front) = ivc.buf.front() else {
                continue;
            };
            debug_assert_eq!(
                front.worm, owner,
                "eject owner and buffered worm diverged at {}",
                self.node
            );
            if front.worm != owner {
                continue; // defensive in release builds
            }
            let Some(flit) = ivc.buf.pop() else {
                continue; // unreachable: front() just succeeded
            };
            self.occupancy -= 1;
            ivc.last_progress = now;
            input_used[ip.index()] = true;
            if flit.is_tail() {
                ivc.route = None;
                ivc.worm = None;
                self.ejects[e].allocated_to = None;
            }
            self.counters.flits_forwarded += 1;
            out.push(Traversal {
                flit,
                from_port: ip,
                from_vc: iv,
                target: RouteTarget::Eject { port: e },
            });
        }
    }

    /// Folds one cycle's outcome for a neighbor output port into its
    /// [`LinkStats`] and streak state. Associated function (not a
    /// method) so `traverse_into` can call it under its outstanding
    /// disjoint field borrows.
    #[allow(clippy::too_many_arguments)]
    fn note_link_cycle(
        stats: &mut LinkStats,
        open: &mut Option<(StallCause, Cycle, u64)>,
        open_count: &mut usize,
        finished: &mut Vec<LinkStallStreak>,
        record: bool,
        dead: bool,
        port: PortId,
        now: Cycle,
        sent: bool,
        blocked: Option<StallCause>,
    ) {
        if sent {
            stats.flits_forwarded += 1;
        }
        // A dead output link dominates any other attribution: the flit
        // is never leaving this way, whatever the credits say.
        let cause = match blocked {
            Some(_) if dead => Some(StallCause::DeadLink),
            c => c,
        };
        let Some(cause) = cause else {
            // Forwarded or idle: any open streak is finished.
            if let Some((c, since, cycles)) = open.take() {
                *open_count -= 1;
                if record {
                    finished.push(LinkStallStreak {
                        port,
                        cause: c,
                        since,
                        cycles,
                    });
                }
            }
            return;
        };
        match cause {
            StallCause::BusyChannel => stats.stall_busy += 1,
            StallCause::DeadLink => stats.stall_dead_link += 1,
            StallCause::Backpressure => stats.stall_backpressure += 1,
        }
        match open {
            Some((c, _, cycles)) if *c == cause => *cycles += 1,
            _ => {
                if let Some((c, since, cycles)) = open.take() {
                    *open_count -= 1;
                    if record {
                        finished.push(LinkStallStreak {
                            port,
                            cause: c,
                            since,
                            cycles,
                        });
                    }
                }
                *open = Some((cause, now, 1));
                *open_count += 1;
            }
        }
    }

    /// Per-neighbor-output-port utilization/stall counters, indexed by
    /// port. Always maintained (tracing on or off).
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.link_stats
    }

    /// Turns finished-stall-streak recording on or off. Off (the
    /// default), streaks are tracked but discarded as they finish, so
    /// nothing accumulates; on, the network drains them into
    /// `LinkStall` trace events via [`Router::drain_streaks_into`].
    pub fn set_record_streaks(&mut self, record: bool) {
        self.record_streaks = record;
        if !record {
            self.finished_streaks.clear();
        }
    }

    /// Moves all finished stall streaks into `out` (appended, not
    /// cleared), oldest first. Streaks still open when the run ends
    /// are not reported as streaks — their cycles are already in
    /// [`Router::link_stats`].
    pub fn drain_streaks_into(&mut self, out: &mut Vec<LinkStallStreak>) {
        out.append(&mut self.finished_streaks);
    }

    /// Adds one credit to output `(port, vc)` — the downstream input
    /// VC freed a buffer slot.
    ///
    /// # Panics
    ///
    /// Panics if credits would exceed the downstream buffer depth
    /// (double-return bug).
    pub fn add_credit(&mut self, port: PortId, vc: VcId) {
        let o = &mut self.outputs[port.index()][vc.index()];
        assert!(
            o.credits < self.cfg.buffer_depth + self.cfg.link_depth,
            "credit overflow on {} {port} {vc}",
            self.node
        );
        o.credits += 1;
    }

    /// Removes every flit of `worm` from input VC `(port, vc)` and
    /// releases the worm's allocated output, if it owned one.
    ///
    /// This is the teardown primitive used by CR kill tokens: the
    /// caller (the network) walks the returned [`RouteTarget`] to the
    /// next router and repeats, and returns `flushed` credits to the
    /// upstream router.
    pub fn flush_worm(&mut self, port: PortId, vc: VcId, worm: WormId) -> FlushResult {
        let ivc = &mut self.inputs[port.index()][vc.index()];
        let flushed = ivc.buf.retain(|f| f.worm != worm);
        self.occupancy -= flushed;
        self.counters.flits_flushed += flushed as u64;
        let mut released = None;
        if ivc.worm == Some(worm) {
            released = ivc.route.take();
            ivc.worm = None;
            match released {
                Some(RouteTarget::Link { port: op, vc: ov }) => {
                    self.outputs[op.index()][ov.index()].allocated_to = None;
                }
                Some(RouteTarget::Eject { port: ep }) => {
                    self.ejects[ep].allocated_to = None;
                }
                None => {}
            }
        }
        FlushResult { flushed, released }
    }

    /// The route target currently allocated to input VC `(port, vc)`,
    /// if any.
    pub fn route_of(&self, port: PortId, vc: VcId) -> Option<RouteTarget> {
        self.inputs[port.index()][vc.index()].route
    }

    /// The worm currently owning input VC `(port, vc)`, if any.
    pub fn worm_of(&self, port: PortId, vc: VcId) -> Option<WormId> {
        self.inputs[port.index()][vc.index()].worm
    }

    /// Which input VC holds output `(port, vc)`, if any.
    pub fn output_owner(&self, port: PortId, vc: VcId) -> Option<(PortId, VcId)> {
        self.outputs[port.index()][vc.index()].allocated_to
    }

    /// Current credit count of output `(port, vc)`.
    pub fn credits(&self, port: PortId, vc: VcId) -> usize {
        self.outputs[port.index()][vc.index()].credits
    }

    /// Returns `true` if input VC `(port, vc)` has no free buffer
    /// slot (the arriving flit must wait in the channel latches).
    pub fn vc_is_full(&self, port: PortId, vc: VcId) -> bool {
        self.inputs[port.index()][vc.index()].buf.is_full()
    }

    /// Number of flits buffered in input VC `(port, vc)`.
    pub fn occupancy(&self, port: PortId, vc: VcId) -> usize {
        self.inputs[port.index()][vc.index()].buf.len()
    }

    /// The head-of-line flit of input VC `(port, vc)`, if any.
    pub fn front_flit(&self, port: PortId, vc: VcId) -> Option<&Flit> {
        self.inputs[port.index()][vc.index()].buf.front()
    }

    /// The flit at queue position `i` (0 = front) of input VC
    /// `(port, vc)`, or `None` past the back. The model checker walks
    /// whole buffers with this when encoding a canonical state.
    pub fn flit_at(&self, port: PortId, vc: VcId, i: usize) -> Option<&Flit> {
        self.inputs[port.index()][vc.index()].buf.get(i)
    }

    /// Which input VC holds ejection port `e`, if any.
    pub fn eject_owner(&self, e: usize) -> Option<(PortId, VcId)> {
        self.ejects[e].allocated_to
    }

    /// Position of this router's adaptive tie-break RNG, in 32-bit
    /// keystream words consumed. Part of the checker's canonical state:
    /// the stream itself is fixed by the seed, so the position pins all
    /// future draws.
    pub fn rng_words_consumed(&self) -> u64 {
        self.rng.words_consumed()
    }

    /// Total flits buffered anywhere in this router. O(1): maintained
    /// incrementally at every push/pop/flush site.
    pub fn total_occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.inputs
                .iter()
                .flatten()
                .map(|ivc| ivc.buf.len())
                .sum::<usize>(),
            "incremental occupancy diverged at {}",
            self.node
        );
        self.occupancy
    }

    /// `true` while any neighbor output port has an open (unfinished)
    /// stall streak. The active-set scheduler must keep stepping such
    /// a router — only [`Router::traverse_into`] can close the streak,
    /// and closing it late would reorder `LinkStall` trace events.
    pub fn has_open_streaks(&self) -> bool {
        debug_assert_eq!(
            self.open_streaks,
            self.stall_open.iter().filter(|s| s.is_some()).count(),
            "incremental open-streak count diverged at {}",
            self.node
        );
        self.open_streaks > 0
    }

    /// Input VCs that hold a worm but have not forwarded a flit for at
    /// least `threshold` cycles — the path-wide stall detector of the
    /// alternative kill scheme the paper compares against.
    pub fn stalled_worms(&self, now: Cycle, threshold: u64) -> Vec<(PortId, VcId, WormId)> {
        let mut out = Vec::new();
        self.stalled_worms_into(now, threshold, &mut out);
        out
    }

    /// [`Router::stalled_worms`] into a caller-owned buffer (appended,
    /// not cleared) — the path-wide detector polls every router every
    /// cycle and reuses one list.
    pub fn stalled_worms_into(
        &self,
        now: Cycle,
        threshold: u64,
        out: &mut Vec<(PortId, VcId, WormId)>,
    ) {
        for (p, vcs) in self.inputs.iter().enumerate() {
            for (v, ivc) in vcs.iter().enumerate() {
                if ivc.buf.is_empty() {
                    continue;
                }
                let worm = match ivc.worm.or_else(|| ivc.buf.front().map(|f| f.worm)) {
                    Some(w) => w,
                    None => continue,
                };
                if now.saturating_since(ivc.last_progress) >= threshold {
                    out.push((PortId::from_index(p), VcId::from_index(v), worm));
                }
            }
        }
    }

    /// Drains the pending upstream-credit notices for orphan drops
    /// (see [`RouterCounters::orphan_flits_dropped`]).
    pub fn take_orphan_credits(&mut self) -> Vec<(PortId, VcId)> {
        std::mem::take(&mut self.orphan_credits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::worm_flits;
    use crate::routing::MinimalAdaptive;
    use cr_sim::MessageId;
    use cr_topology::KAryNCube;

    fn cfg() -> RouterConfig {
        RouterConfig {
            num_node_ports: 2, // 1-D torus
            num_vcs: 1,
            buffer_depth: 2,
            num_inject: 1,
            inject_depth: 2,
            num_eject: 1,
            link_depth: 0,
        }
    }

    fn router(node: u32) -> Router {
        Router::new(NodeId::new(node), cfg(), SimRng::from_seed(1))
    }

    fn worm(src: u32, dst: u32, len: u32, msg: u64) -> Vec<Flit> {
        worm_flits(
            WormId::new(MessageId::new(msg), 0),
            NodeId::new(src),
            NodeId::new(dst),
            len,
            0,
            0,
            Cycle::ZERO,
        )
        .collect()
    }

    #[test]
    fn header_gets_routed_and_flits_flow() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 1, 3, 1); // passing through node 0 toward 1
        // Header arrives on input port 1 (-x input faces node 3... the
        // exact port does not matter to the router).
        let now = Cycle::ZERO;
        r.accept(now, PortId::new(1), VcId::new(0), flits[0]);
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_some());
        let t = r.traverse(now, &|_| false);
        assert_eq!(t.len(), 1);
        assert!(t[0].flit.is_head());
        match t[0].target {
            RouteTarget::Link { port, .. } => assert_eq!(port, PortId::new(0)),
            _ => panic!("expected link target"),
        }
        // Body and tail follow without re-routing.
        r.accept(now, PortId::new(1), VcId::new(0), flits[1]);
        r.accept(now, PortId::new(1), VcId::new(0), flits[2]);
        let t = r.traverse(now + 1, &|_| false);
        assert_eq!(t.len(), 1);
        assert!(!t[0].flit.is_head());
        // Two credits are spent; the downstream router must free a slot
        // before the tail can move.
        r.add_credit(PortId::new(0), VcId::new(0));
        let t = r.traverse(now + 2, &|_| false);
        assert_eq!(t.len(), 1);
        assert!(t[0].flit.is_tail());
        // Tail released the channel.
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_none());
        assert!(r.output_owner(PortId::new(0), VcId::new(0)).is_none());
    }

    #[test]
    fn ejection_at_destination() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(2);
        let flits = worm(0, 2, 2, 1);
        let now = Cycle::ZERO;
        r.accept(now, PortId::new(1), VcId::new(0), flits[0]);
        r.accept(now, PortId::new(1), VcId::new(0), flits[1]);
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        assert_eq!(
            r.route_of(PortId::new(1), VcId::new(0)),
            Some(RouteTarget::Eject { port: 0 })
        );
        let t = r.traverse(now, &|_| false);
        assert_eq!(t.len(), 1);
        assert!(matches!(t[0].target, RouteTarget::Eject { port: 0 }));
        let t = r.traverse(now + 1, &|_| false);
        assert!(t[0].flit.is_tail());
        // Eject port released.
        r.accept(now + 2, PortId::new(0), VcId::new(0), worm(1, 2, 2, 2)[0]);
        r.route_and_allocate(now + 2, &rf, &topo, &|_| false);
        assert!(r.route_of(PortId::new(0), VcId::new(0)).is_some());
    }

    #[test]
    fn credits_block_traversal() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        // Destination 1 is one hop away: port 0 is the unique minimal
        // direction, so the credit observations below are well-defined.
        let flits = worm(3, 1, 6, 1);
        let now = Cycle::ZERO;
        for f in &flits[..2] {
            r.accept(now, PortId::new(1), VcId::new(0), *f);
        }
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        // Drain the 2 credits.
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        assert_eq!(r.traverse(now + 1, &|_| false).len(), 1);
        assert_eq!(r.credits(PortId::new(0), VcId::new(0)), 0);
        // More flits buffered but no credits: stall.
        r.accept(now + 2, PortId::new(1), VcId::new(0), flits[2]);
        assert!(r.traverse(now + 2, &|_| false).is_empty());
        // Credit return unblocks.
        r.add_credit(PortId::new(0), VcId::new(0));
        assert_eq!(r.traverse(now + 3, &|_| false).len(), 1);
    }

    #[test]
    fn one_flit_per_output_port_per_cycle() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(2);
        let mut r = Router::new(
            NodeId::new(0),
            RouterConfig {
                num_vcs: 2,
                ..cfg()
            },
            SimRng::from_seed(2),
        );
        // Two worms on different VCs, both heading out port 0.
        let w1 = worm(3, 1, 2, 1);
        let w2 = worm(3, 1, 2, 2);
        let now = Cycle::ZERO;
        r.accept(now, PortId::new(1), VcId::new(0), w1[0]);
        r.accept(now, PortId::new(1), VcId::new(1), w2[0]);
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        // Both allocated (different output VCs of port 0)...
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_some());
        assert!(r.route_of(PortId::new(1), VcId::new(1)).is_some());
        // ...but only one flit crosses per cycle (also input-port
        // bandwidth: both share input port 1).
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        assert_eq!(r.traverse(now + 1, &|_| false).len(), 1);
    }

    #[test]
    fn injection_backpressure_visible() {
        let mut r = router(0);
        let flits = worm(0, 2, 6, 1);
        let now = Cycle::ZERO;
        assert_eq!(r.injection_free(0), 2);
        assert!(r.try_inject(now, 0, flits[0]));
        assert!(r.try_inject(now, 0, flits[1]));
        assert!(!r.try_inject(now, 0, flits[2]), "FIFO full: back-pressure");
        assert_eq!(r.injection_free(0), 0);
    }

    #[test]
    fn flush_worm_releases_everything() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 2, 6, 1);
        let now = Cycle::ZERO;
        r.accept(now, PortId::new(1), VcId::new(0), flits[0]);
        r.accept(now, PortId::new(1), VcId::new(0), flits[1]);
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        let w = flits[0].worm;
        let res = r.flush_worm(PortId::new(1), VcId::new(0), w);
        assert_eq!(res.flushed, 2);
        assert!(matches!(res.released, Some(RouteTarget::Link { .. })));
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_none());
        assert!(r.output_owner(PortId::new(0), VcId::new(0)).is_none());
        assert_eq!(r.occupancy(PortId::new(1), VcId::new(0)), 0);
        // Flushing again is a no-op.
        let res2 = r.flush_worm(PortId::new(1), VcId::new(0), w);
        assert_eq!(res2.flushed, 0);
        assert_eq!(res2.released, None);
    }

    #[test]
    fn flush_preserves_other_worms_flits() {
        let mut r = router(0);
        let w1 = worm(3, 2, 2, 1);
        let w2 = worm(3, 1, 2, 2);
        let now = Cycle::ZERO;
        // Tail of w1 then header of w2 share the FIFO.
        r.accept(now, PortId::new(1), VcId::new(0), w1[1]);
        r.accept(now, PortId::new(1), VcId::new(0), w2[0]);
        let res = r.flush_worm(PortId::new(1), VcId::new(0), w2[0].worm);
        assert_eq!(res.flushed, 1);
        assert_eq!(r.occupancy(PortId::new(1), VcId::new(0)), 1);
        assert_eq!(
            r.front_flit(PortId::new(1), VcId::new(0)).unwrap().worm,
            w1[0].worm
        );
    }

    #[test]
    fn stalled_worm_detection() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 2, 6, 1);
        r.accept(Cycle::ZERO, PortId::new(1), VcId::new(0), flits[0]);
        r.route_and_allocate(Cycle::ZERO, &rf, &topo, &|_| false);
        // Drain credits so the worm jams.
        let _ = r.traverse(Cycle::ZERO, &|_| false);
        r.accept(Cycle::new(1), PortId::new(1), VcId::new(0), flits[1]);
        let _ = r.traverse(Cycle::new(1), &|_| false);
        r.accept(Cycle::new(2), PortId::new(1), VcId::new(0), flits[2]);
        assert!(r.traverse(Cycle::new(2), &|_| false).is_empty(), "out of credits");
        assert!(r.stalled_worms(Cycle::new(10), 20).is_empty());
        let stalled = r.stalled_worms(Cycle::new(40), 20);
        assert_eq!(stalled.len(), 1);
        assert_eq!(stalled[0].2, flits[0].worm);
    }

    #[test]
    fn dead_port_blocks_routing() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        r.set_dead_out(PortId::new(0));
        let flits = worm(3, 1, 2, 1); // must leave via +x = port 0
        r.accept(Cycle::ZERO, PortId::new(1), VcId::new(0), flits[0]);
        r.route_and_allocate(Cycle::ZERO, &rf, &topo, &|_| false);
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_none());
        assert_eq!(r.counters().unroutable_headers, 1);
    }

    #[test]
    #[should_panic]
    fn credit_overflow_is_a_bug() {
        let mut r = router(0);
        r.add_credit(PortId::new(0), VcId::new(0)); // already at depth
    }

    #[test]
    fn stall_attribution_backpressure() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 1, 6, 1);
        let now = Cycle::ZERO;
        for f in &flits[..2] {
            r.accept(now, PortId::new(1), VcId::new(0), *f);
        }
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        // Two forwards drain the credits; later cycles stall on
        // backpressure with a flit still buffered.
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        assert_eq!(r.traverse(now + 1, &|_| false).len(), 1);
        r.accept(now + 2, PortId::new(1), VcId::new(0), flits[2]);
        assert!(r.traverse(now + 2, &|_| false).is_empty());
        assert!(r.traverse(now + 3, &|_| false).is_empty());
        let s = r.link_stats()[0];
        assert_eq!(s.flits_forwarded, 2);
        assert_eq!(s.stall_backpressure, 2);
        assert_eq!(s.stall_busy, 0);
        assert_eq!(s.stall_dead_link, 0);
        assert_eq!(s.stall_total(), 2);
    }

    #[test]
    fn stall_attribution_busy_channel() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(2);
        let mut r = Router::new(
            NodeId::new(0),
            RouterConfig {
                num_vcs: 2,
                ..cfg()
            },
            SimRng::from_seed(2),
        );
        // Two worms sharing input port 1 but bound for different
        // output ports: whichever port loses the shared input that
        // cycle records a busy-channel stall.
        let w1 = worm(3, 1, 2, 1); // out port 0
        let w2 = worm(3, 3, 2, 2); // out port 1 (wraps -x)
        let now = Cycle::ZERO;
        r.accept(now, PortId::new(1), VcId::new(0), w1[0]);
        r.accept(now, PortId::new(1), VcId::new(1), w2[0]);
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        assert!(r.route_of(PortId::new(1), VcId::new(0)).is_some());
        assert!(r.route_of(PortId::new(1), VcId::new(1)).is_some());
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        let stats = r.link_stats();
        assert_eq!(
            stats[0].flits_forwarded + stats[1].flits_forwarded,
            1,
            "one flit crossed"
        );
        assert_eq!(
            stats[0].stall_busy + stats[1].stall_busy,
            1,
            "the loser of the shared input port stalls busy"
        );
    }

    #[test]
    fn stall_attribution_dead_link_dominates() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 1, 6, 1);
        let now = Cycle::ZERO;
        for f in &flits[..2] {
            r.accept(now, PortId::new(1), VcId::new(0), *f);
        }
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        assert_eq!(r.traverse(now + 1, &|_| false).len(), 1);
        // The link dies mid-worm: the credit stall is re-attributed.
        r.set_dead_out(PortId::new(0));
        r.accept(now + 2, PortId::new(1), VcId::new(0), flits[2]);
        assert!(r.traverse(now + 2, &|_| false).is_empty());
        let s = r.link_stats()[0];
        assert_eq!(s.stall_dead_link, 1);
        assert_eq!(s.stall_backpressure, 0);
        assert_eq!(s.stall_for(StallCause::DeadLink), 1);
    }

    #[test]
    fn stall_streaks_recorded_only_when_enabled() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 1, 6, 1);
        let now = Cycle::ZERO;
        for f in &flits[..2] {
            r.accept(now, PortId::new(1), VcId::new(0), *f);
        }
        r.route_and_allocate(now, &rf, &topo, &|_| false);
        assert_eq!(r.traverse(now, &|_| false).len(), 1);
        assert_eq!(r.traverse(now + 1, &|_| false).len(), 1);
        // Two stalled cycles with recording off leave nothing behind.
        r.accept(now + 2, PortId::new(1), VcId::new(0), flits[2]);
        assert!(r.traverse(now + 2, &|_| false).is_empty());
        assert!(r.traverse(now + 3, &|_| false).is_empty());
        let mut streaks = Vec::new();
        r.add_credit(PortId::new(0), VcId::new(0));
        assert_eq!(r.traverse(now + 4, &|_| false).len(), 1);
        r.drain_streaks_into(&mut streaks);
        assert!(streaks.is_empty(), "recording was off");
        // Again with recording on: stall twice, then forward to close
        // the streak.
        r.set_record_streaks(true);
        r.accept(now + 5, PortId::new(1), VcId::new(0), flits[3]);
        r.accept(now + 5, PortId::new(1), VcId::new(0), flits[4]);
        assert!(r.traverse(now + 5, &|_| false).is_empty());
        assert!(r.traverse(now + 6, &|_| false).is_empty());
        r.add_credit(PortId::new(0), VcId::new(0));
        assert_eq!(r.traverse(now + 7, &|_| false).len(), 1);
        r.drain_streaks_into(&mut streaks);
        assert_eq!(streaks.len(), 1);
        assert_eq!(streaks[0].port, PortId::new(0));
        assert_eq!(streaks[0].cause, StallCause::Backpressure);
        assert_eq!(streaks[0].since, now + 5);
        assert_eq!(streaks[0].cycles, 2);
    }

    #[test]
    fn orphan_body_flit_dropped_with_credit_notice() {
        let topo = KAryNCube::torus(4, 1);
        let rf = MinimalAdaptive::new(1);
        let mut r = router(0);
        let flits = worm(3, 1, 3, 1);
        // A body flit arrives with no preceding header (worm was torn
        // down upstream).
        r.accept(Cycle::ZERO, PortId::new(1), VcId::new(0), flits[1]);
        r.route_and_allocate(Cycle::ZERO, &rf, &topo, &|_| false);
        assert_eq!(r.counters().orphan_flits_dropped, 1);
        assert_eq!(r.occupancy(PortId::new(1), VcId::new(0)), 0);
        let credits = r.take_orphan_credits();
        assert_eq!(credits, vec![(PortId::new(1), VcId::new(0))]);
        assert!(r.take_orphan_credits().is_empty(), "drained");
    }
}
