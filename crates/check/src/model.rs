//! The search core: environment events, the BFS over interleavings,
//! the quiescence tail, and the report.
//!
//! # Search model
//!
//! A *run* of the checker interleaves two kinds of transitions:
//!
//! * `Fire(e)` — environment event `e` (an injection, link kill or
//!   link revival) takes effect now. Firing consumes no simulated
//!   time, so several events can fire within one cycle in any order.
//! * `Tick` — the network advances exactly one cycle.
//!
//! Every event carries a window `[lo, hi]`: `Fire(e)` is enabled once
//! `now >= lo`, and `Tick` is *disabled* while any unfired event has
//! `hi <= now` (the event is forced to fire before time moves on).
//! Since `lo <= hi`, a forced event is always also enabled, so every
//! non-terminal state has at least one successor. Once all events
//! have fired, the state is a *tail* state: the checker runs the
//! network deterministically to quiescence (checking invariants every
//! cycle) and verifies the delivery obligations.
//!
//! # State storage
//!
//! [`Network`](cr_core::Network) is deliberately not `Clone`, and the
//! checker does not need it to be: each arena node stores only its
//! parent and the action that produced it, and expansion *replays*
//! the action path from a fresh network. Replays are deterministic
//! (the whole simulator is), so the rebuilt state is bit-identical to
//! the one fingerprinted earlier. At the 2–4 node scale this trades
//! a few million replayed cycles for never holding more than one live
//! network — and makes counterexamples trivially serializable: a
//! counterexample *is* an action path.

use cr_core::check_api::{CheckNet, FlowKey, ProtocolStep};
use cr_sim::{Json, LinkId, NodeId};

use crate::hash::{fingerprint, VisitedSet};

/// One environment action the checker can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvOp {
    /// Queue a message of `len` payload flits from `src` to `dst`.
    Inject {
        /// Source node index.
        src: u32,
        /// Destination node index.
        dst: u32,
        /// Payload length in flits.
        len: u32,
    },
    /// Kill one unidirectional link.
    KillLink {
        /// Dense link id (see the topology's link numbering).
        link: u32,
    },
    /// Revive one previously killed link.
    ReviveLink {
        /// Dense link id.
        link: u32,
    },
}

impl EnvOp {
    /// Applies this operation to `net`.
    pub fn apply(&self, net: &mut CheckNet) {
        match *self {
            EnvOp::Inject { src, dst, len } => {
                net.inject(NodeId::new(src), NodeId::new(dst), len);
            }
            EnvOp::KillLink { link } => net.kill_link_now(LinkId::new(link)),
            EnvOp::ReviveLink { link } => net.revive_link_now(LinkId::new(link)),
        }
    }

    /// Short machine-readable tag (`inject` / `kill_link` /
    /// `revive_link`).
    pub fn kind(&self) -> &'static str {
        match self {
            EnvOp::Inject { .. } => "inject",
            EnvOp::KillLink { .. } => "kill_link",
            EnvOp::ReviveLink { .. } => "revive_link",
        }
    }

    /// JSON rendering of the operation's operands plus its tag.
    pub fn to_json(&self) -> Json {
        match *self {
            EnvOp::Inject { src, dst, len } => Json::obj([
                ("op", Json::from(self.kind())),
                ("src", Json::from(u64::from(src))),
                ("dst", Json::from(u64::from(dst))),
                ("len", Json::from(u64::from(len))),
            ]),
            EnvOp::KillLink { link } | EnvOp::ReviveLink { link } => Json::obj([
                ("op", Json::from(self.kind())),
                ("link", Json::from(u64::from(link))),
            ]),
        }
    }
}

/// An environment event with its firing window (inclusive on both
/// ends): the checker explores firing `op` at every cycle in
/// `[lo, hi]`, in every order relative to other events.
#[derive(Debug, Clone, Copy)]
pub struct EnvEvent {
    /// The operation that fires.
    pub op: EnvOp,
    /// Earliest cycle at which the event may fire.
    pub lo: u64,
    /// Latest cycle by which the event must have fired.
    pub hi: u64,
}

/// One transition in the search graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Fire environment event `events[i]`.
    Fire(u16),
    /// Advance the network one cycle.
    Tick,
}

/// A checkable configuration: how to build the network, which
/// environment events to interleave, and what outcome to expect.
pub struct CheckConfig {
    /// Unique name (CLI handle and counterexample key).
    pub name: &'static str,
    /// One-line description for reports.
    pub about: &'static str,
    /// Builds the network under test, fresh and deterministic.
    pub build: fn() -> CheckNet,
    /// Environment events to interleave (at most 32).
    pub events: Vec<EnvEvent>,
    /// `true` for `--mutate` configurations: the checker must *find*
    /// a violation (the run fails if the state space closes cleanly).
    pub expect_violation: bool,
    /// Require every injected message delivered exactly once at
    /// quiescence (liveness); disable only for configurations whose
    /// traffic is legitimately lossy.
    pub require_all_delivered: bool,
    /// Absolute cycle bound: a tail that has not quiesced by this
    /// cycle is reported as a livelock violation.
    pub max_cycles: u64,
}

impl CheckConfig {
    /// Expected delivery obligations: for each `(src, dst)` flow with
    /// `k` injection events, flow keys `(src, dst, 0..k)` must each be
    /// delivered exactly once (sequence numbers are assigned in firing
    /// order, but the *set* of keys is order-independent).
    pub fn expected_deliveries(&self) -> Vec<FlowKey> {
        let mut keys: Vec<FlowKey> = Vec::new();
        let mut flows: Vec<(u32, u32, u64)> = Vec::new();
        for ev in &self.events {
            if let EnvOp::Inject { src, dst, .. } = ev.op {
                let seq = match flows.iter_mut().find(|f| f.0 == src && f.1 == dst) {
                    Some(f) => {
                        f.2 += 1;
                        f.2 - 1
                    }
                    None => {
                        flows.push((src, dst, 1));
                        0
                    }
                };
                keys.push((src, dst, seq));
            }
        }
        keys.sort_unstable();
        keys
    }
}

/// A property violation, with the interleaving that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong (invariant message, `deadlock`, lost message…).
    pub kind: String,
    /// Simulated cycle at which the violation was detected.
    pub at: u64,
    /// The violating interleaving as `(cycle, event index)` pairs in
    /// firing order; ticks between firing cycles are implied. Replay
    /// with [`replay`].
    pub fires: Vec<(u64, u16)>,
}

/// Outcome of checking one configuration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Configuration name.
    pub config: String,
    /// `expect_violation` of the configuration checked.
    pub expect_violation: bool,
    /// Distinct canonical states visited (the arena size).
    pub states: u64,
    /// Transitions explored (including ones reaching known states).
    pub edges: u64,
    /// Maximal interleavings run to quiescence.
    pub tails: u64,
    /// Longest action path from the initial state.
    pub max_depth: u32,
    /// Most protocol kills observed along any single tail run.
    pub max_kills: u64,
    /// Most retransmissions observed along any single tail run.
    pub max_retransmissions: u64,
    /// `true` if the state budget ran out before the frontier emptied
    /// (the result then proves nothing).
    pub budget_exhausted: bool,
    /// First violation found in BFS order, if any.
    pub violation: Option<Violation>,
}

impl CheckReport {
    /// Did the run match its expectation? A sound configuration must
    /// close its state space with no violation; a mutated one must
    /// find a violation. An exhausted budget fails either way.
    pub fn passed(&self) -> bool {
        if self.budget_exhausted {
            return false;
        }
        self.violation.is_some() == self.expect_violation
    }

    /// Deterministic JSON rendering (object key order is fixed).
    pub fn to_json(&self) -> Json {
        let violation = match &self.violation {
            None => Json::Null,
            Some(v) => Json::obj([
                ("kind", Json::from(v.kind.as_str())),
                ("at", Json::from(v.at)),
                (
                    "fires",
                    Json::Arr(
                        v.fires
                            .iter()
                            .map(|&(at, e)| {
                                Json::obj([
                                    ("at", Json::from(at)),
                                    ("event", Json::from(u64::from(e))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::obj([
            ("config", Json::from(self.config.as_str())),
            ("expect_violation", Json::from(self.expect_violation)),
            ("passed", Json::from(self.passed())),
            ("states", Json::from(self.states)),
            ("edges", Json::from(self.edges)),
            ("tails", Json::from(self.tails)),
            ("max_depth", Json::from(u64::from(self.max_depth))),
            ("max_kills", Json::from(self.max_kills)),
            ("max_retransmissions", Json::from(self.max_retransmissions)),
            ("budget_exhausted", Json::from(self.budget_exhausted)),
            ("violation", violation),
        ])
    }
}

/// One arena node: enough to reconstruct the state by replaying the
/// parent chain, plus the scheduling facts (`now`, fired mask) that
/// action eligibility needs — those are path properties, computable
/// without touching the simulator.
#[derive(Debug, Clone, Copy)]
struct NodeRec {
    /// Arena index of the parent, `u32::MAX` for the root.
    parent: u32,
    /// The action that produced this node from its parent.
    action: Action,
    /// Bitmask of events fired along the path.
    mask: u32,
    /// Simulated cycle (= number of `Tick`s on the path).
    now: u64,
    /// Path length.
    depth: u32,
}

/// Collects the action path from the root to `idx`.
/// Checked narrowing of an arena index to the `u32` stored in
/// [`NodeRec::parent`]: reaching `u32::MAX` states would first
/// exhaust any realistic `--budget` and the host's memory.
fn arena_idx(i: usize) -> u32 {
    // cr-lint: allow(panic-discipline, reason = "an arena past u32::MAX states is unreachable within memory, and wrapping would corrupt the parent chain")
    u32::try_from(i).expect("arena index exceeds u32::MAX")
}

fn path_to(arena: &[NodeRec], idx: u32) -> Vec<Action> {
    let mut acts = Vec::new();
    let mut i = idx;
    while arena[i as usize].parent != u32::MAX {
        acts.push(arena[i as usize].action);
        i = arena[i as usize].parent;
    }
    acts.reverse();
    acts
}

/// Rebuilds the network at the end of `acts` from a fresh build.
fn replay_actions(cfg: &CheckConfig, acts: &[Action]) -> CheckNet {
    let mut net = (cfg.build)();
    for a in acts {
        match *a {
            Action::Fire(e) => cfg.events[e as usize].op.apply(&mut net),
            Action::Tick => net.tick(),
        }
    }
    net
}

/// Converts an action path into the `(cycle, event)` firing list that
/// counterexamples store.
fn fires_of(acts: &[Action]) -> Vec<(u64, u16)> {
    let mut now = 0u64;
    let mut fires = Vec::new();
    for a in acts {
        match *a {
            Action::Tick => now += 1,
            Action::Fire(e) => fires.push((now, e)),
        }
    }
    fires
}

/// Statistics from one quiescence tail.
struct TailStats {
    kills: u64,
    retransmissions: u64,
}

/// Runs `net` (all events already fired) to quiescence, checking
/// invariants every cycle. Returns the violation kind and cycle on
/// failure.
fn run_tail(cfg: &CheckConfig, net: &mut CheckNet) -> Result<TailStats, (String, u64)> {
    loop {
        let now = net.now().as_u64();
        if net.is_deadlocked() {
            return Err(("deadlock: watchdog fired with flits in flight".into(), now));
        }
        if net.is_quiescent() {
            break;
        }
        if now >= cfg.max_cycles {
            return Err((
                format!("failed to quiesce within {} cycles", cfg.max_cycles),
                now,
            ));
        }
        net.tick();
        if let Err(msg) = net.check_invariants() {
            return Err((msg, net.now().as_u64()));
        }
    }
    let now = net.now().as_u64();
    if cfg.require_all_delivered {
        for key in cfg.expected_deliveries() {
            let n = net.deliveries().get(&key).map_or(0, |d| d.delivered);
            if n != 1 {
                return Err((
                    format!(
                        "message ({}, {}, {}) delivered {} times at quiescence",
                        key.0, key.1, key.2, n
                    ),
                    now,
                ));
            }
        }
    }
    let c = net.network().counters();
    Ok(TailStats {
        kills: c.kills_source_timeout + c.kills_fault + c.kills_path_wide,
        retransmissions: c.retransmissions,
    })
}

/// Canonical search key of a state: the protocol encoding, the fired
/// mask, and — only while events remain unfired — the absolute cycle
/// (future eligibility depends on it; once everything has fired, the
/// residual time-dependence is the prune phase, which the protocol
/// encoding already carries).
fn state_key(net: &CheckNet, mask: u32, all_fired: bool, now: u64) -> u128 {
    let mut bytes = Vec::with_capacity(4096);
    net.encode_state(&mut bytes);
    bytes.extend_from_slice(&mask.to_le_bytes());
    if !all_fired {
        bytes.extend_from_slice(&now.to_le_bytes());
    }
    fingerprint(&bytes)
}

/// Exhaustively checks `cfg`, visiting at most `budget` distinct
/// states.
///
/// Deterministic: same configuration and budget, same report — byte
/// for byte, including the counterexample.
///
/// # Panics
///
/// Panics if the configuration is malformed (more than 32 events, or
/// an event window with `lo > hi`).
pub fn check(cfg: &CheckConfig, budget: usize) -> CheckReport {
    assert!(cfg.events.len() <= 32, "at most 32 environment events");
    for ev in &cfg.events {
        assert!(ev.lo <= ev.hi, "event window must satisfy lo <= hi");
    }
    let all_mask: u32 = if cfg.events.is_empty() {
        0
    } else {
        (u32::MAX) >> (32 - cfg.events.len())
    };

    let mut report = CheckReport {
        config: cfg.name.to_string(),
        expect_violation: cfg.expect_violation,
        states: 0,
        edges: 0,
        tails: 0,
        max_depth: 0,
        max_kills: 0,
        max_retransmissions: 0,
        budget_exhausted: false,
        violation: None,
    };

    let mut visited = VisitedSet::new();
    let mut arena: Vec<NodeRec> = Vec::new();

    // Root.
    let root = (cfg.build)();
    if let Err(msg) = root.check_invariants() {
        report.states = 1;
        report.violation = Some(Violation {
            kind: msg,
            at: 0,
            fires: Vec::new(),
        });
        return report;
    }
    visited.insert(state_key(&root, 0, all_mask == 0, 0));
    arena.push(NodeRec {
        parent: u32::MAX,
        action: Action::Tick,
        mask: 0,
        now: 0,
        depth: 0,
    });
    drop(root);

    // BFS: the arena doubles as the queue (children are appended in
    // discovery order, which for uniform edge cost is BFS order).
    let mut cursor = 0usize;
    'search: while cursor < arena.len() {
        let node = arena[cursor];
        report.max_depth = report.max_depth.max(node.depth);

        if node.mask == all_mask {
            // Tail state: run deterministically to quiescence.
            report.tails += 1;
            let acts = path_to(&arena, arena_idx(cursor));
            let mut net = replay_actions(cfg, &acts);
            match run_tail(cfg, &mut net) {
                Ok(stats) => {
                    report.max_kills = report.max_kills.max(stats.kills);
                    report.max_retransmissions =
                        report.max_retransmissions.max(stats.retransmissions);
                }
                Err((kind, at)) => {
                    report.violation = Some(Violation {
                        kind,
                        at,
                        fires: fires_of(&acts),
                    });
                    break 'search;
                }
            }
            cursor += 1;
            continue;
        }

        // Eligible actions from the path facts alone.
        let mut acts_out: Vec<Action> = Vec::new();
        let mut forced = false;
        for (e, ev) in cfg.events.iter().enumerate() {
            if node.mask & (1 << e) != 0 {
                continue;
            }
            if ev.hi <= node.now {
                forced = true;
            }
            if ev.lo <= node.now {
                // cr-lint: allow(integer-narrowing, reason = "event index is asserted to be at most 32 at entry")
                acts_out.push(Action::Fire(e as u16));
            }
        }
        if !forced {
            acts_out.push(Action::Tick);
        }

        let base = path_to(&arena, arena_idx(cursor));
        for a in acts_out {
            report.edges += 1;
            let mut acts = base.clone();
            acts.push(a);
            let net = replay_actions(cfg, &acts);
            let (mask, now) = match a {
                Action::Fire(e) => (node.mask | (1 << e), node.now),
                Action::Tick => (node.mask, node.now + 1),
            };
            if let Err(msg) = net.check_invariants() {
                report.violation = Some(Violation {
                    kind: msg,
                    at: net.now().as_u64(),
                    fires: fires_of(&acts),
                });
                break 'search;
            }
            if net.is_deadlocked() {
                report.violation = Some(Violation {
                    kind: "deadlock: watchdog fired with flits in flight".into(),
                    at: net.now().as_u64(),
                    fires: fires_of(&acts),
                });
                break 'search;
            }
            if visited.insert(state_key(&net, mask, mask == all_mask, now)) {
                if arena.len() >= budget {
                    report.budget_exhausted = true;
                    break 'search;
                }
                arena.push(NodeRec {
                    parent: arena_idx(cursor),
                    action: a,
                    mask,
                    now,
                    depth: node.depth + 1,
                });
            }
        }
        cursor += 1;
    }

    report.states = arena.len() as u64;
    report
}

/// Replays a counterexample firing list against a fresh build of
/// `cfg` and re-evaluates every property, confirming the violation
/// reproduces. Returns the violation observed, or `None` if the run
/// completes cleanly (the counterexample failed to reproduce).
pub fn replay(cfg: &CheckConfig, fires: &[(u64, u16)]) -> Option<Violation> {
    let mut acts: Vec<Action> = Vec::new();
    let mut now = 0u64;
    for &(at, e) in fires {
        while now < at {
            acts.push(Action::Tick);
            now += 1;
        }
        acts.push(Action::Fire(e));
    }

    // Replay step by step, checking after every action like the
    // search does after every edge.
    let mut net = (cfg.build)();
    for i in 0..acts.len() {
        match acts[i] {
            Action::Fire(e) => {
                let Some(ev) = cfg.events.get(e as usize) else {
                    return Some(Violation {
                        kind: format!("counterexample references unknown event {e}"),
                        at: now,
                        fires: fires.to_vec(),
                    });
                };
                ev.op.apply(&mut net);
            }
            Action::Tick => net.tick(),
        }
        if let Err(msg) = net.check_invariants() {
            return Some(Violation {
                kind: msg,
                at: net.now().as_u64(),
                fires: fires.to_vec(),
            });
        }
        if net.is_deadlocked() {
            return Some(Violation {
                kind: "deadlock: watchdog fired with flits in flight".into(),
                at: net.now().as_u64(),
                fires: fires.to_vec(),
            });
        }
    }
    match run_tail(cfg, &mut net) {
        Ok(_) => None,
        Err((kind, at)) => Some(Violation {
            kind,
            at,
            fires: fires.to_vec(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn line2_closes_clean() {
        let cfg = configs::find("line2").unwrap();
        let r = check(&cfg, 100_000);
        assert!(r.passed());
        assert!(r.violation.is_none());
        assert!(!r.budget_exhausted);
        assert!(r.states > 0 && r.tails > 0);
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = configs::find("line2").unwrap();
        let a = check(&cfg, 100_000).to_json().to_string();
        let b = check(&cfg, 100_000).to_json().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_exhaustion_is_not_a_pass() {
        let cfg = configs::find("line2").unwrap();
        let r = check(&cfg, 3);
        assert!(r.budget_exhausted);
        assert!(!r.passed());
    }

    #[test]
    fn mutation_finds_violation_and_replays() {
        let cfg = configs::find("disordered-detour").unwrap();
        let r = check(&cfg, 100_000);
        assert!(r.passed(), "mutation must produce a violation");
        let v = r.violation.unwrap();
        assert!(v.kind.contains("deadlock"), "expected a deadlock, got: {}", v.kind);
        let replayed = replay(&cfg, &v.fires).expect("counterexample must reproduce");
        assert_eq!(replayed.kind, v.kind);
        assert_eq!(replayed.at, v.at);
    }

    #[test]
    fn expected_deliveries_number_repeated_flows() {
        let cfg = CheckConfig {
            name: "t",
            about: "",
            build: || unreachable!("never built"),
            events: vec![
                EnvEvent {
                    op: EnvOp::Inject { src: 0, dst: 1, len: 2 },
                    lo: 0,
                    hi: 0,
                },
                EnvEvent {
                    op: EnvOp::KillLink { link: 0 },
                    lo: 0,
                    hi: 0,
                },
                EnvEvent {
                    op: EnvOp::Inject { src: 0, dst: 1, len: 2 },
                    lo: 0,
                    hi: 0,
                },
                EnvEvent {
                    op: EnvOp::Inject { src: 1, dst: 0, len: 2 },
                    lo: 0,
                    hi: 0,
                },
            ],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 10,
        };
        assert_eq!(
            cfg.expected_deliveries(),
            vec![(0, 1, 0), (0, 1, 1), (1, 0, 0)]
        );
    }
}
