//! State fingerprinting and the visited set.
//!
//! The checker never stores full state encodings: it keeps a 128-bit
//! FNV-1a fingerprint per visited state in an open-addressed table.
//! Both halves use the standard 64-bit FNV prime but different offset
//! bases, so the two streams decorrelate; at the ≤ 10⁷ states this
//! checker ever visits, the collision probability of a 128-bit
//! fingerprint is far below 10⁻²⁰ — a missed violation from a
//! fingerprint collision is not a realistic failure mode.
//!
//! `std::collections::HashMap` is deliberately avoided (repo lint
//! `hash-collections`): iteration order never matters here, but the
//! checker's memory layout and probe sequence should be identical
//! across runs and platforms, and the open-addressed `u128` table is
//! also 3–4× denser than a `HashSet<u128>`.

/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The standard 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A second, independent offset basis for the high fingerprint half
/// (the standard basis xor-folded with the golden-ratio constant).
pub const FNV_OFFSET_ALT: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over `bytes` starting from `basis`.
pub fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit fingerprint of a canonical state encoding: two FNV-1a
/// streams with independent bases, concatenated.
pub fn fingerprint(bytes: &[u8]) -> u128 {
    let lo = fnv1a(bytes, FNV_OFFSET);
    let hi = fnv1a(bytes, FNV_OFFSET_ALT);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// An open-addressed set of 128-bit fingerprints with linear probing.
///
/// Slot value 0 marks "empty"; the (vanishingly unlikely) genuine
/// fingerprint 0 is remapped to 1, costing nothing but a second
/// vanishing collision chance. The table grows at ~70% load, so
/// lookups stay O(1) amortized. No deletion — BFS only ever inserts.
#[derive(Debug)]
pub struct VisitedSet {
    slots: Vec<u128>,
    len: usize,
}

impl VisitedSet {
    /// Creates an empty set with a small initial table.
    pub fn new() -> VisitedSet {
        VisitedSet {
            slots: vec![0; 1024],
            len: 0,
        }
    }

    /// Number of fingerprints stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no fingerprint has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `fp`, returning `true` if it was not already present.
    pub fn insert(&mut self, fp: u128) -> bool {
        let fp = if fp == 0 { 1 } else { fp };
        if (self.len + 1) * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        // The low bits already mix the whole encoding (FNV), so the
        // fingerprint itself indexes the table.
        let mut i = (fp as u64 as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                self.slots[i] = fp;
                self.len += 1;
                return true;
            }
            if s == fp {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0; doubled]);
        let mask = self.slots.len() - 1;
        for fp in old {
            if fp == 0 {
                continue;
            }
            let mut i = (fp as u64 as usize) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = fp;
        }
    }
}

impl Default for VisitedSet {
    fn default() -> Self {
        VisitedSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b"", FNV_OFFSET), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a", FNV_OFFSET), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar", FNV_OFFSET), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_halves_differ() {
        let fp = fingerprint(b"some state bytes");
        assert_ne!((fp >> 64) as u64, fp as u64);
        assert_ne!(fingerprint(b"x"), fingerprint(b"y"));
    }

    #[test]
    fn visited_set_inserts_and_dedups() {
        let mut v = VisitedSet::new();
        assert!(v.is_empty());
        assert!(v.insert(42));
        assert!(!v.insert(42));
        assert!(v.insert(0)); // remapped to 1
        assert!(!v.insert(1)); // ... so 1 now reads as present
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn visited_set_survives_growth() {
        let mut v = VisitedSet::new();
        for i in 0..10_000u128 {
            assert!(v.insert(i * 7 + 3));
        }
        for i in 0..10_000u128 {
            assert!(!v.insert(i * 7 + 3));
        }
        assert_eq!(v.len(), 10_000);
    }
}
