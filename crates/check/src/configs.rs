//! The checked battery: sound configurations whose state space must
//! close violation-free, and `--mutate` variants with one unsound
//! knob each, whose violation the checker must find.
//!
//! Every configuration here is tiny on purpose — 2 to 5 nodes — so
//! the interleaving space is exhaustible, yet each one exercises a
//! different protocol pillar:
//!
//! | name            | proves                                              |
//! |-----------------|-----------------------------------------------------|
//! | `line2`         | base CR hand-shake, credits, exactly-once           |
//! | `ring3`         | kill/revive churn + source timeout + retransmit     |
//! | `mesh4`         | zero-VC ordered-detour routing around dead links    |
//! | `torus2x2-cr`   | CR deadlock recovery on a wrapped topology, 1 VC    |
//! | `torus2x2-fcr`  | FCR corruption detection + end-to-end retransmit    |
//!
//! The mutations each break one argument of the paper's
//! deadlock-freedom reasoning:
//!
//! | name                | broken knob                | expected violation |
//! |---------------------|----------------------------|--------------------|
//! | `no-padding`        | CR padding ablated         | deadlock           |
//! | `no-dateline`       | torus dateline discipline  | deadlock           |
//! | `disordered-detour` | detour ordering floor      | deadlock           |

use cr_core::check_api::{assemble_with_routing, CheckNet};
use cr_core::{
    Ablations, NetworkBuilder, NetworkConfig, ProtocolKind, RetransmitScheme, RoutingKind,
};
use cr_faults::FaultModel;
use cr_router::routing::Candidate;
use cr_router::{DimensionOrder, RouteCtx, RoutingFunction};
use cr_sim::{PortId, VcId};
use cr_topology::{FullMesh, KAryNCube};

use crate::model::{CheckConfig, EnvEvent, EnvOp};

/// Watchdog threshold for all checker networks: long enough that CR's
/// kill/retransmit recovery always makes progress first, short enough
/// that genuinely dead mutant networks are flagged quickly.
const DEADLOCK_THRESHOLD: u64 = 300;

fn inject(src: u32, dst: u32, len: u32, lo: u64, hi: u64) -> EnvEvent {
    EnvEvent {
        op: EnvOp::Inject { src, dst, len },
        lo,
        hi,
    }
}

fn kill(link: u32, lo: u64, hi: u64) -> EnvEvent {
    EnvEvent {
        op: EnvOp::KillLink { link },
        lo,
        hi,
    }
}

fn revive(link: u32, lo: u64, hi: u64) -> EnvEvent {
    EnvEvent {
        op: EnvOp::ReviveLink { link },
        lo,
        hi,
    }
}

fn line2_net() -> CheckNet {
    CheckNet::new(
        NetworkBuilder::new(KAryNCube::mesh(2, 1))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .timeout(8)
            .retransmit(RetransmitScheme::StaticGap { gap: 6 })
            .deadlock_threshold(DEADLOCK_THRESHOLD)
            .warmup(0)
            .seed(1)
            .shards(1)
            .build(),
    )
}

fn ring3_net() -> CheckNet {
    CheckNet::new(
        NetworkBuilder::new(KAryNCube::torus(3, 1))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .buffer_depth(2)
            .timeout(8)
            .retransmit(RetransmitScheme::StaticGap { gap: 6 })
            .deadlock_threshold(DEADLOCK_THRESHOLD)
            .warmup(0)
            .seed(1)
            .shards(1)
            .build(),
    )
}

fn mesh4_net() -> CheckNet {
    CheckNet::new(
        NetworkBuilder::new(FullMesh::new(4))
            .routing(RoutingKind::FullMeshOrdered)
            .protocol(ProtocolKind::Baseline)
            .buffer_depth(2)
            .deadlock_threshold(DEADLOCK_THRESHOLD)
            .warmup(0)
            .seed(1)
            .shards(1)
            .build(),
    )
}

fn torus2x2_net(protocol: ProtocolKind) -> CheckNet {
    CheckNet::new(
        NetworkBuilder::new(KAryNCube::torus(2, 2))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(protocol)
            .buffer_depth(1)
            .inject_depth(2)
            .timeout(6)
            .retransmit(RetransmitScheme::StaticGap { gap: 4 })
            .deadlock_threshold(DEADLOCK_THRESHOLD)
            .warmup(0)
            .seed(1)
            .shards(1)
            .build(),
    )
}

fn torus2x2_cr_net() -> CheckNet {
    torus2x2_net(ProtocolKind::Cr)
}

fn torus2x2_fcr_net() -> CheckNet {
    torus2x2_net(ProtocolKind::Fcr)
}

/// The sound battery: every configuration must close its state space
/// with zero violations.
pub fn all_configs() -> Vec<CheckConfig> {
    vec![
        CheckConfig {
            name: "line2",
            about: "2-node line, CR, adaptive 1 VC: base hand-shake and exactly-once",
            build: line2_net,
            events: vec![inject(0, 1, 2, 0, 1), inject(1, 0, 2, 0, 1)],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
        CheckConfig {
            name: "ring3",
            about: "3-ring, CR: a link dies under traffic and revives; timeout + retransmit recover",
            build: ring3_net,
            events: vec![
                inject(0, 1, 2, 0, 2),
                inject(1, 2, 2, 0, 2),
                // Link 0 is node 0's +direction channel, i.e. 0 -> 1:
                // the *only* minimal channel for the first flow. In
                // kill-before-inject interleavings the worm blocks at
                // the source, times out, and retries until the revival.
                kill(0, 0, 1),
                revive(0, 12, 14),
            ],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
        CheckConfig {
            name: "mesh4",
            about: "4-node full mesh, plain wormhole + ordered detours: routes around 3 dead links, 0 VCs to spare",
            build: mesh4_net,
            events: vec![
                // Each flow's direct channel dies before traffic
                // starts (forced-fire windows guarantee the order), so
                // delivery requires an ordered detour.
                kill(0, 0, 1), // 0 -> 1
                kill(6, 0, 1), // 2 -> 0
                kill(4, 0, 1), // 1 -> 2
                inject(0, 1, 2, 1, 2),
                inject(2, 0, 2, 1, 2),
                inject(1, 2, 2, 1, 2),
            ],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
        CheckConfig {
            name: "torus2x2-cr",
            about: "2x2 torus, CR, adaptive 1 VC, 1-flit buffers: dead channels + contention force timeouts and retransmits",
            build: torus2x2_cr_net,
            events: vec![
                // Links 0 and 1 are node 0's two x-channels — *both*
                // routes of the one-hop 0 -> 1 flow. Killed before the
                // inject (in some interleavings) that worm has no live
                // minimal port: it must time out at the source and
                // retransmit until the revivals land.
                inject(0, 1, 2, 0, 2),
                inject(1, 0, 2, 0, 2),
                inject(0, 3, 2, 0, 2),
                inject(3, 0, 2, 0, 2),
                kill(0, 0, 1),
                kill(1, 0, 1),
                revive(0, 8, 10),
                revive(1, 8, 10),
            ],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 3_000,
        },
        CheckConfig {
            name: "torus2x2-fcr",
            about: "2x2 torus, FCR: channels die mid-worm, corruption is detected and killed, retransmit redelivers",
            build: torus2x2_fcr_net,
            events: vec![
                // Both x-channels out of node 0 die while the 0 -> 1
                // worm may still be streaming: trailing flits arrive
                // corrupted, FCR's detection kills the worm, and the
                // source retries (blocked, hence timing out) until the
                // revivals land. FCR must still deliver exactly once
                // and never deliver a corrupt payload.
                inject(0, 1, 2, 0, 2),
                inject(1, 0, 2, 0, 2),
                kill(0, 2, 3),
                kill(1, 2, 3),
                revive(0, 10, 12),
                revive(1, 10, 12),
            ],
            expect_violation: false,
            require_all_delivered: true,
            max_cycles: 3_000,
        },
    ]
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

fn no_padding_net() -> CheckNet {
    CheckNet::new(
        NetworkBuilder::new(KAryNCube::torus(5, 1))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .buffer_depth(1)
            .inject_depth(2)
            .timeout(6)
            .retransmit(RetransmitScheme::StaticGap { gap: 4 })
            .deadlock_threshold(DEADLOCK_THRESHOLD)
            .warmup(0)
            .seed(1)
            .shards(1)
            .ablations(Ablations {
                disable_padding: true,
                ..Ablations::default()
            })
            .build(),
    )
}

fn no_dateline_net() -> CheckNet {
    // Dimension-order routing with the *mesh* discipline planted on a
    // torus: minimal paths still take wraparound channels, but nobody
    // switches virtual-channel class at the dateline, so the channel
    // dependency graph keeps its ring cycle.
    let cfg = NetworkConfig {
        routing: RoutingKind::Dor { lanes: 1 },
        protocol: ProtocolKind::Baseline,
        buffer_depth: 1,
        inject_depth: 2,
        deadlock_threshold: DEADLOCK_THRESHOLD,
        warmup: 0,
        seed: 1,
        ..NetworkConfig::default()
    };
    CheckNet::new(assemble_with_routing(
        Box::new(KAryNCube::torus(5, 1)),
        cfg,
        Box::new(DimensionOrder::mesh(1)),
        FaultModel::new(),
    ))
}

/// [`cr_router::FullMeshOrdered`] with its ordering floor removed:
/// detours may pass through *any* live intermediate, not only ones
/// indexed above both endpoints. The floor is the entire
/// deadlock-freedom argument (every dependency chain has length <= 1);
/// without it three detouring worms can close a channel cycle.
///
/// Deliberately deterministic (no rotation among detours): the first
/// listed candidate is taken, so the checker's counterexample is a
/// clean 3-worm cycle.
#[derive(Debug, Clone, Default)]
struct DisorderedDetour;

impl RoutingFunction for DisorderedDetour {
    fn candidates(&self, ctx: &mut RouteCtx<'_>, out: &mut Vec<Candidate>) {
        let vc = VcId::new(0);
        for port in ctx.live_minimal_ports() {
            out.push(Candidate {
                port,
                vc,
                escape: false,
            });
        }
        if ctx.flit.hops > 0 {
            // Same restriction as the sound scheme: at most one detour.
            return;
        }
        for p in 0..ctx.topo.num_ports(ctx.node) {
            let port = PortId::new(p as u16);
            if ctx.dead_out.get(p).copied().unwrap_or(false) {
                continue;
            }
            let Some(mid) = ctx.topo.neighbor(ctx.node, port) else {
                continue;
            };
            // The sound scheme demands mid > max(node, dst) here; the
            // mutation accepts any intermediate.
            if mid != ctx.flit.dst {
                out.push(Candidate {
                    port,
                    vc,
                    escape: false,
                });
            }
        }
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "disordered detour (mutated)"
    }
}

fn disordered_detour_net() -> CheckNet {
    let cfg = NetworkConfig {
        routing: RoutingKind::FullMeshOrdered,
        protocol: ProtocolKind::Baseline,
        buffer_depth: 1,
        inject_depth: 2,
        deadlock_threshold: DEADLOCK_THRESHOLD,
        warmup: 0,
        seed: 1,
        ..NetworkConfig::default()
    };
    CheckNet::new(assemble_with_routing(
        Box::new(FullMesh::new(4)),
        cfg,
        Box::new(DisorderedDetour),
        FaultModel::new(),
    ))
}

/// The falsification battery: each configuration disables one
/// soundness ingredient, and the checker must find the resulting
/// violation.
pub fn mutations() -> Vec<CheckConfig> {
    // Five worms around a 5-ring, each two hops clockwise: worm i
    // holds channel (i, i+1) while waiting for (i+1, i+2) — the
    // classic cyclic pattern CR's padding/kill machinery resolves.
    let ring_cycle_traffic: Vec<EnvEvent> = (0..5)
        .map(|i| inject(i, (i + 2) % 5, 3, 0, 1))
        .collect();
    vec![
        CheckConfig {
            name: "no-padding",
            about: "CR with padding ablated: 3-flit worms fully inject uncommitted, the 5-worm ring cycle becomes unkillable",
            build: no_padding_net,
            events: ring_cycle_traffic.clone(),
            expect_violation: true,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
        CheckConfig {
            name: "no-dateline",
            about: "dimension-order routing on a torus without the dateline VC switch: wraparound closes the channel-dependency cycle",
            build: no_dateline_net,
            events: ring_cycle_traffic,
            expect_violation: true,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
        CheckConfig {
            name: "disordered-detour",
            about: "ordered-detour routing without the ordering floor: three detouring worms close a 3-channel cycle",
            build: disordered_detour_net,
            events: vec![
                kill(0, 0, 1), // 0 -> 1
                kill(6, 0, 1), // 2 -> 0
                kill(4, 0, 1), // 1 -> 2
                inject(0, 1, 3, 1, 2),
                inject(2, 0, 3, 1, 2),
                inject(1, 2, 3, 1, 2),
            ],
            expect_violation: true,
            require_all_delivered: true,
            max_cycles: 2_000,
        },
    ]
}

/// Looks `name` up among sound configurations and mutations alike.
pub fn find(name: &str) -> Option<CheckConfig> {
    all_configs()
        .into_iter()
        .chain(mutations())
        .find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::check_api::ProtocolStep;

    #[test]
    fn names_are_unique_and_findable() {
        let mut names: Vec<&str> = all_configs()
            .iter()
            .chain(mutations().iter())
            .map(|c| c.name)
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate configuration name");
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no-such-config").is_none());
    }

    #[test]
    fn expectations_are_partitioned() {
        assert!(all_configs().iter().all(|c| !c.expect_violation));
        assert!(mutations().iter().all(|c| c.expect_violation));
    }

    #[test]
    fn every_config_builds_and_validates_events() {
        for c in all_configs().into_iter().chain(mutations()) {
            let net = (c.build)();
            assert_eq!(net.now().as_u64(), 0, "{}: fresh build must start at 0", c.name);
            for ev in &c.events {
                assert!(ev.lo <= ev.hi, "{}: bad window", c.name);
            }
        }
    }
}
