//! `cr-check`: an exhaustive explicit-state model checker for the
//! Compressionless Routing protocol stack.
//!
//! # What it proves
//!
//! For a small, fixed network configuration (2–4 nodes) and a fixed
//! set of *environment events* — message injections, link kills, link
//! revivals — each constrained to a firing window, the checker
//! enumerates **every interleaving** of those events with the passage
//! of time, merging interleavings that reach the same protocol state
//! (canonical encoding + fingerprint set). On every reachable state it
//! evaluates the safety invariants (credit conservation, buffer
//! bounds, at-most-once delivery, no corrupt delivery under FCR), and
//! from every maximal interleaving it runs the network to quiescence,
//! proving liveness (every injected message is delivered exactly once
//! and the network drains; no deadlock, no livelock within the cycle
//! bound).
//!
//! Crucially the transitions are executed by the **real simulator**
//! (via [`cr_core::check_api`]), not a re-model: the artifact being
//! checked is the code the experiments run.
//!
//! # Falsification mode
//!
//! `--mutate` swaps in configurations with a known-unsound knob
//! (padding disabled, the torus dateline discipline removed, the
//! ordered-detour restriction dropped). The checker must *find* the
//! resulting violation — a deadlock or a lost message — and emits a
//! deterministically replayable counterexample. This guards the
//! checker itself against vacuity: a checker that cannot refute a
//! broken protocol proves nothing about a sound one.
//!
//! # Module map
//!
//! * [`hash`] — FNV fingerprints and the open-addressed visited set
//!   (no `HashMap`/`HashSet`; deterministic, allocation-tight).
//! * [`model`] — environment events, the BFS over interleavings, the
//!   quiescence tail run, and [`model::CheckReport`].
//! * [`configs`] — the sound battery and the `--mutate` variants.
//! * [`cex`] — counterexample serialization and replay.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cex;
pub mod configs;
pub mod hash;
pub mod model;
