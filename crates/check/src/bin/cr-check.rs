//! `cr-check` — exhaustive explicit-state checking of the CR/FCR
//! protocol stack on small fixed configurations.
//!
//! ```text
//! cr-check                          # run the sound battery
//! cr-check --config ring3           # one configuration
//! cr-check --mutate no-padding      # a falsification run (must find a violation)
//! cr-check --mutate all             # every mutation
//! cr-check --all --mutate all       # everything
//! cr-check --budget 200000          # cap on distinct states
//! cr-check --json                   # deterministic machine-readable report
//! cr-check --mutate no-padding --emit-cex cex.json
//! cr-check --replay cex.json        # confirm a counterexample reproduces
//! cr-check --list                   # show all configuration names
//! ```
//!
//! Exit codes: `0` every run matched its expectation (sound
//! configurations closed their state space violation-free, mutations
//! produced a counterexample, replays reproduced); `2` any mismatch,
//! exhausted budget, or failed replay; `1` usage error.

use std::process::ExitCode;

use cr_check::{cex, configs, model};
use cr_sim::Json;

const DEFAULT_BUDGET: usize = 500_000;

fn usage(msg: &str) -> ExitCode {
    eprintln!("cr-check: {msg}");
    eprintln!(
        "usage: cr-check [--all] [--config NAME] [--mutate NAME|all] [--budget N] \
         [--json] [--emit-cex PATH] [--replay PATH] [--list]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = DEFAULT_BUDGET;
    let mut json = false;
    let mut all = false;
    let mut config: Option<String> = None;
    let mut mutate: Option<String> = None;
    let mut emit_cex: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut list = false;

    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--list" => list = true,
            "--budget" => {
                match need_value(i).map(str::parse::<usize>) {
                    Ok(Ok(n)) if n > 0 => budget = n,
                    _ => return usage("--budget needs a positive integer"),
                }
                i += 1;
            }
            "--config" => {
                match need_value(i) {
                    Ok(v) => config = Some(v.to_string()),
                    Err(e) => return usage(&e),
                }
                i += 1;
            }
            "--mutate" => {
                match need_value(i) {
                    Ok(v) => mutate = Some(v.to_string()),
                    Err(e) => return usage(&e),
                }
                i += 1;
            }
            "--emit-cex" => {
                match need_value(i) {
                    Ok(v) => emit_cex = Some(v.to_string()),
                    Err(e) => return usage(&e),
                }
                i += 1;
            }
            "--replay" => {
                match need_value(i) {
                    Ok(v) => replay_path = Some(v.to_string()),
                    Err(e) => return usage(&e),
                }
                i += 1;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if list {
        for c in configs::all_configs() {
            println!("{:<18} {}", c.name, c.about);
        }
        for c in configs::mutations() {
            println!("{:<18} [mutation] {}", c.name, c.about);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = replay_path {
        return replay_file(&path, json);
    }

    // Select the runs.
    let mut runs: Vec<model::CheckConfig> = Vec::new();
    if let Some(name) = &config {
        match configs::find(name) {
            Some(c) => runs.push(c),
            None => return usage(&format!("unknown configuration {name}")),
        }
    }
    if let Some(name) = &mutate {
        let muts = configs::mutations();
        if name == "all" {
            runs.extend(muts);
        } else {
            match muts.into_iter().find(|c| c.name == name) {
                Some(c) => runs.push(c),
                None => return usage(&format!("unknown mutation {name}")),
            }
        }
    }
    if all || (config.is_none() && mutate.is_none()) {
        let mut sound = configs::all_configs();
        sound.retain(|c| runs.iter().all(|r| r.name != c.name));
        runs.splice(0..0, sound);
    }

    // Check.
    let mut reports = Vec::with_capacity(runs.len());
    for cfg in &runs {
        reports.push(model::check(cfg, budget));
    }
    let passed = reports.iter().all(model::CheckReport::passed);

    if let Some(path) = &emit_cex {
        let first = reports
            .iter()
            .enumerate()
            .find_map(|(i, r)| r.violation.as_ref().map(|v| (i, v)));
        match first {
            Some((i, v)) => {
                let doc = cex::to_json(&runs[i], v);
                if let Err(e) = std::fs::write(path, format!("{}\n", doc.to_pretty())) {
                    eprintln!("cr-check: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                if !json {
                    println!("counterexample written to {path}");
                }
            }
            None => {
                eprintln!("cr-check: --emit-cex given but no violation was found");
                return ExitCode::from(2);
            }
        }
    }

    if json {
        let doc = Json::obj([
            ("budget", Json::from(budget as u64)),
            ("passed", Json::from(passed)),
            (
                "runs",
                Json::Arr(reports.iter().map(model::CheckReport::to_json).collect()),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for r in &reports {
            print_report(r);
        }
        println!(
            "{}: {}/{} runs matched expectations",
            if passed { "ok" } else { "FAILED" },
            reports.iter().filter(|r| r.passed()).count(),
            reports.len()
        );
    }

    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn print_report(r: &model::CheckReport) {
    let verdict = match (&r.violation, r.expect_violation, r.budget_exhausted) {
        (_, _, true) => "BUDGET EXHAUSTED (result proves nothing)".to_string(),
        (None, false, _) => "ok: state space closed, no violation".to_string(),
        (None, true, _) => "FAILED: expected a violation, none found".to_string(),
        (Some(v), true, _) => format!("ok: violation found as expected — {} at cycle {}", v.kind, v.at),
        (Some(v), false, _) => format!("VIOLATION: {} at cycle {}", v.kind, v.at),
    };
    println!(
        "{:<18} {:>8} states {:>8} edges {:>6} tails  depth {:>3}  kills {:>3}  retx {:>3}  {}",
        r.config, r.states, r.edges, r.tails, r.max_depth, r.max_kills, r.max_retransmissions, verdict
    );
}

fn replay_file(path: &str, json: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cr-check: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let (name, fires) = match cex::from_json_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cr-check: {e}");
            return ExitCode::from(1);
        }
    };
    let Some(cfg) = configs::find(&name) else {
        eprintln!("cr-check: counterexample names unknown configuration {name}");
        return ExitCode::from(1);
    };
    match model::replay(&cfg, &fires) {
        Some(v) => {
            if json {
                let doc = Json::obj([
                    ("config", Json::from(name.as_str())),
                    ("reproduced", Json::from(true)),
                    ("violation", Json::from(v.kind.as_str())),
                    ("at", Json::from(v.at)),
                ]);
                println!("{}", doc.to_pretty());
            } else {
                println!("{name}: reproduced — {} at cycle {}", v.kind, v.at);
            }
            ExitCode::SUCCESS
        }
        None => {
            if json {
                let doc = Json::obj([
                    ("config", Json::from(name.as_str())),
                    ("reproduced", Json::from(false)),
                ]);
                println!("{}", doc.to_pretty());
            } else {
                println!("{name}: counterexample did NOT reproduce");
            }
            ExitCode::from(2)
        }
    }
}
