//! Counterexample serialization: a violating interleaving as JSON,
//! self-describing enough to replay in the checker (`--replay`) *and*
//! to re-drive the ordinary simulator (the embedded `churn` block is a
//! ready-made [`cr_faults::ChurnSchedule`] of the kill/revive
//! firings).
//!
//! Format:
//!
//! ```json
//! {
//!   "config": "no-padding",
//!   "violation": "deadlock: watchdog fired with flits in flight",
//!   "at": 312,
//!   "fires": [
//!     {"at": 0, "event": 0, "op": "inject", "src": 0, "dst": 2, "len": 3},
//!     {"at": 1, "event": 3, "op": "kill_link", "link": 6}
//!   ],
//!   "churn": {"events": [...]}
//! }
//! ```
//!
//! `fires` is authoritative for replay (`at` = firing cycle, `event` =
//! index into the configuration's event list, listed in firing order);
//! the per-fire operation fields and the `churn` block are denormalized
//! conveniences.

use cr_faults::ChurnSchedule;
use cr_sim::{Cycle, Json, LinkId};

use crate::model::{CheckConfig, EnvOp, Violation};

/// Renders `violation` (found while checking `cfg`) as the replayable
/// counterexample document.
pub fn to_json(cfg: &CheckConfig, violation: &Violation) -> Json {
    let mut fires = Vec::new();
    let mut churn = ChurnSchedule::new();
    for &(at, e) in &violation.fires {
        let mut fields = vec![("at", Json::from(at)), ("event", Json::from(u64::from(e)))];
        if let Some(ev) = cfg.events.get(e as usize) {
            if let Json::Obj(op_fields) = ev.op.to_json() {
                for (k, v) in op_fields {
                    fields.push(match k.as_str() {
                        "op" => ("op", v),
                        "src" => ("src", v),
                        "dst" => ("dst", v),
                        "len" => ("len", v),
                        "link" => ("link", v),
                        _ => continue,
                    });
                }
            }
            match ev.op {
                EnvOp::KillLink { link } => {
                    churn.kill_link(Cycle::new(at), LinkId::new(link));
                }
                EnvOp::ReviveLink { link } => {
                    churn.revive_link(Cycle::new(at), LinkId::new(link));
                }
                EnvOp::Inject { .. } => {}
            }
        }
        fires.push(Json::obj(fields));
    }
    Json::obj([
        ("config", Json::from(cfg.name)),
        ("violation", Json::from(violation.kind.as_str())),
        ("at", Json::from(violation.at)),
        ("fires", Json::Arr(fires)),
        ("churn", churn.to_json()),
    ])
}

/// Parses a counterexample document back into its configuration name
/// and firing list.
pub fn from_json(v: &Json) -> Result<(String, Vec<(u64, u16)>), String> {
    let config = v
        .get("config")
        .and_then(Json::as_str)
        .ok_or("counterexample: missing \"config\"")?
        .to_string();
    let Some(Json::Arr(items)) = v.get("fires") else {
        return Err("counterexample: missing \"fires\" array".into());
    };
    let mut fires = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let at = item
            .get("at")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("counterexample: fire {i} missing \"at\""))?;
        let event = item
            .get("event")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("counterexample: fire {i} missing \"event\""))?;
        if event > u64::from(u16::MAX) {
            return Err(format!("counterexample: fire {i} event index out of range"));
        }
        fires.push((at, event as u16));
    }
    Ok((config, fires))
}

/// Parses a counterexample document from text.
pub fn from_json_str(text: &str) -> Result<(String, Vec<(u64, u16)>), String> {
    let v = Json::parse(text).map_err(|e| format!("counterexample: bad JSON: {e}"))?;
    from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn round_trips_through_json() {
        let cfg = configs::find("ring3").unwrap();
        let v = Violation {
            kind: "synthetic".into(),
            at: 9,
            fires: vec![(0, 0), (0, 1), (2, 2), (12, 3)],
        };
        let doc = to_json(&cfg, &v);
        let (name, fires) = from_json_str(&doc.to_string()).unwrap();
        assert_eq!(name, "ring3");
        assert_eq!(fires, v.fires);
        // The churn block carries exactly the kill and the revive.
        let churn = ChurnSchedule::from_json(doc.get("churn").unwrap()).unwrap();
        assert_eq!(churn.len(), 2);
    }
}
