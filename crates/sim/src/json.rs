//! A minimal JSON value, writer and parser.
//!
//! The workspace builds hermetically with zero external dependencies
//! (see README "Offline / hermetic build"), so the few places that
//! serialize results — [`SimReport::to_json`], the experiment dumps,
//! the bench harness — use this module instead of `serde_json`. It is
//! deliberately small: an ordered value tree, a writer whose pretty
//! output matches the `serde_json::to_string_pretty` conventions the
//! repo's recorded results were produced with (two-space indent,
//! `": "` separators, shortest-round-trip float formatting, non-finite
//! floats as `null`), and a strict recursive-descent parser for
//! round-trip tests and result loading.
//!
//! [`SimReport::to_json`]: ../../cr_core/struct.SimReport.html#method.to_json

use std::fmt;

/// A JSON value.
///
/// Object members keep their insertion order, so writing a value
/// produces a stable, reviewable byte sequence.
///
/// # Examples
///
/// ```
/// use cr_sim::json::Json;
///
/// let v = Json::obj([
///     ("name", Json::from("fig09")),
///     ("cycles", Json::from(23_000u64)),
///     ("accepted", Json::from(0.29)),
/// ]);
/// assert_eq!(
///     v.to_string(),
///     r#"{"name":"fig09","cycles":23000,"accepted":0.29}"#
/// );
/// let back = Json::parse(&v.to_pretty()).unwrap();
/// assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(23000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64 counters serialize losslessly).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number. Non-finite values write as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer in
    /// range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, the layout
    /// `serde_json::to_string_pretty` used for the recorded results.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(values) => {
                write_seq(out, indent, depth, '[', ']', values.len(), |out, i, d| {
                    values[i].write(out, indent, d);
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }
}

/// Writes an array or object body with the shared bracket/newline
/// layout.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

/// Writes `v` the way `serde_json` does: shortest representation that
/// round-trips (Rust's `{:?}` float formatting), integral values with a
/// trailing `.0`, and non-finite values as `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Writes `s` quoted, escaping per RFC 8259: `"`, `\`, and control
/// characters (short escapes for backspace, form feed, newline,
/// carriage return, tab; `\u00XX` for the rest).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v < 0 {
            Json::I64(v)
        } else {
            Json::U64(v as u64)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// A parse failure: what went wrong and the byte offset it happened
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document. Strict: exactly one value, RFC 8259
    /// syntax, no trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(values));
        }
        loop {
            self.skip_ws();
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(values));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (UTF-8 passes through).
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                self.err("invalid UTF-8 in string")
            })?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?,
                );
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_layout() {
        let v = Json::obj([
            ("a", Json::from(1u64)),
            ("b", Json::arr([Json::from(true), Json::Null])),
            ("c", Json::obj::<String>([])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":{}}"#);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"c\": {}\n}"
        );
    }

    #[test]
    fn float_formatting_matches_recorded_conventions() {
        assert_eq!(Json::F64(1.0).to_string(), "1.0");
        assert_eq!(Json::F64(-0.5).to_string(), "-0.5");
        assert_eq!(Json::F64(0.1).to_string(), "0.1");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        // Shortest round-trip: a full-precision value survives.
        let v = 0.286_731_412_953_12_f64;
        let text = Json::F64(v).to_string();
        assert_eq!(text.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" back\\slash \n\r\t \u{8}\u{c} ctrl\u{1} unicode:\u{1F600}é";
        let written = Json::Str(nasty.to_string()).to_string();
        assert!(written.contains("\\\""));
        assert!(written.contains("\\\\"));
        assert!(written.contains("\\u0001"));
        let back = Json::parse(&written).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn parses_numbers_into_lossless_variants() {
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::F64(2500.0));
        assert_eq!(Json::parse("0.125").unwrap(), Json::F64(0.125));
    }

    #[test]
    fn parses_surrogate_pairs_and_escapes() {
        let v = Json::parse(r#""\ud83d\ude00 \u00e9 \/ \n""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} é / \n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "nul", "01x", "\"unterminated",
            "{\"a\":1} trailing", "[1 2]", "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::obj([
            ("report", Json::obj([
                ("cycles", Json::from(23_000u64)),
                ("latency", Json::arr([Json::from(39.8), Json::from(53.8)])),
                ("deadlocked", Json::from(false)),
                ("note", Json::from("8×8 torus")),
            ])),
            ("negative", Json::from(-7i64)),
        ]);
        for text in [v.to_string(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"n": 3, "f": 1.5, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }
}
