//! Generation-stamped active sets for the simulator's cycle scheduler.
//!
//! The network's active-set stepper (DESIGN.md §10) keeps one
//! [`ActiveSet`] per component class — links, routers, injectors — so
//! each cycle phase walks only the components that can possibly do
//! work. The representation is the classic dense work-list pair:
//!
//! * a `Vec<u32>` **work-list** of member ids, and
//! * a **generation-stamped membership array**: `stamp[id] == gen`
//!   means `id` is in the set, so clearing the whole set is a single
//!   generation bump with no per-slot writes.
//!
//! No hashing anywhere (the cr-lint `hash-collections` rule bans
//! `HashMap`/`HashSet` on result paths), insertion is O(1) and
//! duplicate-free, and iteration is over a **sorted** id list so the
//! scheduler visits components in exactly the ascending order the
//! dense reference stepper uses — which is what keeps shared-RNG draw
//! order, and therefore every simulation result, byte-identical.
//!
//! The intended per-cycle usage is *drain-and-rebuild*: the phase that
//! owns a set drains it sorted into a scratch list, processes each
//! member, and re-inserts the ones that remain active. Members never
//! removed in place means the work-list never holds duplicates and
//! membership checks stay exact.
//!
//! # Examples
//!
//! ```
//! use cr_sim::sched::ActiveSet;
//!
//! let mut set = ActiveSet::new(8);
//! set.insert(5);
//! set.insert(2);
//! assert!(set.insert(5) == false, "already a member");
//! assert!(set.contains(2));
//!
//! let mut scratch = Vec::new();
//! set.drain_sorted_into(&mut scratch);
//! assert_eq!(scratch, [2, 5]);
//! assert!(set.is_empty());
//! ```

/// A dense set of component ids in `0..capacity`, with O(1) insert
/// and membership test and sorted drain. See the module docs.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Member ids, unordered until [`ActiveSet::sort`] /
    /// [`ActiveSet::drain_sorted_into`].
    live: Vec<u32>,
    /// `stamp[id] == gen` marks membership.
    stamp: Vec<u32>,
    /// Current generation; never 0, so a zeroed stamp array means
    /// "empty".
    gen: u32,
}

impl ActiveSet {
    /// Creates an empty set over ids `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` does not fit in `u32`.
    pub fn new(capacity: usize) -> ActiveSet {
        assert!(
            u32::try_from(capacity).is_ok(),
            "active-set ids must fit in u32"
        );
        ActiveSet {
            live: Vec::new(),
            stamp: vec![0; capacity],
            gen: 1,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no component is active.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.gen
    }

    /// Inserts `id`; returns `true` if it was not already a member.
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.gen {
            return false;
        }
        *slot = self.gen;
        self.live.push(id);
        true
    }

    /// Sorts the work-list ascending (members are kept).
    pub fn sort(&mut self) {
        self.live.sort_unstable();
    }

    /// The `k`-th member of the (possibly unsorted) work-list.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn get(&self, k: usize) -> u32 {
        self.live[k]
    }

    /// Empties the set, appending its members to `out` in ascending id
    /// order. The whole membership is invalidated by a generation
    /// bump, so this is O(len log len) regardless of capacity.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<u32>) {
        self.live.sort_unstable();
        out.append(&mut self.live);
        self.bump_gen();
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.live.clear();
        self.bump_gen();
    }

    fn bump_gen(&mut self) {
        debug_assert!(self.live.is_empty());
        // On the (4-billion-drain) wrap, rewind to a fully zeroed
        // stamp array so no stale stamp can collide with a reused
        // generation.
        match self.gen.checked_add(1) {
            Some(g) => self.gen = g,
            None => {
                self.stamp.fill(0);
                self.gen = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, Config};
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_drain_roundtrip() {
        let mut s = ActiveSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(s.insert(3));
        assert!(s.insert(7) == false);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(7) && !s.contains(4));
        let mut out = Vec::new();
        s.drain_sorted_into(&mut out);
        assert_eq!(out, [3, 7]);
        assert!(s.is_empty() && !s.contains(3));
        // Reusable after a drain.
        assert!(s.insert(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sort_and_get_expose_ascending_members() {
        let mut s = ActiveSet::new(100);
        for id in [42, 9, 77, 9, 0] {
            s.insert(id);
        }
        s.sort();
        let members: Vec<u32> = (0..s.len()).map(|k| s.get(k)).collect();
        assert_eq!(members, [0, 9, 42, 77]);
    }

    #[test]
    fn clear_resets_membership() {
        let mut s = ActiveSet::new(4);
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1));
        assert!(s.insert(1));
    }

    #[test]
    fn generation_wrap_rewinds_cleanly() {
        let mut s = ActiveSet::new(3);
        s.gen = u32::MAX;
        s.insert(2);
        let mut out = Vec::new();
        s.drain_sorted_into(&mut out); // wraps
        assert_eq!(out, [2]);
        assert_eq!(s.gen, 1);
        assert!(!s.contains(2), "stale stamps zeroed on wrap");
        assert!(s.insert(2));
    }

    /// Model check against `BTreeSet`: arbitrary interleavings of
    /// insert / contains / drain / clear agree with the reference
    /// set semantics, and drains always come out sorted and unique.
    #[test]
    fn matches_reference_set_semantics() {
        check("active_set_model", Config::cases(200), |src| {
            let cap = src.usize_in(1..65);
            let mut sut = ActiveSet::new(cap);
            let mut model: BTreeSet<u32> = BTreeSet::new();
            let steps = src.usize_in(0..81);
            for _ in 0..steps {
                match src.usize_in(0..10) {
                    0..=5 => {
                        let id = src.usize_in(0..cap) as u32;
                        let fresh = sut.insert(id);
                        assert_eq!(fresh, model.insert(id));
                    }
                    6..=7 => {
                        let id = src.usize_in(0..cap) as u32;
                        assert_eq!(sut.contains(id), model.contains(&id));
                    }
                    8 => {
                        let mut out = Vec::new();
                        sut.drain_sorted_into(&mut out);
                        let expect: Vec<u32> = std::mem::take(&mut model).into_iter().collect();
                        assert_eq!(out, expect, "drain is sorted + exact");
                    }
                    _ => {
                        sut.clear();
                        model.clear();
                    }
                }
                assert_eq!(sut.len(), model.len());
            }
        });
    }
}
