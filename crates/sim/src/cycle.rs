//! The simulation clock.
//!
//! The whole reproduction is cycle-driven: one [`Cycle`] is one router
//! clock tick, matching the paper's reporting of latencies and timeouts
//! in cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in router clock cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64`s. The
/// arithmetic operators are intentionally asymmetric: you can add a
/// duration to a `Cycle` (`Cycle + u64 -> Cycle`) and subtract two
/// `Cycle`s to get a duration (`Cycle - Cycle -> u64`), but you cannot
/// add two timestamps.
///
/// # Examples
///
/// ```
/// use cr_sim::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + 32;
/// assert_eq!(later - start, 32);
/// assert!(later > start);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp from a raw cycle count.
    pub const fn new(t: u64) -> Self {
        Cycle(t)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero
    /// if `earlier` is in the future.
    ///
    /// # Examples
    ///
    /// ```
    /// use cr_sim::Cycle;
    /// let a = Cycle::new(10);
    /// let b = Cycle::new(4);
    /// assert_eq!(a.saturating_since(b), 6);
    /// assert_eq!(b.saturating_since(a), 0);
    /// ```
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Advances the clock by one cycle.
    pub fn tick(&mut self) {
        self.0 += 1;
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when that can happen.
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Cycle::ZERO + 5;
        assert_eq!(t.as_u64(), 5);
        assert_eq!(t - Cycle::ZERO, 5);
        let mut u = t;
        u += 3;
        assert_eq!(u.as_u64(), 8);
        u.tick();
        assert_eq!(u.as_u64(), 9);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Cycle::new(3) < Cycle::new(4));
        assert_eq!(Cycle::new(7).to_string(), "@7");
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(3)), 7);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        // Duration of a negative interval is a logic error; release
        // builds wrap like the underlying integer type.
        let _ = Cycle::new(1) - Cycle::new(2);
    }
}
