//! Deterministic, splittable random-number generation.
//!
//! Every stochastic component of the simulator (traffic sources, fault
//! injection, adaptive tie-breaking, retransmission jitter) draws from a
//! [`SimRng`] derived from a single experiment seed. Re-running an
//! experiment with the same seed reproduces the exact same cycle-by-cycle
//! behaviour, which is what makes the regression tests and the
//! paper-figure harness trustworthy.
//!
//! The generator is backed by an in-repo ChaCha8 keystream
//! (the private `chacha` module) — no external crates, fully specified output,
//! identical on every platform. The first words of the stream are pinned
//! by golden-value tests (`crates/sim/tests/rng_golden.rs`); see
//! DESIGN.md "Determinism & RNG" for the policy on changing them.

use crate::chacha::ChaCha8;

/// A deterministic pseudo-random number generator for simulations.
///
/// `SimRng` wraps an in-repo ChaCha8 stream cipher RNG: fast, portable
/// across platforms (its output is fully specified by this repository),
/// and cheap to *split* into independent per-component streams with
/// [`SimRng::split`].
///
/// It implements the [`Rng`] extension trait, which carries the
/// `gen_*` convenience methods.
///
/// # Examples
///
/// ```
/// use cr_sim::{Rng, SimRng};
///
/// let mut a = SimRng::from_seed(7);
/// let mut b = SimRng::from_seed(7);
/// assert_eq!(a.gen_u64(), b.gen_u64());
///
/// // Independent per-node streams:
/// let mut n0 = a.split(0);
/// let mut n1 = a.split(1);
/// assert_ne!(n0.gen_u64(), n1.gen_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8::from_seed(seed),
            seed,
        }
    }

    /// Returns the seed this generator (or its root ancestor) was
    /// created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator.
    ///
    /// Children with different `stream` values produce statistically
    /// independent sequences; the derivation depends only on the root
    /// seed and `stream`, never on how much of this generator has been
    /// consumed — so adding a new consumer does not perturb existing
    /// ones.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix seed and stream through SplitMix64 so that adjacent
        // streams land far apart in seed space.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::from_seed(z)
    }

    /// Number of 32-bit keystream words this generator has produced.
    ///
    /// Together with [`SimRng::seed`] this pins the generator's exact
    /// state, which is what the model checker's canonical state
    /// encoding needs: two simulator states whose RNGs sit at the same
    /// position in the same stream will draw identically forever.
    /// Reading the position never advances the stream.
    pub fn words_consumed(&self) -> u64 {
        self.inner.words_consumed()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0.0, 1.0]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of entropy, the full precision of an f64 mantissa.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = (self.next_u64() % slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Picks a uniformly random index in `0..len`, or `None` if
    /// `len == 0`.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some((self.next_u64() % len as u64) as usize)
        }
    }
}

impl Rng for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_word()
    }
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
///
/// Implemented for the primitive integer types. The mapping from a raw
/// 64-bit draw onto the range uses a 128-bit modulo; the modulo bias is
/// at most `width / 2^64` — irrelevant for simulation workloads (and
/// for the narrow ranges the simulator actually draws, zero in
/// practice).
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps a uniform `u64` draw onto `lo..hi` (half-open; caller
    /// guarantees `lo < hi`).
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                let width = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = (draw as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension trait with the convenience methods every RNG consumer
/// wants — the in-repo replacement for the `rand::Rng` surface the
/// workspace used to import.
///
/// Only [`Rng::next_u32`] is required; everything else derives from
/// it. Successive `u32` draws are consecutive keystream words, and
/// [`Rng::next_u64`] glues two words little-end first.
///
/// # Examples
///
/// ```
/// use cr_sim::{Rng, SimRng};
///
/// let mut rng = SimRng::from_seed(42);
/// let die = rng.gen_range(1..7u32);
/// assert!((1..7).contains(&die));
///
/// let mut deck: Vec<u8> = (0..8).collect();
/// rng.shuffle(&mut deck);
/// assert_eq!(deck.len(), 8);
///
/// if rng.gen_bool(0.5) {
///     // heads
/// }
/// ```
pub trait Rng {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits (two `u32` draws,
    /// low word first).
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Alias for [`Rng::next_u64`], matching the `gen_*` family.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Alias for [`Rng::next_u32`], matching the `gen_*` family.
    fn gen_u32(&mut self) -> u32 {
        self.next_u32()
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0.0, 1.0]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Samples uniformly from `[0.0, 1.0)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `dest` with uniformly random bytes.
    ///
    /// Bytes come from whole little-endian `u32` draws; when `dest`'s
    /// length is not a multiple of four, the unused bytes of the final
    /// draw are discarded.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_insensitive_to_consumption() {
        let mut a = SimRng::from_seed(9);
        let b = SimRng::from_seed(9);
        let _ = a.next_u64(); // consume from a only
        let mut ca = a.split(3);
        let mut cb = b.split(3);
        assert_eq!(ca.next_u64(), cb.next_u64());
    }

    #[test]
    fn split_streams_are_distinct() {
        let root = SimRng::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            let mut c = root.split(s);
            assert!(seen.insert(c.next_u64()), "stream {s} collided");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::from_seed(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn chance_rejects_bad_probability() {
        SimRng::from_seed(0).chance(1.5);
    }

    #[test]
    fn pick_uniformity_sanity() {
        let mut r = SimRng::from_seed(77);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[*r.pick(&items).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts = {counts:?}");
        }
        let empty: [usize; 0] = [];
        assert!(r.pick(&empty).is_none());
        assert!(r.pick_index(0).is_none());
    }

    #[test]
    fn gen_range_works_via_rng_trait() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..100 {
            let v = r.gen_range(0..10u32);
            assert!(v < 10);
        }
    }

    #[test]
    fn gen_range_covers_signed_and_wide_ranges() {
        let mut r = SimRng::from_seed(8);
        for _ in 0..200 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(u64::MAX - 3..u64::MAX);
            assert!(w >= u64::MAX - 3);
            let x = r.gen_range(i64::MIN..i64::MIN + 2);
            assert!(x == i64::MIN || x == i64::MIN + 1);
        }
    }

    #[test]
    #[should_panic]
    fn gen_range_rejects_empty_range() {
        SimRng::from_seed(0).gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SimRng::from_seed(55);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.75)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        SimRng::from_seed(11).shuffle(&mut a);
        SimRng::from_seed(11).shuffle(&mut b);
        assert_eq!(a, b, "same seed must shuffle identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(a, sorted, "32 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        for len in [0usize, 1, 3, 4, 5, 8, 13] {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            SimRng::from_seed(21).fill_bytes(&mut a);
            SimRng::from_seed(21).fill_bytes(&mut b);
            assert_eq!(a, b);
        }
        // The first 8 bytes are the first two keystream words LE.
        let mut r = SimRng::from_seed(21);
        let w0 = r.next_u32();
        let w1 = r.next_u32();
        let mut bytes = [0u8; 8];
        SimRng::from_seed(21).fill_bytes(&mut bytes);
        assert_eq!(&bytes[..4], &w0.to_le_bytes());
        assert_eq!(&bytes[4..], &w1.to_le_bytes());
    }

    #[test]
    fn next_u64_is_two_words_low_first() {
        let mut words = SimRng::from_seed(99);
        let w0 = words.next_u32();
        let w1 = words.next_u32();
        let mut wide = SimRng::from_seed(99);
        assert_eq!(wide.next_u64(), (u64::from(w1) << 32) | u64::from(w0));
    }
}
