//! Deterministic, splittable random-number generation.
//!
//! Every stochastic component of the simulator (traffic sources, fault
//! injection, adaptive tie-breaking, retransmission jitter) draws from a
//! [`SimRng`] derived from a single experiment seed. Re-running an
//! experiment with the same seed reproduces the exact same cycle-by-cycle
//! behaviour, which is what makes the regression tests and the
//! paper-figure harness trustworthy.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic pseudo-random number generator for simulations.
///
/// `SimRng` wraps a ChaCha8 stream cipher RNG: fast, portable across
/// platforms (unlike `SmallRng`, its output is specified), and cheap to
/// *split* into independent per-component streams with
/// [`SimRng::split`].
///
/// It implements [`rand::RngCore`], so all of the [`rand::Rng`]
/// extension methods are available.
///
/// # Examples
///
/// ```
/// use cr_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::from_seed(7);
/// let mut b = SimRng::from_seed(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// // Independent per-node streams:
/// let mut n0 = a.split(0);
/// let mut n1 = a.split(1);
/// assert_ne!(n0.gen::<u64>(), n1.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// Returns the seed this generator (or its root ancestor) was
    /// created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator.
    ///
    /// Children with different `stream` values produce statistically
    /// independent sequences; the derivation depends only on the root
    /// seed and `stream`, never on how much of this generator has been
    /// consumed — so adding a new consumer does not perturb existing
    /// ones.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix seed and stream through SplitMix64 so that adjacent
        // streams land far apart in seed space.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::from_seed(z)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0.0, 1.0]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of entropy, the full precision of an f64 mantissa.
        let x = (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = (self.inner.next_u64() % slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Picks a uniformly random index in `0..len`, or `None` if
    /// `len == 0`.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some((self.inner.next_u64() % len as u64) as usize)
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_insensitive_to_consumption() {
        let mut a = SimRng::from_seed(9);
        let b = SimRng::from_seed(9);
        let _ = a.next_u64(); // consume from a only
        let mut ca = a.split(3);
        let mut cb = b.split(3);
        assert_eq!(ca.next_u64(), cb.next_u64());
    }

    #[test]
    fn split_streams_are_distinct() {
        let root = SimRng::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            let mut c = root.split(s);
            assert!(seen.insert(c.next_u64()), "stream {s} collided");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::from_seed(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn chance_rejects_bad_probability() {
        SimRng::from_seed(0).chance(1.5);
    }

    #[test]
    fn pick_uniformity_sanity() {
        let mut r = SimRng::from_seed(77);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[*r.pick(&items).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts = {counts:?}");
        }
        let empty: [usize; 0] = [];
        assert!(r.pick(&empty).is_none());
        assert!(r.pick_index(0).is_none());
    }

    #[test]
    fn gen_range_works_via_rng_trait() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..100 {
            let v = r.gen_range(0..10u32);
            assert!(v < 10);
        }
    }
}
