//! Hermetic task parallelism: a scoped work-stealing pool for sweep
//! batches, and a persistent worker [`Team`] for per-cycle shard
//! fan-outs.
//!
//! The experiment sweeps are embarrassingly parallel: every point is an
//! independent deterministic simulation owning its own seed. [`run`]
//! executes such a batch across threads while keeping the *results*
//! exactly what a serial loop would produce — outputs come back in
//! submission order, so callers are bit-identical under any job count.
//!
//! # Model
//!
//! [`run`] takes a `Vec` of `FnOnce` tasks. With `jobs <= 1` (or a
//! single task) it executes them inline on the caller's thread — the
//! serial fallback is literally a `for` loop, not a one-worker pool.
//! Otherwise tasks are dealt round-robin onto per-worker deques; each
//! scoped worker pops its own deque from the front and, when empty,
//! *steals* from the back of the others, so uneven point costs (high
//! offered loads simulate slower) still balance. Each worker batches
//! its results locally and sends one `Vec` back over the channel when
//! it runs dry, tagged with submission indices.
//!
//! A panicking task does not hang or poison the pool: every task body
//! runs under [`std::panic::catch_unwind`], workers keep draining, and
//! [`try_run`] reports the lowest failing task index with its panic
//! message ([`run`] resurfaces it as a panic once all workers have
//! parked).
//!
//! # Persistent teams
//!
//! `std::thread::scope` is the wrong shape for the sharded stepper: a
//! simulated cycle dispatches four tiny shard batches, and re-spawning
//! plus re-joining OS threads each time costs far more than the shard
//! work itself. [`Team`] amortizes that: it spawns its workers once
//! (this module is the single cr-lint-sanctioned thread-spawn site),
//! then dispatches each batch by publishing it under a mutex and
//! bumping an epoch. Workers claim task indices from the batch's
//! atomic cursor, run them, and go back to waiting — a short spin on
//! the epoch hint first, then a condvar park — so a batch dispatch is
//! a notify, not a spawn. The caller's thread claims from the same
//! cursor, which guarantees every batch completes even if no worker
//! wakes in time. Results come back in submission order with the same
//! panic semantics as [`try_run`].
//!
//! # Choosing a job count
//!
//! [`effective_jobs`] resolves, in order: an explicit request (e.g. a
//! `--jobs N` flag), the `CR_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let squares = cr_sim::pool::run(4, tasks);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let team = cr_sim::pool::Team::new(4);
//! let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! assert_eq!(team.run(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A task panicked inside the pool.
///
/// Carries the submission index of the failing task (the lowest one,
/// if several failed) and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the (first) failing task.
    pub task_index: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task {} panicked: {}", self.task_index, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Resolves how many worker threads a sweep should use.
///
/// Priority: `request` (if `Some` and non-zero) → the `CR_JOBS`
/// environment variable (if set and parseable as a non-zero integer) →
/// [`std::thread::available_parallelism`] → 1.
pub fn effective_jobs(request: Option<usize>) -> usize {
    if let Some(n) = request {
        if n > 0 {
            return n;
        }
    }
    if let Some(n) = std::env::var("CR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `tasks` on up to `jobs` threads, returning results in
/// submission order.
///
/// `jobs <= 1` executes inline on the caller's thread (no threads
/// spawned). The thread count is additionally capped at the task
/// count.
///
/// # Panics
///
/// Panics if any task panicked — after all workers have finished, with
/// the first failing task's index and message. Use [`try_run`] to
/// handle task panics as values.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    match try_run(jobs, tasks) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run`], but surfaces a worker panic as a [`PoolError`] instead
/// of resurfacing it.
///
/// On error the results of the tasks that did succeed are dropped; the
/// pool itself always drains every task (no hang, no leaked threads —
/// the scope joins all workers before this returns).
pub fn try_run<T, F>(jobs: usize, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(PoolError {
                        task_index: i,
                        message: panic_message(&payload),
                    })
                }
            }
        }
        return Ok(out);
    }

    let workers = jobs.min(n);
    // Deal tasks round-robin so every worker starts with local work;
    // stealing evens out whatever imbalance the deal leaves.
    let mut deques: Vec<VecDeque<(usize, F)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        deques[i % workers].push_back((i, task));
    }
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> = deques.into_iter().map(Mutex::new).collect();
    let (tx, rx) = mpsc::channel::<Vec<(usize, Result<T, String>)>>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let tx = tx.clone();
            scope.spawn(move || {
                // Batch results locally and send one Vec per worker:
                // fine-grained sweep batches would otherwise pay one
                // channel wakeup per task.
                let mut results = Vec::new();
                while let Some((i, task)) = claim(deques, w) {
                    let result = catch_unwind(AssertUnwindSafe(task))
                        .map_err(|payload| panic_message(&payload));
                    results.push((i, result));
                }
                let _ = tx.send(results);
            });
        }
        drop(tx);

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_error: Option<PoolError> = None;
        for batch in rx {
            for (i, result) in batch {
                match result {
                    Ok(v) => out[i] = Some(v),
                    Err(message) => {
                        if first_error.as_ref().is_none_or(|e| i < e.task_index) {
                            first_error = Some(PoolError {
                                task_index: i,
                                message,
                            });
                        }
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out
                .into_iter()
                .map(|v| v.expect("channel closed only after all tasks reported"))
                .collect()),
        }
    })
}

/// Pops the next task for worker `w`: its own deque front first, then
/// the *back* of the other deques (classic work stealing — thieves take
/// the coldest work). Returns `None` when every deque is empty, which
/// is final: tasks never enqueue new tasks.
fn claim<E>(deques: &[Mutex<VecDeque<E>>], w: usize) -> Option<E> {
    // A worker panic cannot poison these mutexes (tasks run *after*
    // the lock is released), but be robust anyway.
    let mut own = deques[w].lock().unwrap_or_else(|p| p.into_inner());
    if let Some(task) = own.pop_front() {
        return Some(task);
    }
    drop(own);
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        let mut q = deques[victim].lock().unwrap_or_else(|p| p.into_inner());
        if let Some(task) = q.pop_back() {
            return Some(task);
        }
    }
    None
}

/// A task queued on a [`Team`]: result delivery is baked into the
/// closure, so workers need no knowledge of the result type.
type TeamJob = Box<dyn FnOnce() + Send>;

/// One published batch: tasks behind per-slot mutexes plus the atomic
/// cursor workers claim indices from.
struct TeamBatch {
    jobs: Vec<Mutex<Option<TeamJob>>>,
    cursor: AtomicUsize,
}

/// Dispatch state shared between the orchestrator and the workers.
struct TeamShared {
    state: Mutex<TeamState>,
    cv: Condvar,
    /// Mirror of `state.epoch` that parked-adjacent workers can spin on
    /// without taking the mutex.
    epoch_hint: AtomicU64,
}

struct TeamState {
    /// Bumped once per published batch (and once at shutdown); workers
    /// use it to tell a fresh publication from a spurious wakeup.
    epoch: u64,
    batch: Option<Arc<TeamBatch>>,
    shutdown: bool,
}

/// How long a worker spins on the epoch hint before parking on the
/// condvar. Per-cycle shard dispatch arrives within microseconds, so a
/// short spin usually skips the futex round-trip entirely.
const TEAM_SPIN: u32 = 1024;

/// A persistent worker team with epoch-ticketed batch dispatch.
///
/// Built for the sharded stepper's per-cycle fan-outs: threads are
/// spawned once at construction and reused for every batch, so the
/// per-dispatch cost is a mutex publish plus a condvar notify instead
/// of a full `thread::scope` spawn/join round trip. See the module
/// docs for the protocol.
///
/// `Team::new(1)` (or fewer) spawns no threads at all; every batch then
/// runs inline on the caller. Batches of one task also run inline.
///
/// Dropping the team sets the shutdown flag and joins every worker, so
/// a `Team` owned by a simulation never outlives it.
pub struct Team {
    shared: Arc<TeamShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("parallelism", &self.parallelism())
            .finish()
    }
}

/// Locks a team mutex, shrugging off poisoning: task panics are caught
/// inside the job closures, and no invariant-bearing state is mutated
/// under these locks anyway.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Claims and runs tasks from `batch` until its cursor runs past the
/// end. Runs on workers *and* on the dispatching thread, so batch
/// completion never depends on a worker waking up.
fn team_run_batch(batch: &TeamBatch) {
    loop {
        let i = batch.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= batch.jobs.len() {
            return;
        }
        let job = lock(&batch.jobs[i]).take();
        if let Some(job) = job {
            job();
        }
    }
}

impl Team {
    /// Creates a team of `parallelism - 1` worker threads (the
    /// dispatching thread is the final member: it claims tasks from
    /// every batch it publishes).
    pub fn new(parallelism: usize) -> Team {
        let shared = Arc::new(TeamShared {
            state: Mutex::new(TeamState {
                epoch: 0,
                batch: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
            epoch_hint: AtomicU64::new(0),
        });
        let workers = (1..parallelism.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Team::worker_loop(&shared))
            })
            .collect();
        Team { shared, workers }
    }

    /// The team's total parallelism: worker threads plus the
    /// dispatching caller.
    pub fn parallelism(&self) -> usize {
        self.workers.len() + 1
    }

    fn worker_loop(shared: &TeamShared) {
        let mut seen = 0u64;
        loop {
            // Spin briefly before parking: in steady-state stepping the
            // next batch lands microseconds after the last one retired.
            let mut spins = 0;
            while shared.epoch_hint.load(Ordering::Acquire) == seen && spins < TEAM_SPIN {
                std::hint::spin_loop();
                spins += 1;
            }
            let batch = {
                let mut state = lock(&shared.state);
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen {
                        seen = state.epoch;
                        if let Some(b) = &state.batch {
                            break Arc::clone(b);
                        }
                        // The epoch advanced but its batch already
                        // retired (the orchestrator and the other
                        // workers finished it): keep waiting.
                    }
                    state = shared.cv.wait(state).unwrap_or_else(|p| p.into_inner());
                }
            };
            team_run_batch(&batch);
        }
    }

    /// Runs `tasks` on the team, returning results in submission order.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked — after the whole batch has drained,
    /// with the first failing task's index and message. Use
    /// [`Team::try_run`] to handle task panics as values.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match self.try_run(tasks) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Team::run`], but surfaces a task panic as a [`PoolError`]
    /// (lowest failing index) instead of resurfacing it.
    ///
    /// Every batch drains fully before this returns — a panicking task
    /// neither hangs the batch nor wedges the team, and later batches
    /// dispatch normally.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = tasks.len();
        if self.workers.is_empty() || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, task) in tasks.into_iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        return Err(PoolError {
                            task_index: i,
                            message: panic_message(&payload),
                        })
                    }
                }
            }
            return Ok(out);
        }

        // Result delivery rides inside each job, so the shared batch
        // stays untyped. The channel also provides the happens-before
        // edge: once all `n` results are received, every task closure
        // (and everything it captured) has been dropped.
        let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
        let jobs: Vec<Mutex<Option<TeamJob>>> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| {
                let tx = tx.clone();
                let job: TeamJob = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task))
                        .map_err(|payload| panic_message(&payload));
                    let _ = tx.send((i, result));
                });
                Mutex::new(Some(job))
            })
            .collect();
        drop(tx);
        let batch = Arc::new(TeamBatch {
            jobs,
            cursor: AtomicUsize::new(0),
        });

        {
            let mut state = lock(&self.shared.state);
            state.epoch = state.epoch.wrapping_add(1);
            state.batch = Some(Arc::clone(&batch));
            self.shared.epoch_hint.store(state.epoch, Ordering::Release);
            self.shared.cv.notify_all();
        }

        // The dispatcher is a team member too: claim from the same
        // cursor so the batch completes even if every worker is still
        // parked.
        team_run_batch(&batch);

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_error: Option<PoolError> = None;
        for _ in 0..n {
            let (i, result) = rx
                .recv()
                .expect("every team job sends exactly one result before dropping its sender");
            match result {
                Ok(v) => out[i] = Some(v),
                Err(message) => {
                    if first_error.as_ref().is_none_or(|e| i < e.task_index) {
                        first_error = Some(PoolError {
                            task_index: i,
                            message,
                        });
                    }
                }
            }
        }

        // Retire the batch so no worker holds it across the gap to the
        // next dispatch (its task slots are already empty).
        lock(&self.shared.state).batch = None;

        match first_error {
            Some(e) => Err(e),
            None => Ok(out
                .into_iter()
                .map(|v| v.expect("all team results received"))
                .collect()),
        }
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            state.epoch = state.epoch.wrapping_add(1);
            self.shared.epoch_hint.store(state.epoch, Ordering::Release);
            self.shared.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker can only terminate by observing `shutdown`; if
            // one somehow panicked the team is already compromised, so
            // surfacing that here is correct.
            if handle.join().is_err() {
                panic!("team worker panicked outside a task");
            }
        }
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_path_spawns_no_threads() {
        // jobs=1 runs inline: thread-local state set by tasks is
        // visible to the caller afterwards.
        thread_local! {
            static MARK: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        let tasks: Vec<_> = (0..4usize)
            .map(|i| move || MARK.with(|m| m.set(m.get() + i)))
            .collect();
        run(1, tasks);
        assert_eq!(MARK.with(std::cell::Cell::get), 0 + 1 + 2 + 3);
    }

    #[test]
    fn parallel_results_in_submission_order() {
        let tasks: Vec<_> = (0..100u64).map(|i| move || i * 3).collect();
        let out = run(8, tasks);
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run(64, vec![|| 1u32, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u32> = run(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn work_is_actually_shared_and_stolen() {
        // One deque gets all the slow tasks by the round-robin deal;
        // with stealing every task still completes and every result
        // lands in its slot.
        let executed = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..40usize)
            .map(|i| {
                let executed = &executed;
                move || {
                    if i % 4 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = run(4, tasks);
        assert_eq!(executed.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn panic_surfaces_as_error_with_lowest_index() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i == 5 || i == 11 {
                        panic!("boom at {i}");
                    }
                    i as u32
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = try_run(4, tasks).unwrap_err();
        assert_eq!(err.task_index, 5);
        assert_eq!(err.message, "boom at 5");
    }

    #[test]
    fn serial_panic_surfaces_too() {
        let err = try_run(1, vec![|| panic!("inline boom")]).unwrap_err();
        assert_eq!(err.task_index, 0);
        assert_eq!(err.message, "inline boom");
        assert!(err.to_string().contains("pool task 0 panicked"));
    }

    #[test]
    fn effective_jobs_explicit_request_wins() {
        assert_eq!(effective_jobs(Some(3)), 3);
        // A zero request falls through to the environment/default.
        assert!(effective_jobs(Some(0)) >= 1);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn team_results_in_submission_order() {
        let team = Team::new(4);
        assert_eq!(team.parallelism(), 4);
        let tasks: Vec<_> = (0..100u64).map(|i| move || i * 3).collect();
        let out = team.run(tasks);
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn team_of_one_spawns_no_threads() {
        // parallelism <= 1 runs batches inline: thread-local state set
        // by tasks is visible to the caller afterwards.
        thread_local! {
            static MARK: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        let team = Team::new(1);
        assert_eq!(team.parallelism(), 1);
        let tasks: Vec<_> = (0..4usize)
            .map(|i| move || MARK.with(|m| m.set(m.get() + i)))
            .collect();
        team.run(tasks);
        assert_eq!(MARK.with(std::cell::Cell::get), 0 + 1 + 2 + 3);
    }

    #[test]
    fn team_reused_across_many_batches() {
        // The whole point of the team: many small batches on the same
        // threads. 200 batches of 8 tasks must all come back correct.
        let team = Team::new(4);
        for round in 0..200u64 {
            let tasks: Vec<_> = (0..8u64).map(|i| move || round * 100 + i).collect();
            let out = team.run(tasks);
            assert_eq!(out, (0..8u64).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn team_empty_batch() {
        let team = Team::new(4);
        let out: Vec<u32> = team.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn team_survives_panicking_task() {
        let team = Team::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i == 5 || i == 11 {
                        panic!("team boom at {i}");
                    }
                    i as u32
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = team.try_run(tasks).unwrap_err();
        assert_eq!(err.task_index, 5);
        assert_eq!(err.message, "team boom at 5");
        // The team stays usable: a later batch runs to completion.
        let out = team.run((0..8u32).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(out, (1..=8u32).collect::<Vec<_>>());
    }

    #[test]
    fn prop_team_panic_reports_lowest_index_and_team_stays_usable() {
        // Property: for random batch sizes and random panic subsets,
        // try_run reports the lowest panicking index, and the very next
        // batch on the same team completes correctly.
        let team = Team::new(3);
        crate::check::check(
            "pool::prop_team_panic_reports_lowest_index_and_team_stays_usable",
            crate::check::Config::cases(32),
            |src| {
                let n = src.usize_in(1..24);
                let mut panics = Vec::new();
                for i in 0..n {
                    if src.usize_in(0..4) == 0 {
                        panics.push(i);
                    }
                }
                let panic_set = panics.clone();
                let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..n)
                    .map(|i| {
                        let boom = panic_set.contains(&i);
                        Box::new(move || {
                            if boom {
                                panic!("prop boom {i}");
                            }
                            i * 7
                        }) as Box<dyn FnOnce() -> usize + Send>
                    })
                    .collect();
                match team.try_run(tasks) {
                    Ok(out) => {
                        assert!(panics.is_empty(), "panicking batch reported Ok");
                        assert_eq!(out, (0..n).map(|i| i * 7).collect::<Vec<_>>());
                    }
                    Err(e) => {
                        assert_eq!(Some(e.task_index), panics.first().copied());
                        assert_eq!(e.message, format!("prop boom {}", e.task_index));
                    }
                }
                // Later batches still run.
                let out = team.run((0..4usize).map(|i| move || i + 1).collect::<Vec<_>>());
                assert_eq!(out, vec![1, 2, 3, 4]);
            },
        );
    }

    #[test]
    fn team_drop_joins_workers() {
        // Dropping a team must not leave threads behind. /proc is the
        // only std-visible thread census; skip quietly where absent.
        let count_threads = || -> Option<usize> {
            let status = std::fs::read_to_string("/proc/self/status").ok()?;
            status
                .lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        };
        let Some(before) = count_threads() else {
            return;
        };
        for _ in 0..20 {
            let team = Team::new(4);
            let out = team.run((0..8u32).map(|i| move || i).collect::<Vec<_>>());
            assert_eq!(out.len(), 8);
        }
        let after = count_threads().expect("thread census available above");
        assert!(
            after <= before,
            "team drops leaked threads: {before} -> {after}"
        );
    }
}
