//! A hermetic work-stealing task pool on [`std::thread::scope`].
//!
//! The experiment sweeps are embarrassingly parallel: every point is an
//! independent deterministic simulation owning its own seed. This
//! module runs such a batch across threads while keeping the *results*
//! exactly what a serial loop would produce — outputs come back in
//! submission order, so callers are bit-identical under any job count.
//!
//! # Model
//!
//! [`run`] takes a `Vec` of `FnOnce` tasks. With `jobs <= 1` (or a
//! single task) it executes them inline on the caller's thread — the
//! serial fallback is literally a `for` loop, not a one-worker pool.
//! Otherwise tasks are dealt round-robin onto per-worker deques; each
//! scoped worker pops its own deque from the front and, when empty,
//! *steals* from the back of the others, so uneven point costs (high
//! offered loads simulate slower) still balance. Results travel back
//! over a channel tagged with their submission index.
//!
//! A panicking task does not hang or poison the pool: every task body
//! runs under [`std::panic::catch_unwind`], workers keep draining, and
//! [`try_run`] reports the lowest failing task index with its panic
//! message ([`run`] resurfaces it as a panic once all workers have
//! parked).
//!
//! # Choosing a job count
//!
//! [`effective_jobs`] resolves, in order: an explicit request (e.g. a
//! `--jobs N` flag), the `CR_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let squares = cr_sim::pool::run(4, tasks);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A task panicked inside the pool.
///
/// Carries the submission index of the failing task (the lowest one,
/// if several failed) and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the (first) failing task.
    pub task_index: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task {} panicked: {}", self.task_index, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Resolves how many worker threads a sweep should use.
///
/// Priority: `request` (if `Some` and non-zero) → the `CR_JOBS`
/// environment variable (if set and parseable as a non-zero integer) →
/// [`std::thread::available_parallelism`] → 1.
pub fn effective_jobs(request: Option<usize>) -> usize {
    if let Some(n) = request {
        if n > 0 {
            return n;
        }
    }
    if let Some(n) = std::env::var("CR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `tasks` on up to `jobs` threads, returning results in
/// submission order.
///
/// `jobs <= 1` executes inline on the caller's thread (no threads
/// spawned). The thread count is additionally capped at the task
/// count.
///
/// # Panics
///
/// Panics if any task panicked — after all workers have finished, with
/// the first failing task's index and message. Use [`try_run`] to
/// handle task panics as values.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    match try_run(jobs, tasks) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run`], but surfaces a worker panic as a [`PoolError`] instead
/// of resurfacing it.
///
/// On error the results of the tasks that did succeed are dropped; the
/// pool itself always drains every task (no hang, no leaked threads —
/// the scope joins all workers before this returns).
pub fn try_run<T, F>(jobs: usize, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(PoolError {
                        task_index: i,
                        message: panic_message(&payload),
                    })
                }
            }
        }
        return Ok(out);
    }

    let workers = jobs.min(n);
    // Deal tasks round-robin so every worker starts with local work;
    // stealing evens out whatever imbalance the deal leaves.
    let mut deques: Vec<VecDeque<(usize, F)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        deques[i % workers].push_back((i, task));
    }
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> = deques.into_iter().map(Mutex::new).collect();
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((i, task)) = claim(deques, w) {
                    let result = catch_unwind(AssertUnwindSafe(task))
                        .map_err(|payload| panic_message(&payload));
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_error: Option<PoolError> = None;
        for (i, result) in rx {
            match result {
                Ok(v) => out[i] = Some(v),
                Err(message) => {
                    if first_error.as_ref().is_none_or(|e| i < e.task_index) {
                        first_error = Some(PoolError {
                            task_index: i,
                            message,
                        });
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out
                .into_iter()
                .map(|v| v.expect("channel closed only after all tasks reported"))
                .collect()),
        }
    })
}

/// Pops the next task for worker `w`: its own deque front first, then
/// the *back* of the other deques (classic work stealing — thieves take
/// the coldest work). Returns `None` when every deque is empty, which
/// is final: tasks never enqueue new tasks.
fn claim<E>(deques: &[Mutex<VecDeque<E>>], w: usize) -> Option<E> {
    // A worker panic cannot poison these mutexes (tasks run *after*
    // the lock is released), but be robust anyway.
    let mut own = deques[w].lock().unwrap_or_else(|p| p.into_inner());
    if let Some(task) = own.pop_front() {
        return Some(task);
    }
    drop(own);
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        let mut q = deques[victim].lock().unwrap_or_else(|p| p.into_inner());
        if let Some(task) = q.pop_back() {
            return Some(task);
        }
    }
    None
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_path_spawns_no_threads() {
        // jobs=1 runs inline: thread-local state set by tasks is
        // visible to the caller afterwards.
        thread_local! {
            static MARK: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        let tasks: Vec<_> = (0..4usize)
            .map(|i| move || MARK.with(|m| m.set(m.get() + i)))
            .collect();
        run(1, tasks);
        assert_eq!(MARK.with(std::cell::Cell::get), 0 + 1 + 2 + 3);
    }

    #[test]
    fn parallel_results_in_submission_order() {
        let tasks: Vec<_> = (0..100u64).map(|i| move || i * 3).collect();
        let out = run(8, tasks);
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run(64, vec![|| 1u32, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u32> = run(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn work_is_actually_shared_and_stolen() {
        // One deque gets all the slow tasks by the round-robin deal;
        // with stealing every task still completes and every result
        // lands in its slot.
        let executed = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..40usize)
            .map(|i| {
                let executed = &executed;
                move || {
                    if i % 4 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = run(4, tasks);
        assert_eq!(executed.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn panic_surfaces_as_error_with_lowest_index() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i == 5 || i == 11 {
                        panic!("boom at {i}");
                    }
                    i as u32
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = try_run(4, tasks).unwrap_err();
        assert_eq!(err.task_index, 5);
        assert_eq!(err.message, "boom at 5");
    }

    #[test]
    fn serial_panic_surfaces_too() {
        let err = try_run(1, vec![|| panic!("inline boom")]).unwrap_err();
        assert_eq!(err.task_index, 0);
        assert_eq!(err.message, "inline boom");
        assert!(err.to_string().contains("pool task 0 panicked"));
    }

    #[test]
    fn effective_jobs_explicit_request_wins() {
        assert_eq!(effective_jobs(Some(3)), 3);
        // A zero request falls through to the environment/default.
        assert!(effective_jobs(Some(0)) >= 1);
        assert!(effective_jobs(None) >= 1);
    }
}
