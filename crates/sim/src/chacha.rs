//! An in-repo ChaCha8 keystream generator.
//!
//! This is the deterministic core behind [`crate::SimRng`]. The
//! workspace builds with **zero external dependencies** (see the
//! "Offline / hermetic build" section of the README), so instead of
//! pulling `rand_chacha` from a registry we implement the ChaCha block
//! function ourselves. ChaCha is a tiny algorithm — a 4×4 matrix of
//! `u32` words stirred by add/rotate/xor quarter-rounds — and the
//! 8-round variant is more than enough for simulation-quality
//! randomness while being fully specified and portable: the same seed
//! produces the same stream on every platform, toolchain and build.
//!
//! Layout follows D. J. Bernstein's original ChaCha specification:
//! a 64-bit block counter (words 12–13) and a 64-bit stream id
//! (words 14–15). The 256-bit key is expanded from a 64-bit seed with
//! the PCG32 output function, mirroring the scheme the `rand` crate
//! family uses for `seed_from_u64` so historical seeds land in the
//! same key space.
//!
//! The exact output stream is pinned by golden-value tests in
//! `crates/sim/tests/rng_golden.rs`; any change to this file that
//! shifts the stream is a breaking change to every recorded experiment
//! and must be called out loudly (see DESIGN.md "Determinism & RNG").

/// "expand 32-byte k", the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of double-rounds for the ChaCha8 variant.
const DOUBLE_ROUNDS: usize = 4;

/// One ChaCha quarter-round on four words of the working state.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 16-word ChaCha8 output block for (`key`, `stream`,
/// `counter`).
fn block(key: &[u32; 8], stream: u64, counter: u64, out: &mut [u32; 16]) {
    let initial: [u32; 16] = [
        CONSTANTS[0],
        CONSTANTS[1],
        CONSTANTS[2],
        CONSTANTS[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let mut state = initial;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 12, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

/// Expands a 64-bit seed into a 256-bit ChaCha key.
///
/// Eight PCG32 outputs (multiplier/increment from the PCG reference
/// implementation), one per key word. This keeps low-Hamming-weight
/// seeds (0, 1, 2, …) well separated in key space.
fn expand_seed(seed: u64) -> [u32; 8] {
    const MUL: u64 = 6_364_136_223_846_793_005;
    const INC: u64 = 11_634_580_027_462_260_723;
    let mut state = seed;
    let mut key = [0u32; 8];
    for word in &mut key {
        state = state.wrapping_mul(MUL).wrapping_add(INC);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        *word = xorshifted.rotate_right(rot);
    }
    key
}

/// A ChaCha8 keystream viewed as an endless sequence of `u32` words.
///
/// The generator owns the key, the block counter, and a one-block
/// buffer; callers pull words with [`ChaCha8::next_word`] and the
/// buffer refills transparently.
#[derive(Debug, Clone)]
pub(crate) struct ChaCha8 {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "buffer exhausted".
    idx: usize,
}

impl ChaCha8 {
    /// Creates a generator from a 64-bit seed, on stream 0.
    pub(crate) fn from_seed(seed: u64) -> Self {
        ChaCha8 {
            key: expand_seed(seed),
            stream: 0,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Number of keystream words handed out so far.
    ///
    /// Pure read: the stream position is derived from the block counter
    /// and the buffer cursor, so calling this never advances the
    /// golden-pinned keystream. A fresh generator reports 0.
    pub(crate) fn words_consumed(&self) -> u64 {
        // After a refill `counter` is one past the buffered block, and
        // `idx` words of that block have been read. Fresh generators
        // (counter 0, idx 16) land on 0 exactly.
        (self.counter * 16 + self.idx as u64) - 16
    }

    /// Returns the next keystream word.
    #[inline]
    pub(crate) fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            block(&self.key, self.stream, self.counter, &mut self.buf);
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic_and_counter_sensitive() {
        let key = expand_seed(1);
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        block(&key, 0, 0, &mut a);
        block(&key, 0, 0, &mut b);
        assert_eq!(a, b);
        block(&key, 0, 1, &mut b);
        assert_ne!(a, b);
        block(&key, 1, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn seed_expansion_separates_adjacent_seeds() {
        let k0 = expand_seed(0);
        let k1 = expand_seed(1);
        assert_ne!(k0, k1);
        // No shared words either — the PCG output function diffuses.
        assert!(k0.iter().zip(&k1).all(|(a, b)| a != b));
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut g = ChaCha8::from_seed(7);
        let first_two_blocks: Vec<u32> = (0..32).map(|_| g.next_word()).collect();
        let mut h = ChaCha8::from_seed(7);
        for &w in &first_two_blocks {
            assert_eq!(h.next_word(), w);
        }
        // Words 16.. come from counter 1, not a repeat of counter 0.
        assert_ne!(&first_two_blocks[..16], &first_two_blocks[16..]);
    }

    #[test]
    fn chacha20_reference_structure() {
        // Sanity-check the quarter-round against the example in RFC 7539
        // §2.1.1 (the quarter-round is shared by every ChaCha variant).
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }
}
