//! A tiny seeded property-testing framework with shrinking.
//!
//! The in-repo replacement for the slice of `proptest` this workspace
//! used: run a property over many randomly generated cases, and when
//! one fails, *shrink* it to a smaller counterexample before
//! reporting. Everything is deterministic — cases derive from
//! [`SimRng`] streams keyed by a fixed base seed, so a failure
//! reproduces identically on every machine and every run, which is the
//! same reproducibility argument the simulator itself makes.
//!
//! # Model
//!
//! A property is a closure over a [`Source`], which hands out random
//! values (`usize_in`, `u64_any`, `f64_in`, `weighted`, …). Behind the
//! scenes every draw is recorded on a **tape** of raw `u64`s. When the
//! property panics, the runner re-executes it on mutated tapes —
//! halving entries toward zero and truncating the tail (draws past the
//! end read as zero) — and keeps any mutation that still fails. Since
//! every generator maps smaller raw draws to smaller values (`lo +
//! draw % width` starts at the range's low end, lengths shrink toward
//! their minimum), halving the tape shrinks the test case in the
//! domain too. The shrunk tape is printed for replay with [`replay`].
//!
//! # Examples
//!
//! ```
//! use cr_sim::check::{check, Config};
//!
//! check("addition_commutes", Config::default(), |src| {
//!     let a = src.u64_any() % 1000;
//!     let b = src.u64_any() % 1000;
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::{Rng, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a [`check`] run is parameterized.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (default 64; override with the
    /// `CR_CHECK_CASES` environment variable).
    pub cases: u32,
    /// Base seed all case streams derive from.
    pub seed: u64,
    /// Upper bound on shrink candidate executions after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("CR_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config {
            cases,
            seed: 0x5EED_CA5E,
            max_shrink_steps: 2_000,
        }
    }
}

impl Config {
    /// A config running `cases` random cases (seed and shrink budget
    /// at their defaults).
    pub fn cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The value source a property draws from.
///
/// In generation mode draws come from a [`SimRng`] and are recorded;
/// in shrink/replay mode they come from a fixed tape (reads past the
/// end return zero, i.e. the low end of whatever range is asked for).
pub struct Source<'a> {
    tape: &'a mut Vec<u64>,
    pos: usize,
    rng: Option<&'a mut SimRng>,
}

impl<'a> Source<'a> {
    fn draw(&mut self) -> u64 {
        let v = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else if let Some(rng) = self.rng.as_mut() {
            let v = rng.next_u64();
            self.tape.push(v);
            v
        } else {
            0
        };
        self.pos += 1;
        v
    }

    /// A raw uniform `u64`. Shrinks toward zero.
    pub fn u64_any(&mut self) -> u64 {
        self.draw()
    }

    /// Uniform in the half-open range; shrinks toward `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.draw() as usize) % (range.end - range.start)
    }

    /// Uniform in the half-open range; shrinks toward `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.draw() % (range.end - range.start)
    }

    /// Uniform in the half-open range; shrinks toward `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// A boolean; shrinks toward `false`.
    pub fn bool_any(&mut self) -> bool {
        self.draw() % 2 == 1
    }

    /// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        let unit = (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// Picks an index with the given relative weights; shrinks toward
    /// index 0 (put the tamest alternative first).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut x = self.draw() % total;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!()
    }

    /// A vector with length drawn from `len` and elements from `f`;
    /// shrinks toward shorter vectors of smaller elements.
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty.
    pub fn vec_with<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Source<'_>) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Outcome of one property execution.
fn run_once(prop: &impl Fn(&mut Source<'_>), tape: &mut Vec<u64>, rng: Option<&mut SimRng>)
    -> Result<(), String>
{
    let mut src = Source { tape, pos: 0, rng };
    match catch_unwind(AssertUnwindSafe(|| prop(&mut src))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `prop` on `cfg.cases` random cases; on failure, shrinks the
/// counterexample and panics with the shrunk tape and the original
/// assertion message.
///
/// The property signals failure by panicking (use the std `assert!`
/// family). Within one `check` call, case `i` is fully determined by
/// `(cfg.seed, i)`.
///
/// # Panics
///
/// Panics (test failure) if any case fails; the message contains the
/// case number, the shrunk tape for [`replay`], and the underlying
/// assertion message.
pub fn check(name: &str, cfg: Config, prop: impl Fn(&mut Source<'_>)) {
    for case in 0..cfg.cases {
        // Distinct, consumption-independent stream per case.
        let mut rng = SimRng::from_seed(cfg.seed).split(u64::from(case));
        let mut tape = Vec::new();
        if let Err(first_failure) = run_once(&prop, &mut tape, Some(&mut rng)) {
            let (tape, message) = shrink(&prop, tape, first_failure, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed (case {case}/{total}, seed {seed:#x}).\n\
                 shrunk tape: {tape:?}\n\
                 replay with: cr_sim::check::replay(&{tape:?}, ..)\n\
                 failure: {message}",
                total = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Re-runs a property on a recorded tape (from a [`check`] failure
/// message) for debugging. Draws beyond the tape read as zero.
pub fn replay(tape: &[u64], prop: impl Fn(&mut Source<'_>)) {
    let mut tape = tape.to_vec();
    if let Err(message) = run_once(&prop, &mut tape, None) {
        panic!("replayed property failed: {message}");
    }
}

/// Greedily shrinks a failing tape: repeatedly halve entries toward
/// zero and truncate the tail, keeping any candidate that still fails,
/// until a fixed point or the step budget runs out.
fn shrink(
    prop: &impl Fn(&mut Source<'_>),
    mut tape: Vec<u64>,
    mut message: String,
    max_steps: u32,
) -> (Vec<u64>, String) {
    let mut steps = 0u32;
    let mut made_progress = true;
    while made_progress && steps < max_steps {
        made_progress = false;

        // Drop the tail half, then quarter, … (draws past the end read
        // as zero, so truncation is the cheapest big simplification).
        let mut keep = tape.len() / 2;
        while keep < tape.len() && steps < max_steps {
            let mut candidate = tape[..keep].to_vec();
            steps += 1;
            if let Err(m) = run_once(prop, &mut candidate, None) {
                candidate.truncate(keep);
                tape = candidate;
                message = m;
                made_progress = true;
                break;
            }
            keep = keep + (tape.len() - keep).div_ceil(2);
        }

        // Halve individual entries toward zero.
        for i in 0..tape.len() {
            while tape[i] > 0 && steps < max_steps {
                let mut candidate = tape.clone();
                candidate[i] /= 2;
                let halved = candidate[i];
                steps += 1;
                if let Err(m) = run_once(prop, &mut candidate, None) {
                    // run_once may have appended; keep only the prefix
                    // actually needed next round.
                    tape[i] = halved;
                    message = m;
                    made_progress = true;
                } else {
                    break;
                }
            }
        }
    }
    (tape, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let runs = AtomicU32::new(0);
        check("count_runs", Config::cases(10), |src| {
            let _ = src.u64_any();
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn failing_property_reports_shrunk_tape() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("find_big", Config::cases(50), |src| {
                let v = src.u64_in(0..1000);
                assert!(v < 500, "found {v}");
            })
        }));
        let message = panic_message(&result.unwrap_err());
        assert!(message.contains("property 'find_big' failed"), "{message}");
        assert!(message.contains("shrunk tape"), "{message}");
        // The reported draw still maps into the failing region, and
        // halving it once escapes (local shrink minimum).
        let tape_part = message.split("shrunk tape: ").nth(1).unwrap();
        let nums: Vec<u64> = tape_part
            .trim_start_matches('[')
            .split(']')
            .next()
            .unwrap()
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        assert_eq!(nums.len(), 1);
        assert!(nums[0] % 1000 >= 500, "tape {nums:?}");
        assert!((nums[0] / 2) % 1000 < 500, "not a shrink minimum: {nums:?}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            // Property that never fails, recording its inputs.
            let cfg = Config {
                cases: 5,
                seed: 42,
                max_shrink_steps: 0,
            };
            let seen_cell = std::cell::RefCell::new(&mut seen);
            check("record", cfg, |src| {
                seen_cell.borrow_mut().push(src.u64_any());
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn replay_reproduces_draws() {
        replay(&[7, 3], |src| {
            assert_eq!(src.u64_any(), 7);
            assert_eq!(src.u64_any(), 3);
            // Past the tape: zeros.
            assert_eq!(src.u64_any(), 0);
        });
    }

    #[test]
    fn generators_honour_ranges() {
        check("ranges", Config::cases(32), |src| {
            assert!((3..10).contains(&src.usize_in(3..10)));
            assert!((100..200).contains(&src.u64_in(100..200)));
            assert!((5..9).contains(&src.u32_in(5..9)));
            let f = src.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let w = src.weighted(&[1, 0, 3]);
            assert!(w == 0 || w == 2);
            let v = src.vec_with(2..5, |s| s.bool_any());
            assert!((2..5).contains(&v.len()));
        });
    }

    #[test]
    fn zero_tape_yields_range_minima() {
        replay(&[], |src| {
            assert_eq!(src.usize_in(3..10), 3);
            assert_eq!(src.u64_in(100..200), 100);
            assert!(!src.bool_any());
            assert_eq!(src.f64_in(1.0, 2.0), 1.0);
            assert_eq!(src.weighted(&[2, 1]), 0);
            assert_eq!(src.vec_with(0..4, |s| s.u64_any()).len(), 0);
        });
    }
}
