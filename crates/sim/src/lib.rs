//! Simulation substrate for the Compressionless Routing reproduction.
//!
//! This crate holds the small, dependency-light building blocks shared by
//! every other crate in the workspace:
//!
//! * [`ids`] — strongly-typed identifiers for nodes, links, ports,
//!   virtual channels and messages ([`NodeId`], [`LinkId`], …).
//! * [`cycle`] — the [`Cycle`] newtype used as the simulation clock.
//! * [`rng`] — deterministic, splittable random-number generation
//!   ([`SimRng`], backed by an in-repo ChaCha8 keystream): every
//!   experiment in the reproduction is exactly reproducible from a
//!   single 64-bit seed.
//! * [`fifo`] — a bounded ring-buffer FIFO ([`Fifo`]) used for flit
//!   buffers, link pipelines and injection queues.
//! * [`json`] — a minimal JSON value/writer/parser for result dumps.
//! * [`check`] — a seeded property-testing mini-framework with
//!   shrinking, used by the workspace's `tests/properties.rs` suites.
//! * [`pool`] — a work-stealing task pool on scoped threads, used by
//!   the experiment harness to run sweep points in parallel while
//!   keeping results in submission order (bit-identical to serial).
//! * [`sched`] — generation-stamped active sets ([`sched::ActiveSet`])
//!   backing the network's skip-the-idle cycle scheduler.
//! * [`trace`] — typed protocol events ([`trace::Event`]) behind a
//!   bounded ring-buffer sink ([`trace::TraceSink`]) that is a no-op
//!   when disabled; the observability layer of the protocol crates.
//!
//! The crate depends on nothing outside `std` — it is the bottom of a
//! fully hermetic, offline-buildable workspace.
//!
//! # Examples
//!
//! ```
//! use cr_sim::{Cycle, Fifo, NodeId, Rng, SimRng};
//!
//! let mut rng = SimRng::from_seed(42);
//! let node = NodeId::new(rng.gen_range(0..64u32));
//! assert!(node.index() < 64);
//!
//! let mut fifo: Fifo<u32> = Fifo::with_capacity(2);
//! fifo.push(1).unwrap();
//! fifo.push(2).unwrap();
//! assert!(fifo.is_full());
//! assert_eq!(fifo.pop(), Some(1));
//!
//! let t = Cycle::ZERO + 10;
//! assert_eq!(t.as_u64(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;
pub mod check;
pub mod cycle;
pub mod fifo;
pub mod ids;
pub mod json;
pub mod pool;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod trace;

pub use cycle::Cycle;
pub use fifo::{Fifo, FifoFullError};
pub use ids::{LinkId, MessageId, NodeId, PortId, VcId};
pub use json::Json;
pub use rng::{Rng, SimRng};
