//! Structured event tracing for the protocol stack.
//!
//! The simulator's end-of-run aggregates (`SimReport`) answer *how
//! much* — kills, retransmissions, latency percentiles — but not
//! *why*: which link a worm stalled on, which attempt finally
//! delivered, whether a kill came from a source timeout or a detected
//! fault. This module provides the missing signal as a typed event
//! stream:
//!
//! * [`Event`] — one protocol-level occurrence (injection start,
//!   commitment, kill, scheduled retransmit, delivery, corruption
//!   detection, or a finished link-stall streak).
//! * [`TraceSink`] — where events go. The [`TraceSink::Disabled`]
//!   variant is a no-op: an emit costs exactly one enum-discriminant
//!   branch, so the hot loop is unaffected and reports stay
//!   byte-identical with tracing off. The [`TraceSink::Ring`] variant
//!   is a bounded ring buffer that drops the *oldest* events once
//!   full (the tail of a run is usually the interesting part) and
//!   counts what it dropped.
//!
//! Events carry raw ids (`message` as `u64`, `attempt` as `u32`)
//! rather than protocol-crate types so this crate stays at the bottom
//! of the dependency graph. Each event serializes to a single-line
//! JSON object via [`Event::to_json`]; the experiment harness dumps
//! one event per line (JSON-lines) under `--trace <path>`.
//!
//! # Examples
//!
//! ```
//! use cr_sim::trace::{Event, TraceSink};
//! use cr_sim::{Cycle, NodeId, MessageId};
//!
//! let mut sink = TraceSink::ring(4);
//! sink.emit(|| Event::Inject {
//!     at: Cycle::new(3),
//!     src: NodeId::new(0),
//!     dst: NodeId::new(5),
//!     message: MessageId::new(7),
//!     attempt: 0,
//! });
//! assert_eq!(sink.stats().emitted, 1);
//! let events = sink.drain();
//! assert_eq!(events.len(), 1);
//! assert!(events[0].to_json().to_string().contains("\"inject\""));
//! ```

use crate::cycle::Cycle;
use crate::ids::{LinkId, MessageId, NodeId};
use crate::json::Json;
use std::collections::VecDeque;

/// Why a worm was killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillCause {
    /// The source injector stalled past the kill timeout before the
    /// worm committed.
    SourceTimeout,
    /// The fault model flagged the worm (corrupted flit, dead link).
    Fault,
    /// Path-wide detection: a router observed the stall mid-path.
    PathWide,
}

impl KillCause {
    /// Stable lower-case label used in JSON output.
    pub const fn as_str(self) -> &'static str {
        match self {
            KillCause::SourceTimeout => "source_timeout",
            KillCause::Fault => "fault",
            KillCause::PathWide => "path_wide",
        }
    }
}

/// Why an output link spent a cycle blocked while it had a flit ready
/// to forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The crossbar input feeding the link was already used this
    /// cycle, or the channel is held by a frozen (killed) worm.
    BusyChannel,
    /// The output link is marked dead by the fault model.
    DeadLink,
    /// The downstream virtual channel advertised zero credits.
    Backpressure,
}

impl StallCause {
    /// Stable lower-case label used in JSON output.
    pub const fn as_str(self) -> &'static str {
        match self {
            StallCause::BusyChannel => "busy_channel",
            StallCause::DeadLink => "dead_link",
            StallCause::Backpressure => "backpressure",
        }
    }
}

/// One protocol-level occurrence.
///
/// `message`/`attempt` pairs name one worm instance in flight (a
/// retransmitted message keeps its [`MessageId`] and bumps the
/// attempt). `at` is always the cycle the event happened; for
/// [`Event::LinkStall`] it is the cycle the stall streak *started*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A worm began injecting (first pickup or a retry leaving
    /// backoff).
    Inject {
        /// Cycle of the first flit of this attempt entering the
        /// network.
        at: Cycle,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The message.
        message: MessageId,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// A worm crossed its commitment point (injected `I_min` flits):
    /// it can no longer be killed by the source.
    Commit {
        /// Cycle the commitment threshold was crossed.
        at: Cycle,
        /// Source node.
        src: NodeId,
        /// The message.
        message: MessageId,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// A worm was killed (teardown began).
    Kill {
        /// Cycle the kill was initiated.
        at: Cycle,
        /// Node where the kill originated (source for timeouts, the
        /// detecting router for faults/path-wide).
        node: NodeId,
        /// The message.
        message: MessageId,
        /// Zero-based attempt number of the killed worm.
        attempt: u32,
        /// Why it was killed.
        cause: KillCause,
    },
    /// The source scheduled a retransmission of a killed worm.
    RetransmitScheduled {
        /// Cycle the retransmit was scheduled (the kill's arrival at
        /// the source).
        at: Cycle,
        /// The message.
        message: MessageId,
        /// Zero-based attempt number the retry will carry.
        attempt: u32,
        /// Earliest cycle the retry may start injecting.
        resume_at: Cycle,
    },
    /// A complete message was delivered to its destination.
    Deliver {
        /// Cycle the tail flit was consumed.
        at: Cycle,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The message.
        message: MessageId,
        /// Total injection attempts the message needed.
        attempts: u32,
        /// Creation-to-delivery latency in cycles.
        latency: u64,
    },
    /// The fault model flagged a flit as corrupted on a link.
    CorruptionDetected {
        /// Cycle of detection.
        at: Cycle,
        /// The link the corrupted flit arrived on.
        link: LinkId,
        /// The message.
        message: MessageId,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// A finished stall streak on an output link: the link had a flit
    /// ready for `cycles` consecutive cycles but could not forward
    /// it, for one attributed cause.
    LinkStall {
        /// Cycle the streak started.
        at: Cycle,
        /// The blocked link.
        link: LinkId,
        /// The attributed cause (constant across the streak; a cause
        /// change ends one streak and starts another).
        cause: StallCause,
        /// Streak length in cycles.
        cycles: u64,
    },
    /// A churn event killed a channel mid-run (the link transitioned
    /// alive → dead at this cycle boundary).
    LinkKilled {
        /// Cycle boundary at which the kill took effect.
        at: Cycle,
        /// The killed channel.
        link: LinkId,
    },
    /// A churn event revived a channel mid-run (the link transitioned
    /// dead → alive at this cycle boundary).
    LinkRevived {
        /// Cycle boundary at which the revival took effect.
        at: Cycle,
        /// The revived channel.
        link: LinkId,
    },
}

impl Event {
    /// Stable lower-case label of the event kind (the `"type"` field
    /// in JSON output).
    pub const fn kind(&self) -> &'static str {
        match self {
            Event::Inject { .. } => "inject",
            Event::Commit { .. } => "commit",
            Event::Kill { .. } => "kill",
            Event::RetransmitScheduled { .. } => "retransmit_scheduled",
            Event::Deliver { .. } => "deliver",
            Event::CorruptionDetected { .. } => "corruption_detected",
            Event::LinkStall { .. } => "link_stall",
            Event::LinkKilled { .. } => "link_killed",
            Event::LinkRevived { .. } => "link_revived",
        }
    }

    /// The cycle the event is stamped with.
    pub const fn at(&self) -> Cycle {
        match *self {
            Event::Inject { at, .. }
            | Event::Commit { at, .. }
            | Event::Kill { at, .. }
            | Event::RetransmitScheduled { at, .. }
            | Event::Deliver { at, .. }
            | Event::CorruptionDetected { at, .. }
            | Event::LinkStall { at, .. }
            | Event::LinkKilled { at, .. }
            | Event::LinkRevived { at, .. } => at,
        }
    }

    /// Serializes the event as a flat JSON object with a `"type"`
    /// discriminant, suitable for JSON-lines dumps.
    pub fn to_json(&self) -> Json {
        let mut m: Vec<(&'static str, Json)> = vec![
            ("type", Json::Str(self.kind().to_string())),
            ("at", Json::U64(self.at().as_u64())),
        ];
        match *self {
            Event::Inject {
                src,
                dst,
                message,
                attempt,
                ..
            } => {
                m.push(("src", Json::U64(src.as_u32() as u64)));
                m.push(("dst", Json::U64(dst.as_u32() as u64)));
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempt", Json::U64(attempt as u64)));
            }
            Event::Commit {
                src,
                message,
                attempt,
                ..
            } => {
                m.push(("src", Json::U64(src.as_u32() as u64)));
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempt", Json::U64(attempt as u64)));
            }
            Event::Kill {
                node,
                message,
                attempt,
                cause,
                ..
            } => {
                m.push(("node", Json::U64(node.as_u32() as u64)));
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempt", Json::U64(attempt as u64)));
                m.push(("cause", Json::Str(cause.as_str().to_string())));
            }
            Event::RetransmitScheduled {
                message,
                attempt,
                resume_at,
                ..
            } => {
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempt", Json::U64(attempt as u64)));
                m.push(("resume_at", Json::U64(resume_at.as_u64())));
            }
            Event::Deliver {
                src,
                dst,
                message,
                attempts,
                latency,
                ..
            } => {
                m.push(("src", Json::U64(src.as_u32() as u64)));
                m.push(("dst", Json::U64(dst.as_u32() as u64)));
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempts", Json::U64(attempts as u64)));
                m.push(("latency", Json::U64(latency)));
            }
            Event::CorruptionDetected {
                link,
                message,
                attempt,
                ..
            } => {
                m.push(("link", Json::U64(link.as_u32() as u64)));
                m.push(("message", Json::U64(message.as_u64())));
                m.push(("attempt", Json::U64(attempt as u64)));
            }
            Event::LinkStall {
                link,
                cause,
                cycles,
                ..
            } => {
                m.push(("link", Json::U64(link.as_u32() as u64)));
                m.push(("cause", Json::Str(cause.as_str().to_string())));
                m.push(("cycles", Json::U64(cycles)));
            }
            Event::LinkKilled { link, .. } | Event::LinkRevived { link, .. } => {
                m.push(("link", Json::U64(link.as_u32() as u64)));
            }
        }
        Json::obj(m)
    }
}

/// Emission statistics of a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Events emitted (including ones later dropped by the ring).
    pub emitted: u64,
    /// Oldest events evicted because the ring was full.
    pub dropped: u64,
}

/// Destination for trace events.
///
/// Constructed [`TraceSink::Disabled`] by default; the disabled
/// variant makes [`TraceSink::emit`] a single branch that never
/// evaluates the event constructor (it takes a closure precisely so
/// disabled runs do not even build the `Event` value).
#[derive(Debug, Clone, Default)]
pub enum TraceSink {
    /// Tracing off: emits are discarded without constructing the
    /// event.
    #[default]
    Disabled,
    /// Tracing on: events land in a bounded ring buffer.
    Ring(EventRing),
}

/// The bounded buffer behind [`TraceSink::Ring`].
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl TraceSink {
    /// A sink buffering up to `capacity` events (oldest dropped
    /// first). A zero capacity is bumped to 1.
    pub fn ring(capacity: usize) -> TraceSink {
        let capacity = capacity.max(1);
        TraceSink::Ring(EventRing {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            emitted: 0,
            dropped: 0,
        })
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, TraceSink::Ring(_))
    }

    /// Records the event produced by `make` — or, when disabled, does
    /// nothing (the closure is not called).
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> Event) {
        if let TraceSink::Ring(ring) = self {
            ring.push(make());
        }
    }

    /// Emission counters (zero when disabled).
    pub fn stats(&self) -> TraceStats {
        match self {
            TraceSink::Disabled => TraceStats::default(),
            TraceSink::Ring(r) => TraceStats {
                emitted: r.emitted,
                dropped: r.dropped,
            },
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        match self {
            TraceSink::Disabled => 0,
            TraceSink::Ring(r) => r.buf.len(),
        }
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered events, oldest first. The
    /// emitted/dropped counters are preserved.
    pub fn drain(&mut self) -> Vec<Event> {
        match self {
            TraceSink::Disabled => Vec::new(),
            TraceSink::Ring(r) => r.buf.drain(..).collect(),
        }
    }
}

impl EventRing {
    fn push(&mut self, ev: Event) {
        self.emitted += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Inject {
                at: Cycle::new(1),
                src: NodeId::new(0),
                dst: NodeId::new(3),
                message: MessageId::new(9),
                attempt: 0,
            },
            Event::Commit {
                at: Cycle::new(5),
                src: NodeId::new(0),
                message: MessageId::new(9),
                attempt: 0,
            },
            Event::Kill {
                at: Cycle::new(40),
                node: NodeId::new(0),
                message: MessageId::new(10),
                attempt: 0,
                cause: KillCause::SourceTimeout,
            },
            Event::RetransmitScheduled {
                at: Cycle::new(44),
                message: MessageId::new(10),
                attempt: 1,
                resume_at: Cycle::new(60),
            },
            Event::Deliver {
                at: Cycle::new(80),
                src: NodeId::new(0),
                dst: NodeId::new(3),
                message: MessageId::new(9),
                attempts: 1,
                latency: 79,
            },
            Event::CorruptionDetected {
                at: Cycle::new(90),
                link: LinkId::new(7),
                message: MessageId::new(11),
                attempt: 0,
            },
            Event::LinkStall {
                at: Cycle::new(30),
                link: LinkId::new(7),
                cause: StallCause::Backpressure,
                cycles: 12,
            },
            Event::LinkKilled {
                at: Cycle::new(100),
                link: LinkId::new(4),
            },
            Event::LinkRevived {
                at: Cycle::new(150),
                link: LinkId::new(4),
            },
        ]
    }

    #[test]
    fn disabled_sink_is_inert_and_skips_construction() {
        let mut sink = TraceSink::default();
        assert!(!sink.enabled());
        let mut called = false;
        sink.emit(|| {
            called = true;
            sample_events()[0]
        });
        assert!(!called, "disabled sink must not build the event");
        assert_eq!(sink.stats(), TraceStats::default());
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn ring_records_in_order() {
        let mut sink = TraceSink::ring(16);
        assert!(sink.enabled());
        for ev in sample_events() {
            sink.emit(|| ev);
        }
        let out = sink.drain();
        assert_eq!(out, sample_events());
        assert_eq!(sink.stats().emitted, 9);
        assert_eq!(sink.stats().dropped, 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut sink = TraceSink::ring(3);
        for ev in sample_events() {
            sink.emit(|| ev);
        }
        let out = sink.drain();
        assert_eq!(out.len(), 3);
        // The three newest survive.
        assert_eq!(out, sample_events()[6..].to_vec());
        assert_eq!(sink.stats().emitted, 9);
        assert_eq!(sink.stats().dropped, 6);
    }

    #[test]
    fn zero_capacity_is_bumped() {
        let mut sink = TraceSink::ring(0);
        sink.emit(|| sample_events()[0]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn every_event_serializes_with_type_and_at() {
        for ev in sample_events() {
            let j = ev.to_json();
            assert_eq!(
                j.get("type").and_then(Json::as_str),
                Some(ev.kind()),
                "{ev:?}"
            );
            assert_eq!(
                j.get("at").and_then(Json::as_u64),
                Some(ev.at().as_u64()),
                "{ev:?}"
            );
            // Single-line JSON that round-trips through the parser.
            let line = j.to_string();
            assert!(!line.contains('\n'));
            let back = Json::parse(&line).expect("event line parses");
            assert_eq!(back.get("type").and_then(Json::as_str), Some(ev.kind()));
        }
    }

    #[test]
    fn kind_specific_fields_are_present() {
        let evs = sample_events();
        assert_eq!(evs[2].to_json().get("cause").and_then(Json::as_str), Some("source_timeout"));
        assert_eq!(evs[3].to_json().get("resume_at").and_then(Json::as_u64), Some(60));
        assert_eq!(evs[4].to_json().get("latency").and_then(Json::as_u64), Some(79));
        assert_eq!(evs[5].to_json().get("link").and_then(Json::as_u64), Some(7));
        assert_eq!(evs[6].to_json().get("cause").and_then(Json::as_str), Some("backpressure"));
        assert_eq!(evs[6].to_json().get("cycles").and_then(Json::as_u64), Some(12));
        assert_eq!(evs[7].to_json().get("link").and_then(Json::as_u64), Some(4));
        assert_eq!(evs[8].to_json().get("link").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn cause_labels_are_stable() {
        assert_eq!(KillCause::SourceTimeout.as_str(), "source_timeout");
        assert_eq!(KillCause::Fault.as_str(), "fault");
        assert_eq!(KillCause::PathWide.as_str(), "path_wide");
        assert_eq!(StallCause::BusyChannel.as_str(), "busy_channel");
        assert_eq!(StallCause::DeadLink.as_str(), "dead_link");
        assert_eq!(StallCause::Backpressure.as_str(), "backpressure");
    }
}
