//! Strongly-typed identifiers used throughout the simulator.
//!
//! Each identifier is a zero-cost newtype over a small integer
//! ([C-NEWTYPE]). Using distinct types for nodes, links, ports and
//! virtual channels prevents the classic simulator bug of indexing the
//! wrong table with the right integer.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifier of a network node (a router plus its processor interface).
///
/// Node identifiers are dense: a network with `N` nodes uses ids
/// `0..N`.
///
/// # Examples
///
/// ```
/// use cr_sim::NodeId;
/// let n = NodeId::new(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(format!("{n}"), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Creates a node identifier from a table index, checking the
    /// narrowing conversion (the lossless inverse of
    /// [`NodeId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — no real topology comes
    /// within orders of magnitude of that.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the raw index as a `usize`, suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a unidirectional physical channel (link) in the network.
///
/// Every neighbor-to-neighbor channel has a unique `LinkId`; the fault
/// model ([`cr-faults`](https://example.invalid)) is keyed by it.
///
/// # Examples
///
/// ```
/// use cr_sim::LinkId;
/// let l = LinkId::new(12);
/// assert_eq!(l.index(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// Returns the raw index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a router port (an input or output direction at a node).
///
/// Port numbering is topology-defined; for a k-ary n-cube, dimension `d`
/// uses ports `2d` (positive direction) and `2d + 1` (negative
/// direction). Injection/ejection interfaces use ports past the neighbor
/// ports.
///
/// # Examples
///
/// ```
/// use cr_sim::PortId;
/// let p = PortId::new(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(u16);

impl PortId {
    /// Creates a port identifier from a raw index.
    pub const fn new(index: u16) -> Self {
        PortId(index)
    }

    /// Creates a port identifier from a table index, checking the
    /// narrowing conversion (the lossless inverse of
    /// [`PortId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u16::MAX` — router radixes are tiny.
    pub fn from_index(index: usize) -> Self {
        PortId(u16::try_from(index).expect("port index exceeds u16::MAX"))
    }

    /// Returns the raw index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index at its backing width (lossless, unlike a
    /// cast from [`PortId::index`]).
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a virtual channel within a port.
///
/// Compressionless Routing needs no virtual channels for deadlock
/// freedom; they appear here because the evaluation compares against
/// dimension-order routing (which needs them on tori) and because CR
/// networks may still use them as virtual lanes for throughput.
///
/// # Examples
///
/// ```
/// use cr_sim::VcId;
/// assert_eq!(VcId::new(1).index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(u8);

impl VcId {
    /// Creates a virtual-channel identifier from a raw index.
    pub const fn new(index: u8) -> Self {
        VcId(index)
    }

    /// Creates a virtual-channel identifier from a table index,
    /// checking the narrowing conversion (the lossless inverse of
    /// [`VcId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u8::MAX` — VC counts are single
    /// digits.
    pub fn from_index(index: usize) -> Self {
        VcId(u8::try_from(index).expect("vc index exceeds u8::MAX"))
    }

    /// Returns the raw index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index at its backing width (lossless, unlike a
    /// cast from [`VcId::index`]).
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Globally unique identifier of a message (one worm, across retries).
///
/// A message that is killed and retransmitted keeps its `MessageId`; the
/// retry attempt is tracked separately (see the protocol crate), so
/// `(MessageId, attempt)` uniquely names one worm instance in flight.
///
/// # Examples
///
/// ```
/// use cr_sim::MessageId;
/// let m = MessageId::new(99);
/// assert_eq!(m.as_u64(), 99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(u64);

impl MessageId {
    /// Creates a message identifier from a raw value.
    pub const fn new(v: u64) -> Self {
        MessageId(v)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(123);
        assert_eq!(n.index(), 123);
        assert_eq!(n.as_u32(), 123);
        assert_eq!(NodeId::from(123u32), n);
    }

    #[test]
    fn display_forms_are_distinct_and_nonempty() {
        assert_eq!(NodeId::new(1).to_string(), "n1");
        assert_eq!(LinkId::new(1).to_string(), "l1");
        assert_eq!(PortId::new(1).to_string(), "p1");
        assert_eq!(VcId::new(1).to_string(), "v1");
        assert_eq!(MessageId::new(1).to_string(), "m1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(0));
        set.insert(NodeId::new(0));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(MessageId::new(5) > MessageId::new(4));
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", VcId::new(0)).is_empty());
        assert!(!format!("{:?}", PortId::new(0)).is_empty());
    }
}
