//! A bounded FIFO ring buffer.
//!
//! [`Fifo`] models every finite buffer in the simulator: flit buffers in
//! router input virtual channels, link pipelines and injection queues.
//! Its capacity is fixed at construction — wormhole flow control is
//! entirely about *finite* buffering, so an unbounded queue here would
//! silently break the model.

use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`Fifo::push`] when the buffer is full.
///
/// The rejected element is handed back so the caller can retry later
/// without cloning ([C-INTERMEDIATE]).
///
/// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError<T>(pub T);

impl<T> fmt::Display for FifoFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> std::error::Error for FifoFullError<T> {}

/// A bounded first-in first-out queue.
///
/// # Examples
///
/// ```
/// use cr_sim::Fifo;
///
/// let mut f: Fifo<&str> = Fifo::with_capacity(2);
/// f.push("head").unwrap();
/// f.push("tail").unwrap();
/// assert!(f.push("overflow").is_err());
/// assert_eq!(f.pop(), Some("head"));
/// assert_eq!(f.free(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity buffer cannot
    /// carry flits and always indicates a configuration bug.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of elements the FIFO can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if [`Fifo::push`] would fail.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Number of free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Appends an element at the back.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] carrying `item` back if the FIFO is at
    /// capacity.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError<T>> {
        if self.is_full() {
            Err(FifoFullError(item))
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the front element, or `None` if empty.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the front element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Returns a mutable reference to the front element.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Removes all elements, returning how many were dropped.
    ///
    /// Used when a kill signal flushes a virtual-channel buffer.
    pub fn clear(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }

    /// Removes the elements for which `keep` returns `false`, preserving
    /// the order of the remainder; returns how many were removed.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.items.len();
        self.items.retain(|x| keep(x));
        before - self.items.len()
    }

    /// Returns the element at queue position `i` (0 = front), or
    /// `None` past the back.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.items.get(i)
    }

    /// Iterates over queued elements from front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

impl<T> Extend<T> for Fifo<T> {
    /// Extends the FIFO from an iterator.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more elements than there are free
    /// slots; use [`Fifo::push`] for fallible insertion.
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            if self.push(item).is_err() {
                // cr-lint: allow(panic-discipline, reason = "documented contract of the std Extend trait impl, which cannot return an error; callers wanting fallible insertion are pointed at Fifo::push")
                panic!("extend overflowed fifo capacity {}", self.capacity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_order() {
        let mut f = Fifo::with_capacity(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_enforced_and_item_returned() {
        let mut f = Fifo::with_capacity(1);
        f.push("a").unwrap();
        let err = f.push("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
    }

    #[test]
    fn clear_reports_count() {
        let mut f = Fifo::with_capacity(4);
        f.extend([1, 2, 3]);
        assert_eq!(f.clear(), 3);
        assert!(f.is_empty());
    }

    #[test]
    fn retain_filters_in_order() {
        let mut f = Fifo::with_capacity(8);
        f.extend(0..8);
        let removed = f.retain(|x| x % 2 == 0);
        assert_eq!(removed, 4);
        let left: Vec<i32> = f.iter().copied().collect();
        assert_eq!(left, vec![0, 2, 4, 6]);
    }

    #[test]
    fn front_access() {
        let mut f = Fifo::with_capacity(2);
        assert!(f.front().is_none());
        f.push(10).unwrap();
        assert_eq!(f.front(), Some(&10));
        *f.front_mut().unwrap() = 11;
        assert_eq!(f.pop(), Some(11));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::with_capacity(0);
    }

    #[test]
    #[should_panic]
    fn extend_overflow_panics() {
        let mut f = Fifo::with_capacity(1);
        f.extend([1, 2]);
    }

    #[test]
    fn wraparound_reuse() {
        // Exercise ring-buffer behaviour across many push/pop cycles.
        let mut f = Fifo::with_capacity(2);
        for i in 0..100 {
            f.push(i).unwrap();
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.is_empty());
    }
}
