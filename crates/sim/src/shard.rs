//! Deterministic spatial partitioning for intra-simulation sharding.
//!
//! The sharded network stepper (DESIGN.md §12) splits one simulation
//! into `N` **spatial shards** — contiguous node-id ranges — and steps
//! them in parallel between phase barriers. This module owns the
//! partition itself:
//!
//! * [`Plan`] — a validated list of shard boundaries over
//!   `0..num_nodes`. Every node belongs to exactly one shard; shards
//!   are contiguous and ordered, so concatenating per-shard sorted
//!   work-lists reproduces the global ascending order the serial
//!   stepper uses. Empty shards are legal (a plan may have more
//!   shards than nodes).
//! * [`even_bounds`] — the default boundary layout: `num_nodes`
//!   divided as evenly as possible, earlier shards taking the
//!   remainder. Topologies may override this with a fabric-aware
//!   hint (`Topology::partition_hint`), which a [`Plan`] then
//!   sanitizes.
//! * [`effective_shards`] — resolves the shard count for a run the
//!   same way `pool::effective_jobs` resolves the thread count:
//!   explicit request first, then the `CR_SHARDS` environment
//!   variable, then 1 (serial). Sharding never switches on
//!   implicitly: results are byte-identical at any shard count, but
//!   the knob stays an explicit opt-in.
//!
//! The plan is pure arithmetic over ids — no RNG, no topology access
//! — so two runs of the same configuration always partition
//! identically, which is the first link in the sharded stepper's
//! determinism chain.
//!
//! # Examples
//!
//! ```
//! use cr_sim::shard::Plan;
//!
//! let plan = Plan::contiguous(10, 3);
//! assert_eq!(plan.num_shards(), 3);
//! assert_eq!(plan.range(0), 0..4); // earlier shards take the slack
//! assert_eq!(plan.range(1), 4..7);
//! assert_eq!(plan.range(2), 7..10);
//! assert_eq!(plan.shard_of(6), 1);
//! ```

/// Evenly split `num_nodes` ids into `shards` contiguous ranges,
/// returned as `shards + 1` boundary values (`bounds[s]..bounds[s+1]`
/// is shard `s`). Earlier shards absorb the remainder, so sizes
/// differ by at most one. A zero shard request is bumped to one.
pub fn even_bounds(num_nodes: usize, shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    let base = num_nodes / shards;
    let extra = num_nodes % shards;
    let mut bounds = Vec::with_capacity(shards + 1);
    let mut at = 0usize;
    bounds.push(0);
    for s in 0..shards {
        at += base + usize::from(s < extra);
        // cr-lint: allow(integer-narrowing, reason = "at never exceeds num_nodes, and node counts are u32-dense")
        bounds.push(at as u32);
    }
    bounds
}

/// Resolves how many spatial shards a network should step with.
///
/// Priority: `request` (if `Some` and non-zero) → the `CR_SHARDS`
/// environment variable (if set and parseable as a non-zero integer)
/// → 1 (the serial stepper). Mirrors
/// [`pool::effective_jobs`](crate::pool::effective_jobs), except the
/// default is serial: sharding is byte-identical but still an
/// explicit opt-in.
pub fn effective_shards(request: Option<usize>) -> usize {
    if let Some(n) = request {
        if n > 0 {
            return n;
        }
    }
    std::env::var("CR_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A validated spatial partition: `num_shards` contiguous node-id
/// ranges exactly covering `0..num_nodes`. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// `num_shards + 1` nondecreasing boundaries; first 0, last
    /// `num_nodes`.
    bounds: Vec<u32>,
}

impl Plan {
    /// The default plan: [`even_bounds`] over `num_nodes`.
    pub fn contiguous(num_nodes: usize, shards: usize) -> Plan {
        Plan {
            bounds: even_bounds(num_nodes, shards),
        }
    }

    /// Builds a plan from a topology-provided boundary hint,
    /// sanitizing it into a valid partition: boundaries are clamped
    /// to `0..=num_nodes` and forced nondecreasing (each boundary is
    /// raised to at least its predecessor), the endpoints are pinned
    /// to `0` and `num_nodes`, and a hint with the wrong boundary
    /// count falls back to [`even_bounds`]. The result always has
    /// exactly `shards` shards covering every node once.
    pub fn from_hint(hint: Vec<u32>, num_nodes: usize, shards: usize) -> Plan {
        let shards = shards.max(1);
        let mut bounds = if hint.len() == shards + 1 {
            hint
        } else {
            even_bounds(num_nodes, shards)
        };
        // cr-lint: allow(integer-narrowing, reason = "node counts are u32-dense (NodeId is u32-backed)")
        let n = num_nodes as u32;
        bounds[0] = 0;
        for i in 1..bounds.len() {
            bounds[i] = bounds[i].min(n).max(bounds[i - 1]);
        }
        bounds[shards] = n;
        // Pinning the last boundary can break monotonicity only if a
        // middle boundary exceeded `n`; the clamp above rules that
        // out.
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        Plan { bounds }
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        *self.bounds.last().unwrap_or(&0) as usize
    }

    /// `true` when the plan is a single shard — the serial stepper.
    pub fn is_serial(&self) -> bool {
        self.num_shards() == 1
    }

    /// The contiguous node-id range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s] as usize..self.bounds[s + 1] as usize
    }

    /// The shard owning `node`. For a boundary between an empty and a
    /// non-empty shard, the owning (non-empty) shard is returned.
    ///
    /// # Panics
    ///
    /// Panics if `node >= num_nodes()`.
    pub fn shard_of(&self, node: u32) -> usize {
        assert!((node as usize) < self.num_nodes(), "node out of range");
        // The last boundary <= node, skipping boundary 0: the number
        // of interior boundaries at or below `node`.
        self.bounds[1..self.bounds.len() - 1].partition_point(|&b| b <= node)
    }

    /// Per-node shard-owner table (`table[node] == shard_of(node)`),
    /// the O(1) lookup the hot stepper paths use.
    pub fn owner_table(&self) -> Vec<u16> {
        let mut table = Vec::with_capacity(self.num_nodes());
        for s in 0..self.num_shards() {
            for _ in self.range(s) {
                // cr-lint: allow(integer-narrowing, reason = "shard counts are tiny (bounded by the host's core count)")
                table.push(s as u16);
            }
        }
        table
    }

    /// The boundary list (`num_shards() + 1` values).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

/// Per-shard chunked storage with flat global indexing.
///
/// The persistent-team stepper (DESIGN.md §12) hands each worker
/// *ownership* of its shard's state for the duration of a phase — safe
/// Rust cannot lend `&mut` slices of one `Vec` to long-lived threads.
/// `Sharded<T>` stores the elements as one `Vec` per shard so a whole
/// chunk moves in and out by `O(1)` [`Sharded::take_chunk`] /
/// [`Sharded::put_chunk`], while [`std::ops::Index`] by the original
/// flat index keeps every serial call site unchanged (a single-chunk
/// `Sharded` — the serial steppers — indexes with no extra cost beyond
/// one pointer hop).
///
/// Iteration order is always ascending flat order: chunk 0 first, in
/// order, then chunk 1, and so on — identical to iterating the
/// original flat `Vec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sharded<T> {
    chunks: Vec<Vec<T>>,
    /// `chunks.len() + 1` prefix sums: chunk `c` holds flat indices
    /// `offsets[c]..offsets[c + 1]`.
    offsets: Vec<usize>,
}

impl<T> Sharded<T> {
    /// Splits `items` into chunks of the given `sizes` (which must sum
    /// to `items.len()`), preserving order.
    pub fn from_flat(mut items: Vec<T>, sizes: &[usize]) -> Sharded<T> {
        let total: usize = sizes.iter().sum();
        assert_eq!(total, items.len(), "chunk sizes must cover all items");
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut chunks = Vec::with_capacity(sizes.len().max(1));
        offsets.push(0);
        let mut at = 0usize;
        // Split back-to-front so each chunk is a cheap split_off tail.
        let mut cut_points = Vec::with_capacity(sizes.len());
        for &size in sizes {
            cut_points.push(at);
            at += size;
            offsets.push(at);
        }
        for &cut in cut_points.iter().rev() {
            chunks.push(items.split_off(cut));
        }
        chunks.reverse();
        if chunks.is_empty() {
            // Zero requested chunks: keep one (empty) chunk so the
            // single-chunk fast path and invariants hold.
            chunks.push(items);
            offsets = vec![0, 0];
        }
        Sharded { chunks, offsets }
    }

    /// All elements in one chunk — the layout every serial stepper
    /// uses.
    pub fn single(items: Vec<T>) -> Sharded<T> {
        let offsets = vec![0, items.len()];
        Sharded {
            chunks: vec![items],
            offsets,
        }
    }

    /// Total element count across all chunks.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// `true` when no chunk holds any element.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks (≥ 1).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Maps a flat index to `(chunk, local)` — `O(1)` for single-chunk
    /// layouts, `O(log chunks)` otherwise.
    fn locate(&self, index: usize) -> (usize, usize) {
        if self.chunks.len() == 1 {
            return (0, index);
        }
        let interior = &self.offsets[1..self.offsets.len() - 1];
        let c = interior.partition_point(|&b| b <= index);
        (c, index - self.offsets[c])
    }

    /// Moves chunk `c` out, leaving it empty. Pair with
    /// [`Sharded::put_chunk`] before the next flat access to that
    /// range.
    pub fn take_chunk(&mut self, c: usize) -> Vec<T> {
        std::mem::take(&mut self.chunks[c])
    }

    /// Restores chunk `c` after a [`Sharded::take_chunk`]; the length
    /// must match the chunk's flat range.
    pub fn put_chunk(&mut self, c: usize, chunk: Vec<T>) {
        debug_assert_eq!(
            chunk.len(),
            self.offsets[c + 1] - self.offsets[c],
            "restored chunk changed size"
        );
        self.chunks[c] = chunk;
    }

    /// Iterates all elements in ascending flat order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flatten()
    }

    /// Mutably iterates all elements in ascending flat order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.chunks.iter_mut().flatten()
    }
}

impl<T> std::ops::Index<usize> for Sharded<T> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        let (c, local) = self.locate(index);
        &self.chunks[c][local]
    }
}

impl<T> std::ops::IndexMut<usize> for Sharded<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        let (c, local) = self.locate(index);
        &mut self.chunks[c][local]
    }
}

impl<'a, T> IntoIterator for &'a Sharded<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<T>>>;
    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flatten()
    }
}

impl<'a, T> IntoIterator for &'a mut Sharded<T> {
    type Item = &'a mut T;
    type IntoIter = std::iter::Flatten<std::slice::IterMut<'a, Vec<T>>>;
    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter_mut().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, Config};

    #[test]
    fn even_bounds_cover_exactly() {
        assert_eq!(even_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(even_bounds(4, 1), vec![0, 4]);
        assert_eq!(even_bounds(0, 3), vec![0, 0, 0, 0]);
        assert_eq!(even_bounds(2, 5), vec![0, 1, 2, 2, 2, 2]);
        assert_eq!(even_bounds(6, 0), vec![0, 6], "zero shards bumped to one");
    }

    #[test]
    fn shard_of_matches_ranges() {
        let plan = Plan::contiguous(10, 3);
        for s in 0..plan.num_shards() {
            for node in plan.range(s) {
                assert_eq!(plan.shard_of(node as u32), s, "node {node}");
            }
        }
        assert_eq!(plan.owner_table(), vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_tails() {
        let plan = Plan::contiguous(2, 5);
        assert_eq!(plan.num_shards(), 5);
        assert_eq!(plan.range(0), 0..1);
        assert_eq!(plan.range(1), 1..2);
        for s in 2..5 {
            assert!(plan.range(s).is_empty());
        }
        assert_eq!(plan.shard_of(1), 1);
    }

    #[test]
    fn from_hint_sanitizes_bad_hints() {
        // Wrong boundary count: falls back to even.
        let p = Plan::from_hint(vec![0, 10], 10, 3);
        assert_eq!(p, Plan::contiguous(10, 3));
        // Non-monotone and out-of-range boundaries are repaired.
        let p = Plan::from_hint(vec![3, 9, 2, 99], 10, 3);
        assert_eq!(p.bounds(), &[0, 9, 9, 10]);
        assert_eq!(p.num_nodes(), 10);
        // A good hint passes through unchanged.
        let p = Plan::from_hint(vec![0, 6, 8, 10], 10, 3);
        assert_eq!(p.bounds(), &[0, 6, 8, 10]);
    }

    #[test]
    fn effective_shards_explicit_request_wins() {
        assert_eq!(effective_shards(Some(4)), 4);
        // Zero request falls through to env/default; without CR_SHARDS
        // in the test environment the default is serial.
        assert!(effective_shards(Some(0)) >= 1);
        assert!(effective_shards(None) >= 1);
    }

    #[test]
    fn sharded_from_flat_indexes_like_the_flat_vec() {
        let flat: Vec<u64> = (0..10).collect();
        let sharded = Sharded::from_flat(flat.clone(), &[4, 3, 3]);
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.num_chunks(), 3);
        for (i, &v) in flat.iter().enumerate() {
            assert_eq!(sharded[i], v, "flat index {i}");
        }
        assert_eq!(sharded.iter().copied().collect::<Vec<_>>(), flat);
        assert_eq!((&sharded).into_iter().count(), 10);
    }

    #[test]
    fn sharded_single_chunk_fast_path() {
        let mut s = Sharded::single((0..6u32).collect());
        assert_eq!(s.num_chunks(), 1);
        s[3] = 99;
        assert_eq!(s[3], 99);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn sharded_take_put_roundtrip() {
        let mut s = Sharded::from_flat((0..10u32).collect(), &[4, 3, 3]);
        let mid = s.take_chunk(1);
        assert_eq!(mid, vec![4, 5, 6]);
        // Other chunks stay addressable while one is out.
        assert_eq!(s[0], 0);
        assert_eq!(s[9], 9);
        s.put_chunk(1, mid);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_empty_chunks_and_zero_sizes() {
        let s = Sharded::from_flat(vec![1u8, 2], &[0, 2, 0]);
        assert_eq!(s.num_chunks(), 3);
        assert_eq!(s[0], 1);
        assert_eq!(s[1], 2);
        let empty: Sharded<u8> = Sharded::from_flat(Vec::new(), &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.num_chunks(), 1);
    }

    /// Property: splitting a random flat vec by any plan's shard sizes
    /// preserves flat indexing, iteration order, and mutation through
    /// `IndexMut`.
    #[test]
    fn prop_sharded_matches_flat() {
        check("shard_sharded_matches_flat", Config::cases(100), |src| {
            let n = src.usize_in(0..200);
            let shards = src.usize_in(1..9);
            let plan = Plan::contiguous(n, shards);
            let sizes: Vec<usize> = (0..plan.num_shards()).map(|s| plan.range(s).len()).collect();
            let mut flat: Vec<u64> = (0..n as u64).map(|i| i * 31).collect();
            let mut sharded = Sharded::from_flat(flat.clone(), &sizes);
            assert_eq!(sharded.len(), n);
            for i in 0..n {
                assert_eq!(sharded[i], flat[i]);
            }
            if n > 0 {
                let at = src.usize_in(0..n);
                sharded[at] += 7;
                flat[at] += 7;
            }
            assert_eq!(sharded.iter().copied().collect::<Vec<_>>(), flat);
            assert_eq!(
                (&mut sharded).into_iter().map(|v| *v).collect::<Vec<_>>(),
                flat
            );
        });
    }

    /// Property: any plan (from even splits or arbitrary hints, any
    /// shard count including 0, 1 and more shards than nodes) is a
    /// disjoint exact cover of `0..num_nodes`, and `shard_of` agrees
    /// with `range` and `owner_table` everywhere.
    #[test]
    fn plans_are_disjoint_exact_covers() {
        check("shard_plan_cover", Config::cases(200), |src| {
            let num_nodes = src.usize_in(0..300);
            let shards = src.usize_in(0..12);
            let plan = if src.bool_any() {
                Plan::contiguous(num_nodes, shards)
            } else {
                let hint = src.vec_with(0..14, |s| s.u32_in(0..400));
                Plan::from_hint(hint, num_nodes, shards)
            };
            assert_eq!(plan.num_shards(), shards.max(1));
            assert_eq!(plan.num_nodes(), num_nodes);
            // Exact cover: ranges tile 0..num_nodes in order.
            let mut at = 0usize;
            for s in 0..plan.num_shards() {
                let r = plan.range(s);
                assert_eq!(r.start, at, "shard {s} not contiguous");
                assert!(r.end >= r.start);
                at = r.end;
            }
            assert_eq!(at, num_nodes, "ranges must cover every node");
            // Disjoint ownership: every node names exactly one shard,
            // consistent with the O(1) table.
            let table = plan.owner_table();
            assert_eq!(table.len(), num_nodes);
            for node in 0..num_nodes {
                let s = plan.shard_of(node as u32);
                assert!(plan.range(s).contains(&node));
                assert_eq!(table[node], s as u16);
            }
        });
    }
}
