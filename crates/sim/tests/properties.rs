//! Property-based tests of the simulation substrate.

use cr_sim::check::{check, Config};
use cr_sim::{Cycle, Fifo, Rng, SimRng};
use std::collections::VecDeque;

/// Operations for the FIFO model test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
    Clear,
    RetainEven,
}

/// `Fifo` behaves exactly like a capacity-checked `VecDeque` under
/// arbitrary operation sequences.
#[test]
fn fifo_matches_vecdeque_model() {
    check("fifo_matches_vecdeque_model", Config::default(), |src| {
        let capacity = src.usize_in(1..16);
        let ops = src.vec_with(0..200, |s| match s.weighted(&[4, 3, 1, 1]) {
            0 => Op::Push(s.u64_any() as u32),
            1 => Op::Pop,
            2 => Op::Clear,
            _ => Op::RetainEven,
        });
        let mut fifo = Fifo::with_capacity(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let expect_ok = model.len() < capacity;
                    let got = fifo.push(v);
                    assert_eq!(got.is_ok(), expect_ok);
                    if expect_ok {
                        model.push_back(v);
                    } else {
                        assert_eq!(got.unwrap_err().0, v, "rejected item returned");
                    }
                }
                Op::Pop => {
                    assert_eq!(fifo.pop(), model.pop_front());
                }
                Op::Clear => {
                    let n = fifo.clear();
                    assert_eq!(n, model.len());
                    model.clear();
                }
                Op::RetainEven => {
                    let removed = fifo.retain(|x| x % 2 == 0);
                    let before = model.len();
                    model.retain(|x| x % 2 == 0);
                    assert_eq!(removed, before - model.len());
                }
            }
            assert_eq!(fifo.len(), model.len());
            assert_eq!(fifo.is_empty(), model.is_empty());
            assert_eq!(fifo.is_full(), model.len() == capacity);
            assert_eq!(fifo.free(), capacity - model.len());
            assert_eq!(fifo.front().copied(), model.front().copied());
            let a: Vec<u32> = fifo.iter().copied().collect();
            let b: Vec<u32> = model.iter().copied().collect();
            assert_eq!(a, b);
        }
    });
}

/// Split streams never collide with the parent or each other for
/// reasonable stream counts, and are reproducible.
#[test]
fn rng_splits_are_stable_and_distinct() {
    check("rng_splits_are_stable_and_distinct", Config::default(), |src| {
        let seed = src.u64_any();
        let root = SimRng::from_seed(seed);
        let mut firsts = std::collections::HashSet::new();
        for stream in 0..128u64 {
            let mut a = root.split(stream);
            let mut b = root.split(stream);
            let va = a.next_u64();
            assert_eq!(va, b.next_u64(), "split not reproducible");
            assert!(firsts.insert(va), "stream collision at {stream}");
        }
    });
}

/// `chance(p)` over many trials lands near `p` for any seed.
#[test]
fn chance_is_calibrated() {
    check("chance_is_calibrated", Config::default(), |src| {
        let seed = src.u64_any();
        let p = f64::from(src.u32_in(0..1001)) / 1000.0;
        let mut rng = SimRng::from_seed(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| rng.chance(p)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - p).abs() < 0.05, "p={p} frac={frac}");
    });
}

/// Cycle arithmetic is consistent: `(a + d) - a == d` and saturating
/// subtraction never underflows.
#[test]
fn cycle_arithmetic_laws() {
    check("cycle_arithmetic_laws", Config::default(), |src| {
        let a = src.u64_in(0..u64::MAX / 2);
        let d = src.u64_in(0..1_000_000);
        let t = Cycle::new(a);
        let later = t + d;
        assert_eq!(later - t, d);
        assert_eq!(later.saturating_since(t), d);
        assert_eq!(t.saturating_since(later), 0);
        let mut u = t;
        u.tick();
        assert_eq!(u - t, 1);
    });
}

/// `pick` always returns an element of the slice; `pick_index` stays
/// in range.
#[test]
fn pick_stays_in_bounds() {
    check("pick_stays_in_bounds", Config::default(), |src| {
        let seed = src.u64_any();
        let len = src.usize_in(1..64);
        let mut rng = SimRng::from_seed(seed);
        let items: Vec<usize> = (0..len).collect();
        for _ in 0..32 {
            let v = *rng.pick(&items).unwrap();
            assert!(v < len);
            let i = rng.pick_index(len).unwrap();
            assert!(i < len);
        }
    });
}
