//! Property-based tests of the simulation substrate.

use cr_sim::{Cycle, Fifo, SimRng};
use proptest::prelude::*;
use rand::RngCore;
use std::collections::VecDeque;

/// Operations for the FIFO model test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
    Clear,
    RetainEven,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u32>().prop_map(Op::Push),
        3 => Just(Op::Pop),
        1 => Just(Op::Clear),
        1 => Just(Op::RetainEven),
    ]
}

proptest! {
    /// `Fifo` behaves exactly like a capacity-checked `VecDeque` under
    /// arbitrary operation sequences.
    #[test]
    fn fifo_matches_vecdeque_model(
        capacity in 1usize..16,
        ops in prop::collection::vec(op(), 0..200),
    ) {
        let mut fifo = Fifo::with_capacity(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let expect_ok = model.len() < capacity;
                    let got = fifo.push(v);
                    prop_assert_eq!(got.is_ok(), expect_ok);
                    if expect_ok {
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(got.unwrap_err().0, v, "rejected item returned");
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(fifo.pop(), model.pop_front());
                }
                Op::Clear => {
                    let n = fifo.clear();
                    prop_assert_eq!(n, model.len());
                    model.clear();
                }
                Op::RetainEven => {
                    let removed = fifo.retain(|x| x % 2 == 0);
                    let before = model.len();
                    model.retain(|x| x % 2 == 0);
                    prop_assert_eq!(removed, before - model.len());
                }
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert_eq!(fifo.is_full(), model.len() == capacity);
            prop_assert_eq!(fifo.free(), capacity - model.len());
            prop_assert_eq!(fifo.front().copied(), model.front().copied());
            let a: Vec<u32> = fifo.iter().copied().collect();
            let b: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Split streams never collide with the parent or each other for
    /// reasonable stream counts, and are reproducible.
    #[test]
    fn rng_splits_are_stable_and_distinct(seed in any::<u64>()) {
        let root = SimRng::from_seed(seed);
        let mut firsts = std::collections::HashSet::new();
        for stream in 0..128u64 {
            let mut a = root.split(stream);
            let mut b = root.split(stream);
            let va = a.next_u64();
            prop_assert_eq!(va, b.next_u64(), "split not reproducible");
            prop_assert!(firsts.insert(va), "stream collision at {}", stream);
        }
    }

    /// `chance(p)` over many trials lands near `p` for any seed.
    #[test]
    fn chance_is_calibrated(seed in any::<u64>(), p_millis in 0u32..=1000) {
        let p = f64::from(p_millis) / 1000.0;
        let mut rng = SimRng::from_seed(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| rng.chance(p)).count();
        let frac = hits as f64 / n as f64;
        prop_assert!((frac - p).abs() < 0.05, "p={p} frac={frac}");
    }

    /// Cycle arithmetic is consistent: `(a + d) - a == d` and
    /// saturating subtraction never underflows.
    #[test]
    fn cycle_arithmetic_laws(a in 0u64..u64::MAX / 2, d in 0u64..1_000_000) {
        let t = Cycle::new(a);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(later), 0);
        let mut u = t;
        u.tick();
        prop_assert_eq!(u - t, 1);
    }

    /// `pick` always returns an element of the slice; `pick_index`
    /// stays in range.
    #[test]
    fn pick_stays_in_bounds(seed in any::<u64>(), len in 1usize..64) {
        let mut rng = SimRng::from_seed(seed);
        let items: Vec<usize> = (0..len).collect();
        for _ in 0..32 {
            let v = *rng.pick(&items).unwrap();
            prop_assert!(v < len);
            let i = rng.pick_index(len).unwrap();
            prop_assert!(i < len);
        }
    }
}
