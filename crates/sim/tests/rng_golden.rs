//! Golden-value tests pinning the exact `SimRng` output stream.
//!
//! Every recorded experiment in this repo is keyed by a 64-bit seed, so
//! the seed→stream mapping is part of the public contract: if any of
//! these assertions starts failing, the change silently invalidates all
//! previously published numbers and must be called out as breaking (see
//! DESIGN.md "Determinism & RNG"). The values below were captured from
//! the in-repo ChaCha8 implementation when it was introduced and are
//! platform-independent.

use cr_sim::{Rng, SimRng};

fn first8(mut rng: SimRng) -> [u64; 8] {
    std::array::from_fn(|_| rng.next_u64())
}

#[test]
fn seed_zero_stream_is_pinned() {
    assert_eq!(
        first8(SimRng::from_seed(0)),
        [
            0xbb28_9529_c63d_6c83,
            0x3ab1_2997_24dd_066f,
            0x2c5a_dd26_dbad_e299,
            0x90e5_d60d_c57f_2d97,
            0x80a1_a29a_16b5_afe9,
            0x1afe_8681_ed5b_046e,
            0x1e4e_c1e0_e858_728d,
            0xcf8e_3d11_8b24_ea89,
        ]
    );
}

#[test]
fn seed_42_stream_is_pinned() {
    assert_eq!(
        first8(SimRng::from_seed(42)),
        [
            0x41c8_313a_ee1f_8da4,
            0xd7aa_eb30_d95d_d5b7,
            0xc759_cc76_2bbf_09ce,
            0xbf08_c086_bdfe_640b,
            0xce92_933d_360b_cbb2,
            0xc045_c171_3bf4_5f3b,
            0x46f6_f2cf_e81d_c62a,
            0x7f4e_9666_aa09_65ea,
        ]
    );
}

#[test]
fn seed_deadbeef_stream_is_pinned() {
    assert_eq!(
        first8(SimRng::from_seed(0xDEAD_BEEF)),
        [
            0x343d_cd92_5af7_5874,
            0xcca0_18f5_6d08_40f5,
            0xaac1_eccb_54e8_4786,
            0x2c81_6ba5_0b20_cafb,
            0x1147_2433_3c32_42f2,
            0xfd69_e10d_adc5_2807,
            0xf3f8_dce9_c54b_de39,
            0xea87_f325_f909_23fe,
        ]
    );
}

#[test]
fn split_streams_are_pinned() {
    let root = SimRng::from_seed(42);
    assert_eq!(
        first8(root.split(1)),
        [
            0xb2fb_1bcf_0bd2_16d4,
            0x5c20_b2ba_a0ca_bbdf,
            0x94d3_44cf_7f07_b25c,
            0xf3a1_813c_e7a5_0aa7,
            0x445c_7afa_1fd3_da53,
            0x9a9d_a8bd_f064_526a,
            0x2c62_023c_5b2f_45d0,
            0xc52c_4357_ddf5_fe05,
        ]
    );
    assert_eq!(
        first8(root.split(7)),
        [
            0xc4bd_1781_eb85_2b5e,
            0xb72f_fa83_ddc9_4fad,
            0xf3b0_3414_a8f5_3b3a,
            0x5e0a_7ec4_803f_41b8,
            0xf1cf_015b_0dfd_cbb6,
            0x6638_2905_bced_c1a8,
            0x5603_299b_e885_c564,
            0x53d4_4bd7_ad60_e364,
        ]
    );
}

#[test]
fn split_is_consumption_insensitive() {
    // Child streams depend only on (seed, stream id), not on how much
    // of the parent's own stream has been consumed.
    let fresh = SimRng::from_seed(42);
    let mut drained = SimRng::from_seed(42);
    for _ in 0..1000 {
        let _ = drained.next_u64();
    }
    assert_eq!(first8(fresh.split(3)), first8(drained.split(3)));
}
