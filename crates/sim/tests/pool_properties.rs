//! Property-based tests of the work-stealing pool: for arbitrary task
//! batches and job counts, the pool is observationally identical to a
//! serial `for` loop — same count, same order, same values — and task
//! panics surface as errors instead of hangs.

use cr_sim::check::{check, Config};
use cr_sim::pool;

/// Every submitted task produces exactly one result, in submission
/// order, for any job count.
#[test]
fn count_in_equals_count_out_and_order_is_preserved() {
    check("pool_count_and_order", Config::default(), |src| {
        let n = src.usize_in(0..64);
        let jobs = src.usize_in(1..9);
        let inputs: Vec<u64> = (0..n).map(|_| src.u64_any()).collect();
        let tasks: Vec<_> = inputs
            .iter()
            .map(|&v| move || v.wrapping_mul(2654435761))
            .collect();
        let out = pool::run(jobs, tasks);
        assert_eq!(out.len(), n);
        for (got, &input) in out.iter().zip(&inputs) {
            assert_eq!(*got, input.wrapping_mul(2654435761));
        }
    });
}

/// `jobs = 1` equals direct execution: identical results to running
/// the closures in a plain loop, for any batch.
#[test]
fn jobs_one_equals_direct_execution() {
    check("pool_serial_equivalence", Config::default(), |src| {
        let inputs: Vec<u64> = src.vec_with(0..48, |s| s.u64_any());
        let direct: Vec<u64> = inputs.iter().map(|&v| v ^ (v >> 7)).collect();
        let pooled = pool::run(
            1,
            inputs.iter().map(|&v| move || v ^ (v >> 7)).collect::<Vec<_>>(),
        );
        assert_eq!(pooled, direct);
    });
}

/// Parallel runs agree with the serial run bit-for-bit — the sweep
/// determinism contract, on arbitrary workloads and job counts.
#[test]
fn any_job_count_matches_serial() {
    check("pool_jobs_invariance", Config::default(), |src| {
        let inputs: Vec<u64> = src.vec_with(1..40, |s| s.u64_any());
        let jobs = src.usize_in(2..9);
        let make_tasks = || {
            inputs
                .iter()
                .map(|&v| move || {
                    // A mildly uneven workload so stealing actually
                    // happens: cost depends on the input value.
                    let mut acc = v;
                    for _ in 0..(v % 257) {
                        acc = acc.rotate_left(9) ^ 0x9E37_79B9_7F4A_7C15;
                    }
                    acc
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(pool::run(jobs, make_tasks()), pool::run(1, make_tasks()));
    });
}

/// A panicking task surfaces as a `PoolError` naming the lowest
/// failing submission index — never a hang, never a lost panic —
/// wherever the panics land in the batch and whatever the job count.
#[test]
fn panics_surface_as_errors_not_hangs() {
    check("pool_panic_surfacing", Config::default(), |src| {
        let n = src.usize_in(1..32);
        let jobs = src.usize_in(1..9);
        let bad: Vec<bool> = (0..n).map(|_| src.bool_any()).collect();
        let first_bad = bad.iter().position(|&b| b);
        let tasks: Vec<_> = bad
            .iter()
            .enumerate()
            .map(|(i, &is_bad)| {
                move || {
                    assert!(!is_bad, "task {i} told to fail");
                    i
                }
            })
            .collect();
        match (pool::try_run(jobs, tasks), first_bad) {
            (Ok(out), None) => assert_eq!(out, (0..n).collect::<Vec<_>>()),
            (Err(e), Some(idx)) => {
                assert_eq!(e.task_index, idx);
                assert!(e.message.contains(&format!("task {idx} told to fail")), "{e}");
            }
            (Ok(_), Some(idx)) => panic!("panic at task {idx} was swallowed"),
            (Err(e), None) => panic!("spurious error: {e}"),
        }
    });
}
