//! Benchmark support crate.
//!
//! [`harness`] is the std-only benchmark runner (warmup, repeated
//! timed samples, median/p95 summary, `target/bench/BENCH_<group>.json`
//! output) the benches are built on — the workspace has zero external
//! dependencies, so there is no Criterion here.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `figures` — one benchmark per paper artifact (Fig. 9–16, the PDS
//!   and padding tables, the non-uniform traffic extension), each
//!   running its experiment at a reduced scale so a full `cargo bench`
//!   stays tractable. Run any experiment at full paper scale with the
//!   matching binary in `cr-experiments`
//!   (e.g. `cargo run --release --bin fig14ab`).
//! * `microbench` — hot-path microbenchmarks of the simulator itself
//!   (cycle stepping at several loads and protocols), for tracking
//!   simulator performance regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use cr_core::{Network, NetworkBuilder, ProtocolKind, RoutingKind};
use cr_topology::KAryNCube;
use cr_traffic::{LengthDistribution, TrafficPattern};

/// Builds the small reference network used by the microbenchmarks:
/// a 4×4 torus with the given protocol, uniform 16-flit traffic at
/// `load`.
pub fn reference_network(protocol: ProtocolKind, load: f64) -> Network {
    let routing = match protocol {
        ProtocolKind::Baseline => RoutingKind::Dor { lanes: 1 },
        _ => RoutingKind::Adaptive { vcs: 1 },
    };
    NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(routing)
        .protocol(protocol)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
        .warmup(0)
        .seed(7)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_network_runs() {
        let mut net = reference_network(ProtocolKind::Cr, 0.2);
        let report = net.run(500);
        assert!(!report.deadlocked);
        assert!(report.counters.messages_delivered > 0);
    }
}
