//! A std-only benchmark harness.
//!
//! The workspace builds hermetically with zero external dependencies,
//! so instead of Criterion the benches use this ~150-line harness: each
//! [`Group`] runs its benchmarks with a fixed warmup, takes `samples`
//! timed samples over [`std::time::Instant`], prints a short table, and
//! dumps machine-readable results to `target/bench/BENCH_<group>.json`
//! (schema documented in EXPERIMENTS.md).
//!
//! Sample counts can be overridden globally with the
//! `CR_BENCH_SAMPLES` environment variable, which keeps CI smoke runs
//! cheap without touching the bench sources.

use cr_sim::Json;
use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, unique within its group.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample — the headline number.
    pub median_ns: u64,
    /// 95th-percentile sample.
    pub p95_ns: u64,
    /// Arithmetic mean of all samples.
    pub mean_ns: u64,
    /// Simulated cycles per iteration (0 when the benchmark is not a
    /// simulation and throughput is meaningless).
    pub sim_cycles: u64,
    /// Worker-job count the routine ran under (sweep-level
    /// parallelism); 1 unless recorded via [`Group::bench_cycles_at`].
    pub jobs: usize,
    /// Spatial shard count the routine's networks stepped with; 1
    /// unless recorded via [`Group::bench_cycles_at`].
    pub shards: usize,
}

/// A named collection of benchmarks that report together.
///
/// # Examples
///
/// ```no_run
/// let mut g = cr_bench::harness::Group::new("example");
/// g.sample_size(10);
/// g.bench("sum", || (0..1000u64).sum::<u64>());
/// g.finish();
/// ```
pub struct Group {
    name: String,
    samples: u32,
    warmup: u32,
    results: Vec<BenchResult>,
    started: Instant,
    jobs: usize,
}

impl Group {
    /// Creates a group with the default 20 samples (3 warmup runs),
    /// honouring the `CR_BENCH_SAMPLES` override.
    pub fn new(name: &str) -> Group {
        let samples = std::env::var("CR_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Group {
            name: name.to_string(),
            samples,
            warmup: 3,
            results: Vec::new(),
            started: Instant::now(),
            jobs: cr_sim::pool::effective_jobs(None),
        }
    }

    /// Sets the number of timed samples per benchmark (unless the
    /// `CR_BENCH_SAMPLES` environment override is active).
    pub fn sample_size(&mut self, samples: u32) -> &mut Group {
        if std::env::var("CR_BENCH_SAMPLES").is_err() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Benchmarks `routine`, timing each call.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        self.bench_with_setup(name, || (), |()| routine());
    }

    /// Benchmarks a simulation `routine` that advances `sim_cycles`
    /// simulated cycles per call; the JSON gains a derived
    /// `cycles_per_sec` throughput figure.
    pub fn bench_cycles<T>(&mut self, name: &str, sim_cycles: u64, mut routine: impl FnMut() -> T) {
        self.bench_with_setup(name, || (), |()| routine());
        if let Some(last) = self.results.last_mut() {
            last.sim_cycles = sim_cycles;
        }
    }

    /// Benchmarks a simulation `routine` measured under an explicit
    /// `(jobs, shards)` configuration, recorded per benchmark in the
    /// JSON. Comparisons key benchmarks by `(name, jobs, shards)`
    /// (scripts/bench_compare.sh), so the same scenario measured at a
    /// different worker or shard count is a distinct data point rather
    /// than a regression of the old one.
    pub fn bench_cycles_at<T>(
        &mut self,
        name: &str,
        sim_cycles: u64,
        jobs: usize,
        shards: usize,
        routine: impl FnMut() -> T,
    ) {
        self.bench_cycles(name, sim_cycles, routine);
        if let Some(last) = self.results.last_mut() {
            last.jobs = jobs;
            last.shards = shards;
        }
    }

    /// Benchmarks `routine` with a fresh untimed `setup` product per
    /// sample — the `iter_batched` pattern, for routines that consume
    /// or mutate their input.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        for _ in 0..self.warmup {
            std::hint::black_box(routine(setup()));
        }
        let mut samples_ns: Vec<u64> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                let out = routine(input);
                let elapsed = start.elapsed();
                std::hint::black_box(out);
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        samples_ns.sort_unstable();
        let n = samples_ns.len();
        let result = BenchResult {
            name: name.to_string(),
            samples: self.samples,
            min_ns: samples_ns[0],
            median_ns: samples_ns[n / 2],
            p95_ns: samples_ns[(n * 95 / 100).min(n - 1)],
            mean_ns: samples_ns.iter().sum::<u64>() / n as u64,
            sim_cycles: 0,
            jobs: 1,
            shards: 1,
        };
        println!(
            "{:<28} {:>14} median  {:>14} p95  ({} samples)",
            format!("{}/{}", self.name, result.name),
            format_ns(result.median_ns),
            format_ns(result.p95_ns),
            result.samples,
        );
        self.results.push(result);
    }

    /// The group's results as the `BENCH_<group>.json` document.
    ///
    /// The `meta` block records the wall clock elapsed since the group
    /// was created and the effective parallelism
    /// ([`cr_sim::pool::effective_jobs`] at group creation), so a
    /// recorded baseline states the conditions it was measured under.
    /// Each benchmark object additionally carries its own `jobs` and
    /// `shards` fields (both 1 unless set via
    /// [`Group::bench_cycles_at`]) so comparisons can key on the full
    /// `(name, jobs, shards)` configuration.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::from(self.name.as_str())),
            (
                "meta",
                Json::obj([
                    (
                        "elapsed_ns",
                        Json::from(
                            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        ),
                    ),
                    ("jobs", Json::from(self.jobs as u64)),
                ]),
            ),
            (
                "benchmarks",
                Json::arr(self.results.iter().map(|r| {
                    let mut fields = vec![
                        ("name", Json::from(r.name.as_str())),
                        ("jobs", Json::from(r.jobs as u64)),
                        ("shards", Json::from(r.shards as u64)),
                        ("samples", Json::from(r.samples)),
                        ("min_ns", Json::from(r.min_ns)),
                        ("median_ns", Json::from(r.median_ns)),
                        ("p95_ns", Json::from(r.p95_ns)),
                        ("mean_ns", Json::from(r.mean_ns)),
                    ];
                    if r.sim_cycles > 0 {
                        fields.push(("sim_cycles", Json::from(r.sim_cycles)));
                        let cps = r.sim_cycles as f64 * 1e9 / r.median_ns.max(1) as f64;
                        fields.push(("cycles_per_sec", Json::from(cps.round() as u64)));
                    }
                    Json::obj(fields)
                })),
            ),
        ])
    }

    /// Writes `<target>/bench/BENCH_<group>.json` and returns the
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the output directory or file cannot be written.
    pub fn finish(self) -> Vec<BenchResult> {
        let dir = target_dir().join("bench");
        std::fs::create_dir_all(&dir).expect("create target/bench");
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty() + "\n").expect("write bench JSON");
        println!("wrote {}", path.display());
        self.results
    }
}

/// The cargo target directory the running bench was built into.
///
/// Cargo runs bench binaries with the *package* directory as cwd, so a
/// relative `target/` would scatter output under `crates/*/target/`
/// for workspace members. `CARGO_TARGET_DIR` wins when set; otherwise
/// walk up from the executable (`<target>/<profile>/deps/bin`) to the
/// directory that holds the profile dir.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.as_path();
        while let Some(parent) = dir.parent() {
            if dir.file_name().is_some_and(|n| n == "deps") {
                if let Some(target) = parent.parent() {
                    return target.to_path_buf();
                }
            }
            dir = parent;
        }
    }
    std::path::PathBuf::from("target")
}

/// Renders nanoseconds with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_summary() {
        let mut g = Group::new("harness_selftest");
        g.sample_size(5);
        g.bench("busy_loop", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let json = g.to_json();
        let benches = json.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        let b = &benches[0];
        assert_eq!(b.get("name").and_then(Json::as_str), Some("busy_loop"));
        let min = b.get("min_ns").and_then(Json::as_u64).unwrap();
        let median = b.get("median_ns").and_then(Json::as_u64).unwrap();
        let p95 = b.get("p95_ns").and_then(Json::as_u64).unwrap();
        assert!(min <= median && median <= p95, "{min} {median} {p95}");
    }

    #[test]
    fn setup_is_not_timed() {
        // A slow setup with a trivial routine must not dominate the
        // measurement: the routine is ~instant, so even p95 stays far
        // below the setup's busy-work time.
        let mut g = Group::new("harness_selftest_setup");
        g.sample_size(5);
        let mut slow_setup_ns = 0u64;
        g.bench_with_setup(
            "trivial_after_slow_setup",
            || {
                let start = Instant::now();
                let mut acc = 0u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_add(i ^ (i << 7));
                }
                slow_setup_ns = slow_setup_ns.max(start.elapsed().as_nanos() as u64);
                acc
            },
            |v| v + 1,
        );
        let json = g.to_json();
        let p95 = json.get("benchmarks").unwrap().as_arr().unwrap()[0]
            .get("p95_ns")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            p95 < slow_setup_ns / 10,
            "routine p95 {p95}ns suspiciously close to setup {slow_setup_ns}ns"
        );
    }

    #[test]
    fn meta_block_records_elapsed_and_jobs() {
        let mut g = Group::new("harness_selftest_meta");
        g.sample_size(2);
        g.bench("noop", || 1u64 + 1);
        let json = g.to_json();
        let meta = json.get("meta").expect("meta block");
        let elapsed = meta.get("elapsed_ns").and_then(Json::as_u64).unwrap();
        let jobs = meta.get("jobs").and_then(Json::as_u64).unwrap();
        assert!(elapsed > 0, "wall clock must have advanced");
        assert!(jobs >= 1, "effective parallelism is at least one");
    }

    #[test]
    fn bench_cycles_at_records_configuration() {
        let mut g = Group::new("harness_selftest_at");
        g.sample_size(2);
        g.bench_cycles("plain", 100, || 1u64 + 1);
        g.bench_cycles_at("configured", 100, 4, 7, || 2u64 + 2);
        let json = g.to_json();
        let benches = json.get("benchmarks").unwrap().as_arr().unwrap();
        let field = |b: &Json, k: &str| b.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(field(&benches[0], "jobs"), 1);
        assert_eq!(field(&benches[0], "shards"), 1);
        assert_eq!(field(&benches[1], "jobs"), 4);
        assert_eq!(field(&benches[1], "shards"), 7);
        assert!(field(&benches[1], "cycles_per_sec") > 0);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.500 µs");
        assert_eq!(format_ns(2_000_000), "2.000 ms");
        assert_eq!(format_ns(3_500_000_000), "3.500 s");
    }
}
