//! Serial-vs-parallel sweep executor baseline.
//!
//! Runs the same fixed CR load sweep through [`SweepRunner::new(1)`]
//! (the old serial path) and [`SweepRunner::new(jobs)`] at the host's
//! effective parallelism, at `Scale::Tiny` and `Scale::Quick`. The
//! resulting `target/bench/BENCH_sweep.json` records the wall clock of
//! each configuration plus a derived simulated-cycles-per-second
//! throughput; its `meta` block states the job count the run was
//! measured under, and every benchmark object carries its own
//! `(jobs, shards)` configuration so scripts/bench_compare.sh keys
//! comparisons on the full configuration — the committed repo-root
//! snapshot is the recorded baseline the ISSUE asks for.
//!
//! The sweeps are bit-identical by construction (each point owns its
//! seed), so the two configurations do identical work; any wall-clock
//! difference is pure executor overhead or parallel speedup.
//!
//! # Idle-heavy scenarios
//!
//! The `idle_*` benchmarks measure the active-set scheduler against
//! the dense reference stepper (`*_dense` variants) on workloads that
//! are mostly dead air — exactly what cycle fast-forward was built
//! for:
//!
//! * `idle_lowload_drain` — sparse trace-driven arrivals (one message
//!   every ~1.5k cycles) drained to quiescence; almost every cycle is
//!   skippable.
//! * `idle_gap_fig11` — a Fig. 11-style hotspot burst under binary
//!   exponential backoff; wall time is dominated by retransmission
//!   gaps.
//! * `idle_dead_fcr` — FCR on a torus with dead links and a sparse
//!   trace; most of the fabric is permanently idle.
//!
//! Each pair runs the identical simulation (the twin-run tests prove
//! byte-equality), so `cycles_per_sec(idle_x) / cycles_per_sec
//! (idle_x_dense)` is the scheduler's speedup on that shape.
//!
//! # Large-topology family
//!
//! The `large_*` benchmarks stress the topology zoo at sizes the paper
//! never ran — a 64×64 torus (4 096 nodes), a 16-ary fat-tree (320
//! switches) and a 128-node full mesh (16 256 channels) — each built
//! through the [`TopologyKind`] config axis and drained to quiescence
//! under the active-set scheduler, which is what makes the 4 096-node
//! point affordable at all. Sparse trace-driven arrivals keep the runs
//! idle-heavy, so these entries track both large-fabric assembly cost
//! and the scheduler's ability to fast-forward a mostly-dead network.

use cr_bench::harness::Group;
use cr_core::{Network, NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_experiments::{Scale, SweepRunner};
use cr_faults::FaultModel;
use cr_sim::{pool, Cycle, NodeId, SimRng};
use cr_topology::{KAryNCube, TopologyKind};
use cr_traffic::{LengthDistribution, Trace, TraceEvent, TrafficPattern};

/// Points per sweep: 2 VC counts x 4 loads.
const VC_COUNTS: [usize; 2] = [1, 2];
const LOADS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

fn run_sweep(jobs: usize, scale: Scale) -> usize {
    let mut points: Vec<(usize, f64)> = Vec::new();
    for vcs in VC_COUNTS {
        for load in LOADS {
            points.push((vcs, load));
        }
    }
    let delivered: Vec<u64> = SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|(vcs, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs })
                        .protocol(ProtocolKind::Cr)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
                        .seed(0xB0);
                    let mut net = b.build();
                    net.run(scale.cycles()).counters.messages_delivered
                }
            })
            .collect(),
    );
    delivered.len()
}

fn sim_cycles(scale: Scale) -> u64 {
    (VC_COUNTS.len() * LOADS.len()) as u64 * (scale.warmup() + scale.cycles())
}

/// The three idle-heavy shapes (see the module docs).
#[derive(Clone, Copy)]
enum IdleCase {
    LowLoadDrain,
    GapFig11,
    DeadFcr,
}

/// Builds the scenario's network with its messages queued/scheduled,
/// ready to drain.
fn idle_net(case: IdleCase) -> Network {
    match case {
        IdleCase::LowLoadDrain => {
            let mut b = NetworkBuilder::new(KAryNCube::torus(8, 2));
            b.routing(RoutingKind::Adaptive { vcs: 1 })
                .protocol(ProtocolKind::Cr)
                .warmup(0)
                .seed(0x1D1E);
            let mut net = b.build();
            let events: Vec<TraceEvent> = (0..64u64)
                .map(|k| TraceEvent {
                    at: Cycle::new(k * 1_500),
                    src: NodeId::new((k * 7 % 64) as u32),
                    dst: NodeId::new((k * 7 % 64 + 13) as u32 % 64),
                    length: 16,
                })
                .collect();
            net.schedule_trace(&Trace::from_events(events));
            net
        }
        IdleCase::GapFig11 => {
            let mut b = NetworkBuilder::new(KAryNCube::torus(8, 2));
            b.routing(RoutingKind::Adaptive { vcs: 1 })
                .protocol(ProtocolKind::Cr)
                .timeout(32)
                .retransmit(RetransmitScheme::ExponentialBackoff {
                    slot: 64,
                    ceiling: 10,
                })
                .warmup(0)
                .seed(110);
            let mut net = b.build();
            // A hotspot burst small enough that, once everyone is in
            // backoff, the whole fabric goes quiet between retries.
            for src in (4..64u32).step_by(4) {
                net.send_message(NodeId::new(src), NodeId::new(0), 64);
            }
            net
        }
        IdleCase::DeadFcr => {
            let mut b = NetworkBuilder::new(KAryNCube::torus(8, 2));
            let topo = KAryNCube::torus(8, 2);
            let mut faults = FaultModel::new();
            faults
                .kill_random_links_connected(&topo, 20, &mut SimRng::from_seed(0xFA))
                .expect("fault plan must keep the network connected");
            b.routing(RoutingKind::AdaptiveMisroute {
                vcs: 1,
                extra_hops: 6,
            })
            .protocol(ProtocolKind::Fcr)
            .faults(faults)
            .warmup(0)
            .seed(0xFC);
            let mut net = b.build();
            let events: Vec<TraceEvent> = (0..32u64)
                .map(|k| TraceEvent {
                    at: Cycle::new(k * 500),
                    src: NodeId::new((k * 11 % 64) as u32),
                    dst: NodeId::new((k * 11 % 64 + 31) as u32 % 64),
                    length: 16,
                })
                .collect();
            net.schedule_trace(&Trace::from_events(events));
            net
        }
    }
}

/// Drains the scenario to quiescence; returns the final cycle (the
/// simulated-cycle count, since all idle nets start at cycle 0).
fn run_idle(case: IdleCase, dense: bool) -> u64 {
    let mut net = idle_net(case);
    net.set_reference_stepper(dense);
    let done = net.run_until_quiescent(2_000_000);
    assert!(done, "idle scenario must drain");
    net.now().as_u64()
}

/// FCR riding out a live kill-and-revive storm (DESIGN.md §13): a
/// seeded set of regional outages fires while a finite message trace
/// drains. Exercises the churn hot path — per-cycle schedule checks,
/// dead-out flag flips, drain trackers, and the sharded arrivals
/// gate flipping parallel -> serial -> parallel.
fn churn_net() -> Network {
    let topo = KAryNCube::torus(8, 2);
    let mut schedule = cr_faults::ChurnSchedule::new();
    schedule.random_regional_outages(
        &topo,
        4,
        Cycle::new(500),
        Cycle::new(4_000),
        1,
        300,
        900,
        &mut SimRng::from_seed(0x5708),
    );
    let mut b = NetworkBuilder::new(KAryNCube::torus(8, 2));
    b.routing(RoutingKind::AdaptiveMisroute {
        vcs: 1,
        extra_hops: 6,
    })
    .protocol(ProtocolKind::Fcr)
    .churn(schedule)
    .warmup(0)
    .seed(0xC4A2);
    let mut net = b.build();
    let events: Vec<TraceEvent> = (0..256u64)
        .map(|k| TraceEvent {
            at: Cycle::new(k * 20),
            src: NodeId::new((k.wrapping_mul(797) % 64) as u32),
            dst: NodeId::new(((k.wrapping_mul(2531) + 33) % 64) as u32),
            length: 16,
        })
        .filter(|e| e.src != e.dst)
        .collect();
    net.schedule_trace(&Trace::from_events(events));
    net
}

/// Drains the churn storm to quiescence; returns the final cycle.
fn run_churn_storm() -> u64 {
    let mut net = churn_net();
    let done = net.run_until_quiescent(2_000_000);
    assert!(done, "churn storm must drain");
    net.now().as_u64()
}

/// The large-topology shapes (see the module docs).
#[derive(Clone, Copy)]
enum LargeCase {
    /// 64×64 torus, 4 096 nodes, CR over minimal-adaptive routing.
    Torus64,
    /// 256×256 torus, 65 536 nodes — the assembly-cost stress point.
    Torus256,
    /// 16-ary fat-tree, 320 switches, CR.
    FatTree16,
    /// 128-node full mesh running the zero-VC ordered-detour scheme.
    FullMesh128,
}

impl LargeCase {
    fn kind(self) -> TopologyKind {
        match self {
            LargeCase::Torus64 => TopologyKind::Torus { radix: 64, dims: 2 },
            LargeCase::Torus256 => TopologyKind::Torus {
                radix: 256,
                dims: 2,
            },
            LargeCase::FatTree16 => TopologyKind::FatTree { k: 16 },
            LargeCase::FullMesh128 => TopologyKind::FullMesh { nodes: 128 },
        }
    }
}

/// Builds the large fabric through the [`TopologyKind`] config axis
/// with a sparse message trace scheduled, ready to drain.
fn large_net(case: LargeCase) -> Network {
    let kind = case.kind();
    let mut b = NetworkBuilder::from_kind(&kind);
    match case {
        LargeCase::Torus64 | LargeCase::Torus256 | LargeCase::FatTree16 => {
            b.routing(RoutingKind::Adaptive { vcs: 1 })
                .protocol(ProtocolKind::Cr)
        }
        LargeCase::FullMesh128 => b
            .routing(RoutingKind::FullMeshOrdered)
            .protocol(ProtocolKind::Baseline),
    }
    .warmup(0)
    .seed(0x1A2);
    let mut net = b.build();
    let n = kind.num_nodes() as u64;
    // Sparse arrivals scattered across the fabric: mostly dead air, so
    // the active-set scheduler (not raw stepping) carries the run.
    let events: Vec<TraceEvent> = (0..48u64)
        .map(|k| TraceEvent {
            at: Cycle::new(k * 400),
            src: NodeId::new((k.wrapping_mul(797) % n) as u32),
            dst: NodeId::new(((k.wrapping_mul(2531) + n / 2 + 1) % n) as u32),
            length: 16,
        })
        .filter(|e| e.src != e.dst)
        .collect();
    net.schedule_trace(&Trace::from_events(events));
    net
}

/// Drains a large-topology scenario under the active-set scheduler;
/// returns the final cycle.
fn run_large(case: LargeCase) -> u64 {
    let mut net = large_net(case);
    net.set_reference_stepper(false);
    let done = net.run_until_quiescent(2_000_000);
    assert!(done, "large-topology scenario must drain");
    net.now().as_u64()
}

/// Builds the *dense* variant of a large fabric for the shard-scaling
/// pairs: one message per node, arrivals staggered over a short
/// window, so per-cycle router/link stepping — the work sharding
/// splits — dominates instead of fast-forwarded dead air.
fn shard_net(case: LargeCase, shards: usize) -> Network {
    let kind = case.kind();
    let mut b = NetworkBuilder::from_kind(&kind);
    match case {
        LargeCase::Torus64 | LargeCase::Torus256 | LargeCase::FatTree16 => {
            b.routing(RoutingKind::Adaptive { vcs: 1 })
                .protocol(ProtocolKind::Cr)
        }
        LargeCase::FullMesh128 => b
            .routing(RoutingKind::FullMeshOrdered)
            .protocol(ProtocolKind::Baseline),
    }
    .warmup(0)
    .seed(0x5A)
    .shards(shards);
    let mut net = b.build();
    let n = kind.num_nodes() as u64;
    // One message per node on small fabrics; every 4th node on the
    // 4 096-node torus — still >1 000 concurrent worms, but the drain
    // stays affordable at full bench sample counts.
    let stride = if n > 1024 { 4 } else { 1 };
    let events: Vec<TraceEvent> = (0..n)
        .step_by(stride)
        .map(|k| TraceEvent {
            at: Cycle::new((k % 64) * 4),
            src: NodeId::new(k as u32),
            dst: NodeId::new(((k.wrapping_mul(2531) + n / 2 + 1) % n) as u32),
            length: 16,
        })
        .filter(|e| e.src != e.dst)
        .collect();
    net.schedule_trace(&Trace::from_events(events));
    net
}

/// Drains a dense shard-scaling scenario; returns the final cycle.
/// The `_sh1`/`_sh4` pairs run the identical simulation (the shard
/// twin-run tests prove byte-equality), so their `cycles_per_sec`
/// ratio is the sharded stepper's speedup — or, on a single-core
/// host, its overhead.
fn run_shard(case: LargeCase, shards: usize) -> u64 {
    let mut net = shard_net(case, shards);
    let done = net.run_until_quiescent(2_000_000);
    assert!(done, "shard-scaling scenario must drain");
    net.now().as_u64()
}

fn main() {
    let jobs = pool::effective_jobs(None);
    let mut g = Group::new("sweep");

    g.sample_size(10);
    g.bench_cycles_at("tiny_serial", sim_cycles(Scale::Tiny), 1, 1, || {
        run_sweep(1, Scale::Tiny)
    });
    g.bench_cycles_at(
        &format!("tiny_parallel_j{jobs}"),
        sim_cycles(Scale::Tiny),
        jobs,
        1,
        || run_sweep(jobs, Scale::Tiny),
    );
    // A fixed jobs = 2 point exists on every host (even single-core
    // ones, where `jobs` above resolves to 1), so the snapshot always
    // carries a jobs > 1 configuration for the executor to be compared
    // under.
    if jobs != 2 {
        g.bench_cycles_at("tiny_parallel_j2", sim_cycles(Scale::Tiny), 2, 1, || {
            run_sweep(2, Scale::Tiny)
        });
    }

    g.sample_size(5);
    g.bench_cycles_at("quick_serial", sim_cycles(Scale::Quick), 1, 1, || {
        run_sweep(1, Scale::Quick)
    });
    g.bench_cycles_at(
        &format!("quick_parallel_j{jobs}"),
        sim_cycles(Scale::Quick),
        jobs,
        1,
        || run_sweep(jobs, Scale::Quick),
    );

    // Idle-heavy active-vs-dense pairs. The simulated-cycle count is
    // taken from a probe run; the twin-run equivalence tests guarantee
    // the dense variant simulates the exact same cycles.
    let idle = [
        ("idle_lowload_drain", IdleCase::LowLoadDrain),
        ("idle_gap_fig11", IdleCase::GapFig11),
        ("idle_dead_fcr", IdleCase::DeadFcr),
    ];
    for (name, case) in idle {
        let cycles = run_idle(case, false);
        g.sample_size(10);
        g.bench_cycles(name, cycles, || run_idle(case, false));
        g.sample_size(5);
        g.bench_cycles(&format!("{name}_dense"), cycles, || run_idle(case, true));
    }

    // Live-churn storm drain: FCR through seeded regional outages
    // (kill-and-revive) with a finite trace. Tracks the cost of the
    // per-cycle churn machinery plus the storm's protocol traffic.
    {
        let cycles = run_churn_storm();
        g.sample_size(10);
        g.bench_cycles("churn_storm_drain", cycles, run_churn_storm);
    }

    // Large-topology family: zoo fabrics at sizes only the active-set
    // scheduler makes affordable (the 64×64 torus is the acceptance
    // point for PR 6's topology work).
    let large = [
        ("large_torus64_drain", LargeCase::Torus64),
        ("large_torus256_drain", LargeCase::Torus256),
        ("large_fattree16_drain", LargeCase::FatTree16),
        ("large_fullmesh128_drain", LargeCase::FullMesh128),
    ];
    for (name, case) in large {
        let cycles = run_large(case);
        // Sample counts scale inversely with per-iteration cost: the
        // second-scale tori stay cheap at 3 samples, while the
        // millisecond-scale fabrics take 15 so their medians are
        // stable enough for the 25% bench_compare gate.
        g.sample_size(match case {
            LargeCase::Torus64 | LargeCase::Torus256 => 3,
            LargeCase::FatTree16 | LargeCase::FullMesh128 => 15,
        });
        g.bench_cycles(name, cycles, || run_large(case));
    }

    // Shard-scaling pairs: the same dense drain at shards = 1 (serial
    // stepper) and shards = 4 (spatial sharding, DESIGN.md §12). The
    // workload is one message per node, so stepping dominates and the
    // pair ratio measures sharding itself rather than fast-forward.
    let shard_pairs = [
        ("large_torus64_drain", LargeCase::Torus64),
        ("large_fattree16_drain", LargeCase::FatTree16),
        ("large_fullmesh128_drain", LargeCase::FullMesh128),
    ];
    for (name, case) in shard_pairs {
        let cycles = run_shard(case, 1);
        // Same cost-scaled sampling as the drain family above.
        g.sample_size(match case {
            LargeCase::Torus64 | LargeCase::Torus256 => 3,
            LargeCase::FatTree16 | LargeCase::FullMesh128 => 10,
        });
        g.bench_cycles_at(&format!("{name}_sh1"), cycles, 1, 1, || run_shard(case, 1));
        g.bench_cycles_at(&format!("{name}_sh4"), cycles, 1, 4, || run_shard(case, 4));
    }

    g.finish();
}
