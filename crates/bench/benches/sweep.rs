//! Serial-vs-parallel sweep executor baseline.
//!
//! Runs the same fixed CR load sweep through [`SweepRunner::new(1)`]
//! (the old serial path) and [`SweepRunner::new(jobs)`] at the host's
//! effective parallelism, at `Scale::Tiny` and `Scale::Quick`. The
//! resulting `target/bench/BENCH_sweep.json` records the wall clock of
//! each configuration plus a derived simulated-cycles-per-second
//! throughput, and its `meta` block states the job count the run was
//! measured under — the committed repo-root snapshot is the recorded
//! baseline the ISSUE asks for.
//!
//! The sweeps are bit-identical by construction (each point owns its
//! seed), so the two configurations do identical work; any wall-clock
//! difference is pure executor overhead or parallel speedup.

use cr_bench::harness::Group;
use cr_core::{ProtocolKind, RoutingKind};
use cr_experiments::{Scale, SweepRunner};
use cr_sim::pool;
use cr_traffic::{LengthDistribution, TrafficPattern};

/// Points per sweep: 2 VC counts x 4 loads.
const VC_COUNTS: [usize; 2] = [1, 2];
const LOADS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

fn run_sweep(jobs: usize, scale: Scale) -> usize {
    let mut points: Vec<(usize, f64)> = Vec::new();
    for vcs in VC_COUNTS {
        for load in LOADS {
            points.push((vcs, load));
        }
    }
    let delivered: Vec<u64> = SweepRunner::new(jobs).run(
        points
            .into_iter()
            .map(|(vcs, load)| {
                move || {
                    let mut b = scale.builder();
                    b.routing(RoutingKind::Adaptive { vcs })
                        .protocol(ProtocolKind::Cr)
                        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), load)
                        .seed(0xB0);
                    let mut net = b.build();
                    net.run(scale.cycles()).counters.messages_delivered
                }
            })
            .collect(),
    );
    delivered.len()
}

fn sim_cycles(scale: Scale) -> u64 {
    (VC_COUNTS.len() * LOADS.len()) as u64 * (scale.warmup() + scale.cycles())
}

fn main() {
    let jobs = pool::effective_jobs(None);
    let mut g = Group::new("sweep");

    g.sample_size(10);
    g.bench_cycles("tiny_serial", sim_cycles(Scale::Tiny), || {
        run_sweep(1, Scale::Tiny)
    });
    g.bench_cycles(&format!("tiny_parallel_j{jobs}"), sim_cycles(Scale::Tiny), || {
        run_sweep(jobs, Scale::Tiny)
    });

    g.sample_size(5);
    g.bench_cycles("quick_serial", sim_cycles(Scale::Quick), || {
        run_sweep(1, Scale::Quick)
    });
    g.bench_cycles(
        &format!("quick_parallel_j{jobs}"),
        sim_cycles(Scale::Quick),
        || run_sweep(jobs, Scale::Quick),
    );

    g.finish();
}
