//! One benchmark per paper artifact.
//!
//! Each benchmark runs its experiment end-to-end at `Scale::Tiny` with
//! trimmed parameter lists, so `cargo bench` both (a) regenerates every
//! table/figure shape in miniature and (b) tracks the wall-clock cost
//! of each experiment. Full paper-scale numbers come from the
//! `cr-experiments` binaries. Results land in
//! `target/bench/BENCH_figures.json`.

use cr_bench::harness::Group;
use cr_experiments::{
    ext_ablation, ext_distribution, ext_nonuniform, ext_par, fig09, fig10, fig11, fig12,
    fig14ab, fig14cd, fig14ef, fig15, fig16, tab_hardware, tab_padding, tab_pds, Scale,
};

fn main() {
    let mut g = Group::new("figures");
    g.sample_size(10);

    g.bench("fig09_cr_base", || {
        fig09::run(&fig09::Config {
            scale: Scale::Tiny,
            message_lengths: vec![16],
            seed: 1,
        })
    });

    g.bench("fig10_timeout", || {
        fig10::run(&fig10::Config {
            scale: Scale::Tiny,
            timeouts: vec![8, 64],
            loads: vec![0.3],
            message_len: 16,
            seed: 2,
        })
    });

    g.bench("fig11_backoff", || {
        fig11::run(&fig11::Config {
            scale: Scale::Tiny,
            static_gaps: vec![16],
            timeout: 32,
            message_len: 16,
            seed: 3,
        })
    });

    g.bench("fig12_killscheme", || {
        fig12::run(&fig12::Config {
            scale: Scale::Tiny,
            timeout: 32,
            message_len: 16,
            extra_loads: vec![0.55],
            seed: 4,
        })
    });

    g.bench("fig14ab_buffers", || {
        fig14ab::run(&fig14ab::Config {
            scale: Scale::Tiny,
            dor_depths: vec![2, 16],
            cr_depths: vec![2],
            message_len: 16,
            seed: 5,
        })
    });

    g.bench("fig14cd_vcs", || {
        fig14cd::run(&fig14cd::Config {
            scale: Scale::Tiny,
            vc_counts: vec![2],
            dor_total_buffer: 8,
            message_len: 16,
            seed: 6,
        })
    });

    g.bench("fig14ef_interface", || {
        fig14ef::run(&fig14ef::Config {
            scale: Scale::Tiny,
            channels: vec![1, 2],
            message_len: 16,
            seed: 7,
        })
    });

    g.bench("fig15_fcr_transient", || {
        fig15::run(&fig15::Config {
            scale: Scale::Tiny,
            fault_rates: vec![0.0, 1e-3],
            load: 0.15,
            message_len: 12,
            seed: 8,
        })
    });

    g.bench("fig16_fcr_permanent", || {
        fig16::run(&fig16::Config {
            scale: Scale::Tiny,
            dead_links: vec![0, 4],
            load: 0.1,
            message_len: 12,
            misroute_budget: 8,
            seed: 9,
        })
    });

    g.bench("tab_pds", || {
        tab_pds::run(&tab_pds::Config {
            scale: Scale::Tiny,
            adaptive_vcs: 1,
            message_len: 16,
            seed: 10,
        })
    });

    g.bench("tab_padding", || {
        tab_padding::run(&tab_padding::Config {
            scale: Scale::Tiny,
            message_lengths: vec![4, 32],
            channel_latencies: vec![1],
            load: 0.1,
            seed: 11,
        })
    });

    g.bench("tab_hardware", || {
        tab_hardware::run(&tab_hardware::Config::default())
    });

    g.bench("ext_distribution", || {
        ext_distribution::run(&ext_distribution::Config {
            scale: Scale::Tiny,
            loads: vec![0.3],
            seed: 13,
        })
    });

    g.bench("ext_nonuniform", || {
        ext_nonuniform::run(&ext_nonuniform::Config {
            scale: Scale::Tiny,
            message_len: 16,
            seed: 12,
        })
    });

    g.bench("ext_ablation", || {
        ext_ablation::run(&ext_ablation::Config {
            scale: Scale::Tiny,
            ..Default::default()
        })
    });

    g.bench("ext_par", || {
        ext_par::run(&ext_par::Config {
            scale: Scale::Tiny,
            message_len: 16,
            seed: 14,
        })
    });

    g.finish();
}
