//! Hot-path microbenchmarks of the simulator itself.
//!
//! These track the cost of simulating one kilocycle of a 4×4 torus
//! under the three protocols at a light and a saturating load, plus
//! the throughput of the pure routing functions. They guard against
//! performance regressions in the inner loops that every experiment
//! pays for. Results land in `target/bench/BENCH_<group>.json`.

use cr_bench::harness::Group;
use cr_bench::reference_network;
use cr_core::ProtocolKind;
use cr_router::routing::{DimensionOrder, DuatoProtocol, MinimalAdaptive};
use cr_router::{Flit, FlitKind, RouteCtx, RoutingFunction, WormId};
use cr_sim::{Cycle, MessageId, NodeId, SimRng};
use cr_topology::{KAryNCube, Topology};

fn bench_network_stepping() {
    let mut g = Group::new("network_kilocycle");
    g.sample_size(20);
    for (name, protocol, load) in [
        ("dor_baseline_light", ProtocolKind::Baseline, 0.1),
        ("dor_baseline_saturated", ProtocolKind::Baseline, 0.6),
        ("cr_light", ProtocolKind::Cr, 0.1),
        ("cr_saturated", ProtocolKind::Cr, 0.6),
        ("fcr_light", ProtocolKind::Fcr, 0.1),
    ] {
        g.bench_with_setup(
            name,
            || {
                let mut net = reference_network(protocol, load);
                net.run(500); // reach steady state once per sample
                net
            },
            |mut net| {
                for _ in 0..1_000 {
                    net.step();
                }
                net
            },
        );
    }
    g.finish();
}

fn bench_routing_functions() {
    let mut g = Group::new("routing_function");
    let topo = KAryNCube::torus(8, 2);
    let header = Flit::new(
        WormId::new(MessageId::new(1), 0),
        FlitKind::Head,
        NodeId::new(0),
        NodeId::new(27),
        0,
        0,
        16,
        16,
        Cycle::ZERO,
    );
    let dead = vec![false; topo.max_ports()];

    let cases: Vec<(&str, Box<dyn RoutingFunction>)> = vec![
        ("dimension_order", Box::new(DimensionOrder::torus(1))),
        ("minimal_adaptive", Box::new(MinimalAdaptive::new(2))),
        ("duato", Box::new(DuatoProtocol::torus(2))),
    ];
    for (name, rf) in cases {
        let mut rng = SimRng::from_seed(3);
        let mut out = Vec::new();
        g.bench(name, || {
            // One sample = many route lookups, so the per-call cost is
            // resolvable above timer granularity.
            let mut total = 0usize;
            for _ in 0..10_000 {
                out.clear();
                let mut ctx = RouteCtx {
                    topo: &topo,
                    node: NodeId::new(0),
                    flit: &header,
                    dead_out: &dead,
                    rng: &mut rng,
                };
                rf.candidates(&mut ctx, &mut out);
                total += out.len();
            }
            total
        });
    }
    g.finish();
}

fn main() {
    bench_network_stepping();
    bench_routing_functions();
}
