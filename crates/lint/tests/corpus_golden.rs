//! Golden tests over the fixture corpus.
//!
//! Every `tests/corpus/<name>.rs` fixture declares the workspace path
//! it should be linted *as* in a first-line `//@ lint-as: <path>`
//! header (rule scoping is path-based, and the corpus itself is
//! excluded from workspace walks). Its findings, rendered in the human
//! format, must match `tests/corpus/<name>.expected` byte for byte.
//!
//! To update the goldens after an intentional rule change:
//!
//! ```text
//! CR_LINT_BLESS=1 cargo test -p cr-lint --test corpus_golden
//! ```
//!
//! then review the `.expected` diff like any other code change.

use cr_lint::config::FileContext;
use cr_lint::diagnostics::{render_human, sort};
use cr_lint::lint_file;
use cr_lint::rules::RULES;
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Sorted fixture paths (`*.rs` under the corpus directory).
fn fixtures() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "corpus directory has no fixtures");
    out
}

/// Lints one fixture under its pretend path, returning rendered
/// findings.
fn lint_fixture(path: &Path) -> String {
    let src = fs::read_to_string(path).expect("readable fixture");
    let header = src.lines().next().unwrap_or("");
    let pretend = header
        .strip_prefix("//@ lint-as:")
        .map(str::trim)
        .unwrap_or_else(|| panic!("{} is missing its `//@ lint-as: <path>` header", path.display()));
    let ctx = FileContext::classify(pretend)
        .unwrap_or_else(|| panic!("{}: unclassifiable lint-as path {pretend}", path.display()));
    let mut diags = lint_file(&ctx, &src);
    sort(&mut diags);
    render_human(&diags)
}

#[test]
fn corpus_matches_golden_expectations() {
    let bless = std::env::var_os("CR_LINT_BLESS").is_some();
    for path in fixtures() {
        let got = lint_fixture(&path);
        let expected_path = path.with_extension("expected");
        if bless {
            fs::write(&expected_path, &got).expect("writable golden file");
            continue;
        }
        let want = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "{} has no golden file; bless with CR_LINT_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{} drifted from its golden file (re-bless with CR_LINT_BLESS=1 and review the diff)",
            path.display()
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    let mut all = String::new();
    for path in fixtures() {
        all.push_str(&fs::read_to_string(path.with_extension("expected")).unwrap_or_default());
    }
    for rule in RULES {
        assert!(
            all.contains(&format!("[{rule}]")),
            "no corpus fixture exercises rule `{rule}`"
        );
    }
}

#[test]
fn corpus_has_a_clean_fixture_and_no_orphans() {
    let mut saw_clean = false;
    for path in fixtures() {
        let expected = fs::read_to_string(path.with_extension("expected")).unwrap_or_default();
        saw_clean |= expected.is_empty();
    }
    assert!(saw_clean, "corpus needs at least one clean (empty-golden) fixture");

    // Every .expected file must belong to a fixture.
    for entry in fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let p = entry.expect("readable dir entry").path();
        if p.extension().is_some_and(|e| e == "expected") {
            assert!(
                p.with_extension("rs").exists(),
                "orphan golden file {} has no fixture",
                p.display()
            );
        }
    }
}
