//@ lint-as: crates/router/src/router.rs
fn narrow(link: u64) -> u16 {
    link as u16
}

fn widen_but_still_flagged(x: u8) -> u32 {
    x as u32
}

fn fine(x: u32) -> u64 {
    // Widening to u64 (or pointer-width usize) is outside the rule.
    (x as u64) + (x as usize as u64)
}

fn justified(seq: u64) -> u8 {
    // cr-lint: allow(integer-narrowing, reason = "masked to one byte on the line below")
    (seq & 0xff) as u8
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast_freely() {
        assert_eq!(3_u64 as u8, 3);
    }
}
