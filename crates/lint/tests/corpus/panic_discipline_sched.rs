//@ lint-as: crates/sim/src/sched.rs
// The active-set scheduler module is on every cycle's hot path, so
// the panic-discipline rule must cover it like the other cycle-loop
// files.
fn drain(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

/// Asserts are fine (they state invariants, and the capacity check in
/// `ActiveSet::new` is construction-time, not per-cycle); only the
/// panicking escape hatches need justification.
fn arm(capacity: usize) {
    assert!(capacity > 0);
    debug_assert!(capacity < 1 << 20);
}

fn rearm(id: Option<u32>) -> u32 {
    // cr-lint: allow(panic-discipline, reason = "fixture: justified escape hatch")
    id.expect("armed")
}
