//@ lint-as: crates/sim/src/fixture.rs
use std::collections::HashMap;

fn count() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    // Test code may model against hash collections (killmap.rs does).
    use std::collections::HashSet;

    #[test]
    fn model() {
        let _ = HashSet::<u32>::new();
    }
}
