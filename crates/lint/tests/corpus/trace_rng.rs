//@ lint-as: crates/core/src/fixture.rs
fn record(sink: &mut Sink, prng: &mut SimRng) {
    // Drawing before the closure is fine: the value exists whether or
    // not tracing is enabled.
    let jitter = prng.next_u32();
    sink.emit(|| Event::Kill { at: rng.next_u64() });
    sink.emit(|| Event::Stall { at: jitter });
}
