//@ lint-as: crates/experiments/src/fixture.rs
fn fan_out() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
