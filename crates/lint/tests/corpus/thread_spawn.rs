//@ lint-as: crates/experiments/src/fixture.rs
use std::thread::spawn;

fn fan_out() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}

fn bare_fan_out() -> i32 {
    // The import above makes this a thread spawn with nothing in
    // front of it — still a spawn.
    let handle = spawn(|| 2 + 2);
    handle.join().unwrap_or(0)
}

struct Scheduler;
impl Scheduler {
    // A *definition* named spawn is not a call; only call sites are
    // flagged (the method call in schedule below would be, if this
    // were a real thread API).
    fn spawn(&self) -> i32 {
        7
    }
}
