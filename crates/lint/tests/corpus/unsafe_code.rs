//@ lint-as: crates/topology/src/fixture.rs
fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
