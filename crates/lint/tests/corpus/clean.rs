//@ lint-as: crates/core/src/injector.rs
use std::collections::BTreeMap;

fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> u32 {
    let Some(v) = m.get(&k) else {
        return 0;
    };
    *v
}
