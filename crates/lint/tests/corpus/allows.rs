//@ lint-as: crates/core/src/receiver.rs
fn justified(x: Option<u32>) -> u32 {
    // cr-lint: allow(panic-discipline, reason = "fixture: invariant documented at the call site")
    x.unwrap()
}

fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // cr-lint: allow(panic-discipline, reason = "fixture: trailing-comment form")
}

// cr-lint: allow(panic-discipline, reason = "nothing below this line panics")
fn stale() {}

// cr-lint: allow(hash-collections)
fn missing_reason() {}

// cr-lint: deny(panic-discipline, reason = "no such directive")
fn unknown_directive() {}
