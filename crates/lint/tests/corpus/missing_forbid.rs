//@ lint-as: crates/traffic/src/lib.rs
//! A crate root without the mandatory `#![forbid(unsafe_code)]`.

pub fn noop() {}
