//@ lint-as: crates/core/src/network.rs
fn hot(x: Option<u32>, y: Option<u32>) -> u32 {
    let v = x.unwrap();
    let w = y.expect("present");
    if v > w {
        panic!("inverted");
    }
    todo!()
}

/// Doc comments may say `unwrap` freely; `unwrap_or_else` is fallible
/// handling, not a panic site.
fn cold(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 0)
}
