//@ lint-as: crates/core/src/fixture.rs
fn shard_fan_out(tasks: Vec<fn()>) {
    std::thread::scope(|s| {
        for t in tasks {
            s.spawn(move || t());
        }
    });
}

struct Nursery;
impl Nursery {
    // A method merely *named* scope is not a thread scope.
    fn scope(&self) -> i32 {
        42
    }
}

fn fine() -> i32 {
    Nursery.scope()
}
