//@ lint-as: crates/router/src/fixture.rs
use std::time::Instant;

fn elapsed_nanos() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
