//@ lint-as: crates/metrics/src/fixture.rs
use serde::Serialize;
use std::fmt;

extern crate rand;

mod local;
// Uniform paths: a locally declared module is a legitimate root.
pub use local::Thing;

fn display(t: &local::Thing) -> String {
    format!("{t:?}")
}
