//! Findings and their two output formats.
//!
//! A [`Diagnostic`] names a rule violation at an exact source
//! position. Human output is one `file:line:col: [rule] message` line
//! per finding (clickable in most terminals and editors); `--json`
//! output is a stable array-of-objects schema for `scripts/verify.sh`
//! and any future CI tooling. Diagnostics sort by position so output
//! is deterministic regardless of rule evaluation order.

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sorts findings into reporting order: by file, then position, then
/// rule (two rules can fire on one token), then message — the full
/// record is the key, so `--json` output is byte-stable even if one
/// rule someday emits two differently-worded findings on one token.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message))
    });
}

/// Renders findings as newline-terminated human-readable lines.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array (pretty-printed one object per
/// finding), e.g.:
///
/// ```text
/// [
///   {"file":"crates/core/src/network.rs","line":12,"col":9,
///    "rule":"panic-discipline","message":"…"}
/// ]
/// ```
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"file\":\"{}\",", json_escape(&d.file)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"col\":{},", d.col));
        out.push_str(&format!("\"rule\":\"{}\",", json_escape(d.rule)));
        out.push_str(&format!("\"message\":\"{}\"", json_escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, col: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule,
            message: "m \"q\"".to_string(),
        }
    }

    #[test]
    fn sorted_and_rendered() {
        let mut d = vec![diag("b.rs", 1, 1, "r"), diag("a.rs", 2, 1, "r"), diag("a.rs", 1, 9, "r")];
        sort(&mut d);
        let human = render_human(&d);
        let lines: Vec<&str> = human.lines().collect();
        assert!(lines[0].starts_with("a.rs:1:9:"));
        assert!(lines[1].starts_with("a.rs:2:1:"));
        assert!(lines[2].starts_with("b.rs:1:1:"));
    }

    #[test]
    fn same_position_same_rule_sorts_by_message() {
        let mut a = diag("a.rs", 1, 1, "r");
        a.message = "zeta".to_string();
        let mut b = diag("a.rs", 1, 1, "r");
        b.message = "alpha".to_string();
        // Whatever order findings arrive in, rendering is identical.
        let mut fwd = vec![a.clone(), b.clone()];
        let mut rev = vec![b, a];
        sort(&mut fwd);
        sort(&mut rev);
        assert_eq!(render_json(&fwd), render_json(&rev));
        assert_eq!(fwd[0].message, "alpha");
    }

    #[test]
    fn json_is_escaped_and_parses() {
        let d = vec![diag("a\"b.rs", 3, 4, "rule-x")];
        let json = render_json(&d);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"line\":3"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
