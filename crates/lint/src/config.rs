//! Where each rule applies: the workspace layout and scoping tables.
//!
//! The rules are grounded in contracts this repo already enforces
//! dynamically (DESIGN.md §7 "Determinism & RNG", §8 "Observability &
//! tracing", `tests/hermetic.rs`); this module encodes *where* those
//! contracts bind. Scoping is path-based and deliberately explicit —
//! a new crate or a new hot-path module must be added here, in a
//! reviewed diff, to change what gets checked.

/// Crate directory names (under `crates/`) whose non-test sources are
/// result paths: anything nondeterministic here can change reported
/// numbers. `HashMap`/`HashSet` are banned in favour of `KilledMap`,
/// dense `Vec`s, or `BTreeMap`/`BTreeSet`.
pub const HASH_RULE_CRATES: &[&str] = &["sim", "router", "core", "faults", "experiments", "check"];

/// The one crate allowed to read wall clocks: the bench harness times
/// things by definition. Everything else must be cycle-driven.
pub const WALL_CLOCK_CRATE: &str = "bench";

/// The one module allowed to start threads: the deterministic
/// work-stealing pool. Sweep parallelism must flow through it so the
/// `--jobs`-invariance contract holds.
pub const SPAWN_EXEMPT_FILES: &[&str] = &["crates/sim/src/pool.rs"];

/// Cycle-loop hot-path modules (plus the two triaged satellite files,
/// `cr_faults` and the experiment harness) where `unwrap`/`expect`/
/// `panic!`/`todo!`/`unimplemented!` need a justification: a panic
/// here kills a whole sweep worker mid-run.
pub const PANIC_RULE_FILES: &[&str] = &[
    "crates/core/src/network.rs",
    "crates/core/src/network_sharded.rs",
    "crates/core/src/injector.rs",
    "crates/core/src/receiver.rs",
    "crates/core/src/killmap.rs",
    "crates/router/src/router.rs",
    "crates/sim/src/fifo.rs",
    "crates/sim/src/sched.rs",
    "crates/sim/src/shard.rs",
    "crates/faults/src/lib.rs",
    "crates/faults/src/churn.rs",
    "crates/experiments/src/harness.rs",
    "crates/core/src/check_api.rs",
    "crates/check/src/model.rs",
];

/// Protocol and hot-path files where a bare `as` narrowing cast
/// (`as u8`/`u16`/`u32`/`i8`/`i16`/`i32`) is banned: a silently
/// wrapping cast on a flit count, credit tally or state encoding is
/// exactly the kind of bug the checker exists to rule out. Use
/// `try_from` (and handle or justify the failure) or annotate with
/// `// cr-lint: allow(integer-narrowing, reason = "…")`.
pub const NARROWING_RULE_FILES: &[&str] = &[
    "crates/core/src/network.rs",
    "crates/core/src/network_sharded.rs",
    "crates/core/src/injector.rs",
    "crates/core/src/receiver.rs",
    "crates/core/src/killmap.rs",
    "crates/core/src/check_api.rs",
    "crates/router/src/router.rs",
    "crates/sim/src/fifo.rs",
    "crates/sim/src/sched.rs",
    "crates/sim/src/shard.rs",
    "crates/faults/src/lib.rs",
    "crates/faults/src/churn.rs",
    "crates/check/src/model.rs",
    "crates/check/src/hash.rs",
];

/// Path roots a `use`/`extern crate` may name: the language itself
/// plus every workspace member. Anything else would break the
/// offline, empty-registry build (`README` "Offline / hermetic
/// build") — this supersedes the manifest-level guard in
/// `tests/hermetic.rs` at the source level.
pub const ALLOWED_PATH_ROOTS: &[&str] = &[
    // Language/std roots.
    "std",
    "core",
    "alloc",
    "crate",
    "self",
    "super",
    // Workspace members.
    "cr_sim",
    "cr_topology",
    "cr_faults",
    "cr_traffic",
    "cr_router",
    "cr_core",
    "cr_metrics",
    "cr_experiments",
    "cr_bench",
    "cr_lint",
    "cr_check",
    "compressionless_routing",
];

/// Directory names never descended into. `corpus` holds this crate's
/// deliberately-bad lint fixtures.
pub const SKIP_DIRS: &[&str] = &["target", ".git", "corpus"];

/// Which part of a crate a file belongs to. Rules scope on this:
/// determinism and panic-discipline bind to shipping code only, while
/// hermeticity and `unsafe` bind everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `src/` — shipping code (includes `src/bin/`).
    Src,
    /// `tests/` — integration tests.
    Test,
    /// `benches/` — benchmark drivers.
    Bench,
}

/// Everything the rule engine needs to know about one file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated (stable across OSes).
    pub rel_path: String,
    /// Crate directory name (`sim`, `router`, …) or `root` for the
    /// top-level package.
    pub crate_name: String,
    /// Which tree the file lives in.
    pub region: Region,
    /// True for crate roots (`src/lib.rs`, `src/main.rs`), which must
    /// carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

impl FileContext {
    /// Classifies a workspace-relative path. Returns `None` for paths
    /// outside the known layout (nothing to lint there).
    pub fn classify(rel_path: &str) -> Option<FileContext> {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let (crate_name, tree_parts) = if parts.first() == Some(&"crates") {
            (parts.get(1)?.to_string(), &parts[2..])
        } else {
            ("root".to_string(), &parts[..])
        };
        let region = match tree_parts.first().copied() {
            Some("src") => Region::Src,
            Some("tests") => Region::Test,
            Some("benches") => Region::Bench,
            _ => return None,
        };
        let is_crate_root = region == Region::Src
            && tree_parts.len() == 2
            && matches!(tree_parts[1], "lib.rs" | "main.rs");
        Some(FileContext {
            rel_path: rel_path.to_string(),
            crate_name,
            region,
            is_crate_root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_crate_and_root_files() {
        let c = FileContext::classify("crates/core/src/network.rs").unwrap();
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.region, Region::Src);
        assert!(!c.is_crate_root);

        let c = FileContext::classify("crates/sim/src/lib.rs").unwrap();
        assert!(c.is_crate_root);

        let c = FileContext::classify("src/lib.rs").unwrap();
        assert_eq!(c.crate_name, "root");
        assert!(c.is_crate_root);

        let c = FileContext::classify("crates/experiments/src/bin/fig09.rs").unwrap();
        assert_eq!(c.region, Region::Src);
        assert!(!c.is_crate_root);

        let c = FileContext::classify("tests/hermetic.rs").unwrap();
        assert_eq!(c.region, Region::Test);

        let c = FileContext::classify("crates/bench/benches/sweep.rs").unwrap();
        assert_eq!(c.region, Region::Bench);

        assert!(FileContext::classify("scripts/verify.sh").is_none());
    }
}
