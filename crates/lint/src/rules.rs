//! The rule engine: token-sequence checks for the repo's contracts.
//!
//! Every rule is a short scan over the token stream of one file,
//! scoped by [`crate::config`]. The rules encode contracts the repo
//! otherwise only checks dynamically:
//!
//! | rule | contract |
//! |------|----------|
//! | `hash-collections`  | byte-identical results: no `HashMap`/`HashSet` in result-path crates |
//! | `wall-clock`        | cycle-driven simulation: no `Instant`/`SystemTime` outside `cr_bench` |
//! | `thread-spawn`      | `--jobs` invariance: threads only via `cr_sim::pool` |
//! | `hermeticity`       | offline build: `use` only std and workspace crates |
//! | `unsafe-code`       | no `unsafe` anywhere, `#![forbid(unsafe_code)]` in every crate root |
//! | `panic-discipline`  | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in hot paths |
//! | `trace-rng`         | record-only tracing: no RNG calls inside `TraceSink::emit` closures |
//! | `integer-narrowing` | no silently wrapping `as` casts to narrow ints in protocol files |
//!
//! Test code (`tests/`, `benches/`, `#[cfg(test)]` items) is exempt
//! from the determinism and panic rules — tests legitimately model
//! against `HashMap` (see `killmap.rs`) and assert with `unwrap` —
//! but hermeticity and `unsafe-code` bind everywhere: a registry
//! dependency or an `unsafe` block is no more acceptable in a test.
//!
//! To add a rule: pick an id, add it to [`RULES`], scope it in
//! `config.rs` if it is path-dependent, write the token scan here,
//! and add a known-bad fixture under `tests/corpus/` with its golden
//! `.expected` file (the corpus test will pick both up by name).

use crate::allow;
use crate::config::{
    FileContext, Region, HASH_RULE_CRATES, NARROWING_RULE_FILES, PANIC_RULE_FILES,
    SPAWN_EXEMPT_FILES, WALL_CLOCK_CRATE,
};
use crate::config::ALLOWED_PATH_ROOTS;
use crate::diagnostics::Diagnostic;
use crate::tokenizer::{lex, Tok, TokKind};

/// Every rule id, in documentation order. `unused-allow` and
/// `malformed-allow` police the escape comments themselves.
pub const RULES: &[&str] = &[
    "hash-collections",
    "wall-clock",
    "thread-spawn",
    "hermeticity",
    "unsafe-code",
    "panic-discipline",
    "trace-rng",
    "integer-narrowing",
    "unused-allow",
    "malformed-allow",
];

/// Lints one file's source, returning unsorted findings with allow
/// directives already applied.
pub fn lint_file(ctx: &FileContext, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let (allows, mut malformed) = allow::parse(&ctx.rel_path, &lexed.comments);
    let test_ranges = if ctx.region == Region::Src {
        cfg_test_ranges(&lexed.toks)
    } else {
        Vec::new()
    };
    let scan = Scan {
        ctx,
        toks: &lexed.toks,
        test_ranges,
    };
    let mut diags = Vec::new();
    scan.hash_collections(&mut diags);
    scan.wall_clock(&mut diags);
    scan.thread_spawn(&mut diags);
    scan.hermeticity(&mut diags);
    scan.unsafe_code(&mut diags);
    scan.panic_discipline(&mut diags);
    scan.trace_rng(&mut diags);
    scan.integer_narrowing(&mut diags);
    let mut out = allow::apply(&ctx.rel_path, allows, diags);
    out.append(&mut malformed);
    out
}

struct Scan<'a> {
    ctx: &'a FileContext,
    toks: &'a [Tok],
    /// Inclusive line ranges of `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl Scan<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Shipping code only: not `tests/`/`benches/`, not `#[cfg(test)]`.
    fn is_shipping(&self, line: u32) -> bool {
        self.ctx.region == Region::Src && !self.in_test(line)
    }

    fn diag(&self, out: &mut Vec<Diagnostic>, t: &Tok, rule: &'static str, message: String) {
        out.push(Diagnostic {
            file: self.ctx.rel_path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
        });
    }

    fn prev_is(&self, i: usize, c: char) -> bool {
        i > 0 && self.toks[i - 1].is_punct(c)
    }

    fn next_is(&self, i: usize, c: char) -> bool {
        self.toks.get(i + 1).is_some_and(|t| t.is_punct(c))
    }

    fn hash_collections(&self, out: &mut Vec<Diagnostic>) {
        if !HASH_RULE_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for t in self.toks {
            if t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && self.is_shipping(t.line)
            {
                self.diag(
                    out,
                    t,
                    "hash-collections",
                    format!(
                        "`{}` in a result-path crate: iteration order is nondeterministic \
                         and can leak into reported numbers; use KilledMap, a dense Vec, \
                         or BTreeMap/BTreeSet",
                        t.text
                    ),
                );
            }
        }
    }

    fn wall_clock(&self, out: &mut Vec<Diagnostic>) {
        if self.ctx.crate_name == WALL_CLOCK_CRATE {
            return;
        }
        for t in self.toks {
            if t.kind == TokKind::Ident
                && (t.text == "Instant" || t.text == "SystemTime")
                && self.is_shipping(t.line)
            {
                self.diag(
                    out,
                    t,
                    "wall-clock",
                    format!(
                        "`{}` outside cr_bench: the simulator is cycle-driven and results \
                         must not depend on host timing",
                        t.text
                    ),
                );
            }
        }
    }

    fn thread_spawn(&self, out: &mut Vec<Diagnostic>) {
        if SPAWN_EXEMPT_FILES.contains(&self.ctx.rel_path.as_str()) {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            // Any `spawn(` call site counts — `.spawn(`,
            // `thread::spawn(`, and the bare `spawn(` a
            // `use std::thread::spawn;` import enables. Only a
            // `fn spawn(` definition is not a call.
            let spawn = t.is_ident("spawn")
                && self.next_is(i, '(')
                && !(i > 0 && self.toks[i - 1].is_ident("fn"));
            // `thread::scope` is a spawn in scoped clothing: shard
            // workers and sweep points alike must go through the pool.
            let scope = t.is_ident("scope")
                && self.next_is(i, '(')
                && self.prev_is(i, ':')
                && i >= 3
                && self.toks[i - 3].is_ident("thread");
            if (spawn || scope) && self.is_shipping(t.line) {
                self.diag(
                    out,
                    t,
                    "thread-spawn",
                    format!(
                        "thread {} outside cr_sim::pool: parallelism must flow through \
                         the pool's persistent Team so results stay identical under any \
                         --jobs",
                        if spawn { "spawn" } else { "scope" }
                    ),
                );
            }
        }
    }

    fn hermeticity(&self, out: &mut Vec<Diagnostic>) {
        // Uniform paths (edition 2018+) let a `use` start with a
        // module declared in this file (`mod cycle; pub use
        // cycle::Cycle;` — the lib.rs re-export idiom), so locally
        // declared module names are legitimate path roots too.
        let local_mods: Vec<&str> = self
            .toks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.is_ident("mod")
                    && self
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Ident)
            })
            .map(|(i, _)| self.toks[i + 1].text.as_str())
            .collect();
        for (i, t) in self.toks.iter().enumerate() {
            let root = if t.is_ident("use") {
                // First identifier of the path, skipping leading `::`
                // and a leading `{` of a grouped import.
                self.toks[i + 1..]
                    .iter()
                    .take(4)
                    .find(|n| n.kind == TokKind::Ident)
            } else if t.is_ident("extern") && self.toks.get(i + 1).is_some_and(|n| n.is_ident("crate")) {
                self.toks.get(i + 2).filter(|n| n.kind == TokKind::Ident)
            } else {
                None
            };
            let Some(root) = root else { continue };
            if !ALLOWED_PATH_ROOTS.contains(&root.text.as_str())
                && !local_mods.contains(&root.text.as_str())
            {
                self.diag(
                    out,
                    root,
                    "hermeticity",
                    format!(
                        "import of non-workspace crate `{}`: the build must stay offline \
                         and registry-free (std and workspace crates only)",
                        root.text
                    ),
                );
            }
        }
    }

    fn unsafe_code(&self, out: &mut Vec<Diagnostic>) {
        for t in self.toks {
            if t.is_ident("unsafe") {
                self.diag(
                    out,
                    t,
                    "unsafe-code",
                    "`unsafe` is banned workspace-wide: every crate root carries \
                     #![forbid(unsafe_code)]"
                        .to_string(),
                );
            }
        }
        if self.ctx.is_crate_root && !self.has_forbid_unsafe() {
            out.push(Diagnostic {
                file: self.ctx.rel_path.clone(),
                line: 1,
                col: 1,
                rule: "unsafe-code",
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }

    fn has_forbid_unsafe(&self) -> bool {
        self.toks.windows(3).any(|w| {
            w[0].is_ident("forbid") && w[1].is_punct('(') && w[2].is_ident("unsafe_code")
        })
    }

    fn panic_discipline(&self, out: &mut Vec<Diagnostic>) {
        if !PANIC_RULE_FILES.contains(&self.ctx.rel_path.as_str()) {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if !self.is_shipping(t.line) || t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => self.prev_is(i, '.') || self.prev_is(i, ':'),
                "panic" | "todo" | "unimplemented" => self.next_is(i, '!'),
                _ => false,
            };
            if hit {
                self.diag(
                    out,
                    t,
                    "panic-discipline",
                    format!(
                        "`{}` in a cycle-loop hot path: restructure with let-else/if-let, \
                         propagate an error, or justify with `// cr-lint: allow(...)`",
                        t.text
                    ),
                );
            }
        }
    }

    fn trace_rng(&self, out: &mut Vec<Diagnostic>) {
        let mut i = 0;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_ident("emit") && self.next_is(i, '(') && self.is_shipping(t.line) {
                let end = self.matching_paren(i + 1);
                for (j, inner) in self.toks[i + 2..end].iter().enumerate() {
                    let j = i + 2 + j;
                    let is_rng_name = inner.is_ident("rng")
                        || inner.is_ident("Rng")
                        || inner.is_ident("SimRng");
                    let is_rng_method = self.prev_is(j, '.')
                        && matches!(
                            inner.text.as_str(),
                            "chance" | "pick" | "pick_index" | "next_u32" | "next_u64" | "split"
                        );
                    if inner.kind == TokKind::Ident && (is_rng_name || is_rng_method) {
                        self.diag(
                            out,
                            inner,
                            "trace-rng",
                            format!(
                                "`{}` inside a TraceSink::emit closure: tracing is \
                                 record-only — drawing randomness here would make results \
                                 depend on whether tracing is enabled",
                                inner.text
                            ),
                        );
                    }
                }
                i = end;
            } else {
                i += 1;
            }
        }
    }

    fn integer_narrowing(&self, out: &mut Vec<Diagnostic>) {
        if !NARROWING_RULE_FILES.contains(&self.ctx.rel_path.as_str()) {
            return;
        }
        // Lexical by design: any `as` cast to a sub-64-bit integer
        // type is flagged, narrowing or not — a widening cast to a
        // narrow type reads as `u32::from(x)` just as well, and the
        // rule stays a two-token scan.
        for (i, t) in self.toks.iter().enumerate() {
            if !(t.is_ident("as") && self.is_shipping(t.line)) {
                continue;
            }
            let Some(ty) = self.toks.get(i + 1) else { continue };
            if ty.kind == TokKind::Ident
                && matches!(ty.text.as_str(), "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
            {
                self.diag(
                    out,
                    t,
                    "integer-narrowing",
                    format!(
                        "`as {}` in a protocol file wraps silently on overflow: use \
                         `{}::try_from` (or `::from` when widening), or justify with \
                         `// cr-lint: allow(...)`",
                        ty.text, ty.text
                    ),
                );
            }
        }
    }

    /// Index of the `)` matching the `(` at `open` (or end of stream).
    fn matching_paren(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            match t.kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.toks.len()
    }
}

/// Inclusive line ranges covered by `#[cfg(test)]` items (usually a
/// whole `mod tests { … }` block, occasionally a single helper fn).
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // The item ends at the matching brace of its first top-level
        // `{`, or at a top-level `;` (use/const/tuple-struct forms).
        // Intervening attributes only contain (), [] pairs, which the
        // depth counter passes through.
        let mut k = i + 7;
        let mut depth = 0i32;
        let end_line = loop {
            let Some(t) = toks.get(k) else {
                break toks.last().map_or(start_line, |t| t.line);
            };
            match t.kind {
                TokKind::Punct('{') if depth == 0 => {
                    let mut bd = 1i32;
                    k += 1;
                    while bd > 0 {
                        let Some(t) = toks.get(k) else { break };
                        match t.kind {
                            TokKind::Punct('{') => bd += 1,
                            TokKind::Punct('}') => bd -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    break toks.get(k - 1).map_or(start_line, |t| t.line);
                }
                TokKind::Punct(';') if depth == 0 => break t.line,
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                _ => {}
            }
            k += 1;
        };
        ranges.push((start_line, end_line));
        i = k.max(i + 7);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rel: &str) -> FileContext {
        FileContext::classify(rel).expect("classifiable path")
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        let mut d = lint_file(&ctx(rel), src);
        crate::diagnostics::sort(&mut d);
        d.into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_collections_scoped_to_result_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["hash-collections", "hash-collections"]
        );
        // Topology is not a result-path crate.
        assert!(rules_hit("crates/topology/src/x.rs", src).is_empty());
        // Test region is exempt.
        assert!(rules_hit("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt_from_determinism_rules() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = foo().unwrap(); }
}
";
        assert!(rules_hit("crates/core/src/receiver.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_single_item_exemption() {
        let src = "\
#[cfg(test)]
pub(crate) fn len(&self) -> usize { self.len }
fn prod() { x.unwrap(); }
";
        assert_eq!(rules_hit("crates/core/src/killmap.rs", src), vec!["panic-discipline"]);
    }

    #[test]
    fn wall_clock_exempts_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_hit("crates/router/src/x.rs", src), vec!["wall-clock"]);
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn spawn_exempts_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_hit("crates/topology/src/x.rs", src), vec!["thread-spawn"]);
        assert!(rules_hit("crates/sim/src/pool.rs", src).is_empty());
    }

    #[test]
    fn hermeticity_flags_registry_roots_everywhere() {
        let src = "use rand::Rng;\nuse std::fmt;\nuse cr_sim::Cycle;\nextern crate serde;\n";
        assert_eq!(
            rules_hit("crates/core/tests/x.rs", src),
            vec!["hermeticity", "hermeticity"]
        );
    }

    #[test]
    fn unsafe_and_missing_forbid() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(rules_hit("crates/metrics/src/x.rs", src), vec!["unsafe-code"]);
        // A crate root additionally needs the forbid attribute.
        assert_eq!(rules_hit("crates/metrics/src/lib.rs", "fn f() {}\n"), vec!["unsafe-code"]);
        assert!(rules_hit(
            "crates/metrics/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn panic_discipline_only_in_hot_paths() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); todo!(); }\n";
        assert_eq!(rules_hit("crates/core/src/network.rs", src).len(), 4);
        // Same tokens elsewhere are fine (other rules permitting).
        assert!(rules_hit("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn trace_rng_flags_randomness_in_emit() {
        let src = "fn f() { sink.emit(|| Event::Kill { at: self.rng.pick_index(4) }); }\n";
        let hits = rules_hit("crates/core/src/x.rs", src);
        assert!(hits.iter().all(|r| *r == "trace-rng"));
        assert!(!hits.is_empty());
        // Randomness outside the emit closure is fine.
        let src = "fn f() { let v = self.rng.pick_index(4); sink.emit(|| Event::Kill { at: v }); }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn integer_narrowing_scoped_and_lexical() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(
            rules_hit("crates/core/src/network.rs", src),
            vec!["integer-narrowing"]
        );
        // Outside the scoped protocol files the cast is fine.
        assert!(rules_hit("crates/core/src/report.rs", src).is_empty());
        // Tests are exempt.
        assert!(rules_hit("crates/core/tests/x.rs", src).is_empty());
        // Widening and usize casts are not flagged.
        let ok = "fn f(x: u8) -> u64 { (x as u64) + (x as usize as u64) }\n";
        assert!(rules_hit("crates/core/src/network.rs", ok).is_empty());
        // `use … as alias` does not trip the scan.
        let alias = "use std::fmt::Debug as Dbg;\nfn f(_d: &dyn Dbg) {}\n";
        assert!(rules_hit("crates/core/src/network.rs", alias).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_stale_allow_reports() {
        let src = "\
fn f() {
    // cr-lint: allow(panic-discipline, reason = \"documented invariant\")
    x.unwrap();
}
";
        assert!(rules_hit("crates/core/src/network.rs", src).is_empty());
        let stale = "// cr-lint: allow(panic-discipline, reason = \"nothing here\")\nfn f() {}\n";
        assert_eq!(rules_hit("crates/core/src/network.rs", stale), vec!["unused-allow"]);
    }
}
