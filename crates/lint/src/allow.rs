//! Escape-comment parsing: `// cr-lint: allow(<rule>, reason = "…")`.
//!
//! A justified violation stays in the tree with its justification
//! *next to it*, reviewable in the same diff. A directive suppresses
//! matching findings on its own line (trailing comment) and on the
//! line immediately below it (comment-above-the-site, the common
//! form). Directives are only read from plain `//` and `/* */`
//! comments — doc comments are rendered documentation and may quote
//! the syntax freely.
//!
//! The syntax is strict on purpose:
//!
//! * the rule name must be a real rule ([`crate::rules::RULES`]);
//! * the `reason = "…"` field is mandatory and must be non-empty;
//! * a directive that suppresses nothing is itself a finding
//!   (`unused-allow`), so stale escapes cannot accumulate.
//!
//! Malformed directives are reported as `malformed-allow` rather than
//! silently ignored — a typo in an escape comment must not quietly
//! re-arm the rule it meant to silence.

use crate::diagnostics::Diagnostic;
use crate::rules::RULES;
use crate::tokenizer::Comment;

/// One parsed `allow` directive.
#[derive(Debug)]
pub struct Allow {
    /// Line the comment starts on.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Set when the directive suppressed at least one finding.
    pub used: bool,
}

/// Scans comments for directives. Returns the parsed allows plus any
/// `malformed-allow` findings.
pub fn parse(file: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("cr-lint:") else {
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((rule, reason)) => allows.push(Allow {
                line: c.line,
                rule,
                reason,
                used: false,
            }),
            Err(msg) => diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: 1,
                rule: "malformed-allow",
                message: msg,
            }),
        }
    }
    (allows, diags)
}

/// Parses `allow(<rule>, reason = "…")` after the `cr-lint:` marker.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(body) = s.strip_prefix("allow") else {
        return Err(format!(
            "unknown cr-lint directive `{s}`: expected `allow(<rule>, reason = \"…\")`"
        ));
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(').and_then(|b| b.strip_suffix(')')) else {
        return Err("allow directive must be `allow(<rule>, reason = \"…\")`".to_string());
    };
    let Some((rule, rest)) = body.split_once(',') else {
        return Err("allow directive is missing the mandatory `reason = \"…\"` field".to_string());
    };
    let rule = rule.trim();
    if !RULES.contains(&rule) {
        return Err(format!(
            "allow names unknown rule `{rule}` (rules: {})",
            RULES.join(", ")
        ));
    }
    let rest = rest.trim();
    let Some(reason) = rest
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
    else {
        return Err(format!("expected `reason = \"…\"` after the rule name, got `{rest}`"));
    };
    if reason.trim().is_empty() {
        return Err("allow reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Applies `allows` to `diags`: drops every finding covered by a
/// directive on the same or the preceding line, marks those
/// directives used, and reports the rest as `unused-allow`.
pub fn apply(file: &str, mut allows: Vec<Allow>, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for a in &allows {
        if !a.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: 1,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing on this or the next line — remove it",
                    a.rule
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: u32) -> Comment {
        Comment {
            text: text.to_string(),
            line,
            doc: false,
        }
    }

    #[test]
    fn parses_well_formed_directive() {
        let (allows, diags) = parse(
            "f.rs",
            &[comment(
                " cr-lint: allow(panic-discipline, reason = \"documented invariant\")",
                7,
            )],
        );
        assert!(diags.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "panic-discipline");
        assert_eq!(allows[0].reason, "documented invariant");
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_malformed() {
        let (allows, diags) = parse(
            "f.rs",
            &[
                comment(" cr-lint: allow(no-such-rule, reason = \"x\")", 1),
                comment(" cr-lint: allow(panic-discipline)", 2),
                comment(" cr-lint: deny(panic-discipline)", 3),
            ],
        );
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == "malformed-allow"));
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let (allows, diags) = parse(
            "f.rs",
            &[Comment {
                text: "/ cr-lint: allow(panic-discipline, reason = \"quoted in docs\")".to_string(),
                line: 1,
                doc: true,
            }],
        );
        assert!(allows.is_empty() && diags.is_empty());
    }

    #[test]
    fn suppression_covers_same_and_next_line_only() {
        let mk = |line| Diagnostic {
            file: "f.rs".into(),
            line,
            col: 1,
            rule: "panic-discipline",
            message: "m".into(),
        };
        let (allows, _) = parse(
            "f.rs",
            &[comment(" cr-lint: allow(panic-discipline, reason = \"r\")", 10)],
        );
        let out = apply("f.rs", allows, vec![mk(10), mk(11), mk(12)]);
        // Lines 10 and 11 suppressed; 12 survives; directive was used.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 12);
    }

    #[test]
    fn stale_allow_is_reported() {
        let (allows, _) = parse(
            "f.rs",
            &[comment(" cr-lint: allow(unsafe-code, reason = \"gone\")", 4)],
        );
        let out = apply("f.rs", allows, Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-allow");
        assert_eq!(out[0].line, 4);
    }
}
