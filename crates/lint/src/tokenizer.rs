//! A lightweight Rust lexer: just enough token structure for the rule
//! engine, with exact `line:col` positions.
//!
//! This is deliberately *not* a parser. The rules in this crate match
//! short token sequences (`.` `unwrap` `(`, `use` `rand`, `#` `[`
//! `cfg` `(` `test` `)` `]`), so a flat token stream with comments
//! split out is the right altitude: it is immune to formatting, never
//! matches inside string literals or doc examples, and lexes the whole
//! workspace in milliseconds.
//!
//! What it understands beyond the obvious:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments — captured
//!   separately so the allow-directive scanner ([`crate::allow`]) can
//!   read them, with doc comments (`///`, `//!`, `/**`, `/*!`) marked
//!   as such (directives inside doc text are ignored);
//! * string, raw-string (`r#"…"#`), byte-string, and char literals —
//!   skipped as opaque [`TokKind::Literal`] tokens so a message like
//!   `"never unwrap here"` cannot trip a rule;
//! * lifetimes vs. char literals (`'a` vs. `'a'`);
//! * numeric literals, including `0x…` prefixes and type suffixes,
//!   without swallowing the `..` of a range like `0..self.len`.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `use`, `HashMap`).
    Ident,
    /// One punctuation character (`.`, `(`, `#`, …).
    Punct(char),
    /// String/char/numeric literal or lifetime; contents opaque.
    Literal,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text for identifiers; empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Tok {
    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment, captured for the allow-directive scanner.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` / `/*` opener (terminator excluded).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`): those are
    /// rendered documentation, never lint directives.
    pub doc: bool,
}

/// A lexed source file: code tokens plus the comments between them.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks two characters ahead without consuming (clones the
    /// iterator; cheap for `Chars`).
    fn peek2(&mut self) -> Option<char> {
        let mut ahead = self.chars.clone();
        ahead.next();
        ahead.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => line_comment(&mut cur, &mut out, line),
            '/' if cur.peek2() == Some('*') => block_comment(&mut cur, &mut out, line),
            '"' => {
                string_literal(&mut cur);
                push_literal(&mut out, line, col);
            }
            '\'' => {
                char_or_lifetime(&mut cur);
                push_literal(&mut out, line, col);
            }
            'r' | 'b' if raw_or_byte_string(&mut cur) => push_literal(&mut out, line, col),
            c if c.is_ascii_digit() => {
                number(&mut cur);
                push_literal(&mut out, line, col);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            c => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: String::new(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn push_literal(out: &mut Lexed, line: u32, col: u32) {
    out.toks.push(Tok {
        kind: TokKind::Literal,
        text: String::new(),
        line,
        col,
    });
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump();
    cur.bump(); // the two slashes
    let doc = matches!(cur.peek(), Some('/') | Some('!'));
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment { text, line, doc });
}

fn block_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump();
    cur.bump(); // the `/*`
    let doc = matches!(cur.peek(), Some('*') | Some('!'))
        // `/**/` is an empty plain comment, not a doc comment.
        && cur.peek2() != Some('/');
    let mut text = String::new();
    let mut depth = 1usize;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek2() == Some('*') {
            depth += 1;
            cur.bump();
            cur.bump();
            text.push_str("/*");
        } else if c == '*' && cur.peek2() == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment { text, line, doc });
}

/// Consumes a `"…"` literal (opening quote still pending).
fn string_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a `'x'` char literal or a `'lifetime`, whichever this is.
fn char_or_lifetime(cur: &mut Cursor) {
    cur.bump(); // the quote
    match cur.peek() {
        Some(c) if c.is_alphabetic() || c == '_' => {
            // `'a'` is a char, `'a` (no closing quote after the ident
            // run) is a lifetime.
            let mut ahead = cur.chars.clone();
            let mut n = 0usize;
            while matches!(ahead.peek(), Some(c) if c.is_alphanumeric() || *c == '_') {
                ahead.next();
                n += 1;
            }
            if n == 1 && ahead.peek() == Some(&'\'') {
                cur.bump(); // the char
                cur.bump(); // closing quote
            } else {
                // Lifetime: consume the ident run, no closing quote.
                for _ in 0..n {
                    cur.bump();
                }
            }
        }
        Some('\\') => {
            cur.bump(); // backslash
            cur.bump(); // escaped char (enough for \', \\, \n …)
            // `\u{…}` / `\x..`: run to the closing quote.
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
        }
        _ => {
            // `'('`-style single char (or EOF).
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
    }
}

/// If the cursor sits on a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`), consumes the whole literal and returns true.
/// Otherwise consumes nothing (the caller lexes an identifier).
fn raw_or_byte_string(cur: &mut Cursor) -> bool {
    let mut ahead = cur.chars.clone();
    let first = ahead.next();
    let mut prefix = 1usize;
    let mut next = ahead.next();
    if first == Some('b') && next == Some('r') {
        prefix += 1;
        next = ahead.next();
    }
    let raw = first == Some('r') || prefix == 2;
    let mut hashes = 0usize;
    while raw && next == Some('#') {
        hashes += 1;
        next = ahead.next();
    }
    if next != Some('"') || (!raw && hashes > 0) {
        return false;
    }
    // Commit: consume prefix, hashes, and the quoted body.
    for _ in 0..prefix + hashes + 1 {
        cur.bump();
    }
    if raw {
        // Runs to `"` followed by `hashes` `#`s; no escapes.
        'body: while let Some(c) = cur.bump() {
            if c == '"' {
                let mut ahead = cur.chars.clone();
                for _ in 0..hashes {
                    if ahead.next() != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else {
        // `b"…"`: ordinary escape rules.
        while let Some(c) = cur.bump() {
            match c {
                '\\' => {
                    cur.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }
    true
}

/// Consumes a numeric literal without swallowing range dots: after
/// `0`, `..self` must stay three separate tokens.
fn number(cur: &mut Cursor) {
    cur.bump(); // first digit
    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                cur.bump();
            }
            Some('.') => {
                // Only part of the number if a digit follows (`1.5`);
                // `1..n` and `1.max(2)` stop here.
                match cur.peek2() {
                    Some(d) if d.is_ascii_digit() => {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"
            let x = "unwrap() inside a string";
            // unwrap() inside a comment
            /* HashMap in /* a nested */ block */
            y.unwrap();
        "#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "y", "unwrap"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn doc_comments_are_marked() {
        let lexed = lex("/// doc\n//! inner\n// plain\n/** block doc */\n/*! inner */\n/**/");
        let doc: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(doc, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"let".to_string()));
        // 'x' and '\n' became literals, 'a did not eat the following
        // ident.
        assert!(!ids.contains(&"x".to_string()) || ids.iter().filter(|s| *s == "x").count() == 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ids = idents(r##"let s = r#"HashMap "quoted" unwrap"#; done();"##);
        assert_eq!(ids, vec!["let", "s", "done"]);
    }

    #[test]
    fn ranges_do_not_glue_identifiers() {
        let ids = idents("for i in 0..self.links.len() {}");
        assert!(ids.contains(&"self".to_string()));
        assert!(ids.contains(&"links".to_string()));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ids = idents(r#"let a = b"unwrap"; let b2 = br"expect"; rest"#);
        assert_eq!(ids, vec!["let", "a", "let", "b2", "rest"]);
    }
}
