//! The `cr-lint` command-line front end.
//!
//! ```text
//! cr-lint [--json] [--root <dir>]
//! ```
//!
//! Walks the workspace (found by searching upward from the current
//! directory for a `Cargo.toml` containing `[workspace]`, unless
//! `--root` pins it), lints every source file, and prints findings —
//! human `file:line:col: [rule] message` lines by default, a JSON
//! array under `--json`. Exits 0 when clean, 1 on findings, 2 on
//! usage or I/O errors. The full-workspace run completes well under
//! the 5-second budget `scripts/verify.sh` allots it.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            other => {
                if let Some(dir) = other.strip_prefix("--root=") {
                    root = Some(PathBuf::from(dir));
                } else {
                    return usage(&format!("unknown argument `{other}`"));
                }
            }
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match cr_lint::lint_workspace(&root) {
        Ok(diags) => {
            if json {
                print!("{}", cr_lint::diagnostics::render_json(&diags));
            } else {
                print!("{}", cr_lint::diagnostics::render_human(&diags));
                let files = cr_lint::count_files(&root).unwrap_or(0);
                if diags.is_empty() {
                    println!("cr-lint: clean ({files} files)");
                } else {
                    println!("cr-lint: {} finding(s) in {files} files", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cr-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cr-lint: {msg}\nusage: cr-lint [--json] [--root <dir>]");
    ExitCode::from(2)
}

/// Searches upward from the current directory for the workspace root
/// (a `Cargo.toml` declaring `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root <dir>)"
                .to_string());
        }
    }
}
