//! `cr-lint`: source-level static analysis for this workspace.
//!
//! The repo's core guarantees — byte-identical results under any
//! `--jobs` count, with tracing on or off, building offline with an
//! empty registry — are enforced dynamically by twin-run tests. This
//! crate makes them a checked property of the *source*: a stray
//! `HashMap` iteration, `Instant::now`, `thread::spawn`, registry
//! import, `unsafe` block, or hot-path `unwrap` is a build failure
//! the moment it is written, not a flake three PRs later.
//!
//! In the spirit of the in-repo JSON/RNG/check modules, the tool is
//! zero-dependency: a lightweight Rust tokenizer
//! ([`tokenizer`]) feeds a rule engine ([`rules`]) scoped by the
//! workspace layout ([`config`]); findings ([`diagnostics`]) carry
//! exact `file:line:col` positions and can be escaped, site by site,
//! with justified `cr-lint: allow` comments ([`allow`]).
//!
//! Run it with `cargo run -p cr-lint` (human output) or
//! `cargo run -p cr-lint -- --json` (CI). Exit status is 0 only when
//! the workspace is clean. See DESIGN.md §9 for the rule catalogue
//! and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod config;
pub mod diagnostics;
pub mod rules;
pub mod tokenizer;
pub mod walk;

use config::FileContext;
use diagnostics::Diagnostic;
use std::path::Path;

pub use rules::lint_file;

/// Lints every source file of the workspace at `root`, returning
/// sorted findings (empty = clean).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut checked = 0usize;
    for path in walk::collect_files(root)? {
        let rel = walk::rel_path(root, &path);
        let Some(ctx) = FileContext::classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        diags.extend(rules::lint_file(&ctx, &src));
        checked += 1;
    }
    debug_assert!(checked > 0, "workspace walk found no source files");
    diagnostics::sort(&mut diags);
    Ok(diags)
}

/// Number of lintable files under `root` (for the CLI summary line).
pub fn count_files(root: &Path) -> std::io::Result<usize> {
    Ok(walk::collect_files(root)?
        .iter()
        .filter(|p| FileContext::classify(&walk::rel_path(root, p)).is_some())
        .count())
}
