//! Deterministic workspace traversal.
//!
//! Collects every `.rs` file under the workspace's `src/`, `tests/`,
//! and `crates/` trees, skipping [`crate::config::SKIP_DIRS`]. Entries
//! are sorted at every level so diagnostics come out in the same
//! order on every filesystem — lint output is diffed in CI.

use crate::config::SKIP_DIRS;
use std::path::{Path, PathBuf};

/// Collects all lintable source files under `root`, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "benches", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_dir(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_dir(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_dir(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, `/`-separated form of `path` for diagnostics.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
