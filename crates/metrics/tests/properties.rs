//! Property-based tests for the statistics plumbing.

use cr_metrics::{BatchMeans, Histogram, LatencyRecorder, OnlineStats, ThroughputMeter};
use cr_sim::check::{check, Config};
use cr_sim::Cycle;

/// Welford matches the naive two-pass computation on arbitrary data.
#[test]
fn online_stats_match_naive() {
    check("online_stats_match_naive", Config::default(), |src| {
        let xs = src.vec_with(1..200, |s| s.f64_in(-1e6, 1e6));
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            assert!((s.sample_variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        }
        assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    });
}

/// Merging any partition of the stream equals processing it whole.
#[test]
fn merge_is_partition_invariant() {
    check("merge_is_partition_invariant", Config::default(), |src| {
        let xs = src.vec_with(2..100, |s| s.f64_in(-1e3, 1e3));
        let cut = src.usize_in(1..xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..cut] {
            left.push(x);
        }
        for &x in &xs[cut..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    });
}

/// Histogram percentiles are monotone in the quantile and bound the
/// data.
#[test]
fn histogram_percentiles_are_monotone() {
    check("histogram_percentiles_are_monotone", Config::default(), |src| {
        let values = src.vec_with(1..200, |s| s.u64_in(0..500));
        let mut h = Histogram::new(64, 8); // covers 0..512
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let ps: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "percentiles not monotone: {ps:?}");
        }
        // The max observation is below the p100 bin edge.
        let max = *values.iter().max().unwrap();
        assert!(ps[5] > max, "p100 edge {} vs max {}", ps[5], max);
    });
}

/// The throughput meter is exactly additive and normalizes correctly.
#[test]
fn throughput_is_additive() {
    check("throughput_is_additive", Config::default(), |src| {
        let deliveries = src.vec_with(0..100, |s| (s.u64_in(0..1000), s.usize_in(1..64)));
        let nodes = src.usize_in(1..128);
        let warmup = src.u64_in(0..500);
        let mut m = ThroughputMeter::new(Cycle::new(warmup), nodes);
        let mut expected = 0u64;
        for &(t, flits) in &deliveries {
            m.record_flits(Cycle::new(t), flits);
            if t >= warmup {
                expected += flits as u64;
            }
        }
        assert_eq!(m.flits(), expected);
        let now = Cycle::new(warmup + 100);
        let rate = m.flits_per_node_cycle(now);
        assert!((rate - expected as f64 / 100.0 / nodes as f64).abs() < 1e-12);
    });
}

/// The latency recorder never counts warmup-created messages and its
/// mean matches a direct computation.
#[test]
fn latency_recorder_filters_and_averages() {
    check("latency_recorder_filters_and_averages", Config::default(), |src| {
        let samples = src.vec_with(1..100, |s| (s.u64_in(0..2000), s.u64_in(0..300)));
        let warmup = src.u64_in(0..1000);
        let mut r = LatencyRecorder::new(Cycle::new(warmup));
        let mut kept = Vec::new();
        for &(created, lat) in &samples {
            r.record(Cycle::new(created), Cycle::new(created + lat));
            if created >= warmup {
                kept.push(lat as f64);
            }
        }
        assert_eq!(r.count(), kept.len() as u64);
        if !kept.is_empty() {
            let mean = kept.iter().sum::<f64>() / kept.len() as f64;
            assert!((r.mean() - mean).abs() < 1e-9);
        }
    });
}

/// Batch means: the overall mean is exact regardless of batch
/// boundaries, and the number of batches matches.
#[test]
fn batch_means_mean_is_exact() {
    check("batch_means_mean_is_exact", Config::default(), |src| {
        let xs = src.vec_with(1..200, |s| s.f64_in(-100.0, 100.0));
        let batch = src.usize_in(1..32);
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((bm.mean() - mean).abs() < 1e-9);
        assert_eq!(bm.num_batches(), (xs.len() / batch) as u64);
    });
}
