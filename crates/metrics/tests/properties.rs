//! Property-based tests for the statistics plumbing.

use cr_metrics::{BatchMeans, Histogram, LatencyRecorder, OnlineStats, ThroughputMeter};
use cr_sim::Cycle;
use proptest::prelude::*;

proptest! {
    /// Welford matches the naive two-pass computation on arbitrary
    /// data.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.sample_variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        }
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any partition of the stream equals processing it whole.
    #[test]
    fn merge_is_partition_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        cut in 1usize..99,
    ) {
        let cut = cut.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..cut] {
            left.push(x);
        }
        for &x in &xs[cut..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    /// Histogram percentiles are monotone in the quantile and bound
    /// the data.
    #[test]
    fn histogram_percentiles_are_monotone(
        values in prop::collection::vec(0u64..500, 1..200),
    ) {
        let mut h = Histogram::new(64, 8); // covers 0..512
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let ps: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {ps:?}");
        }
        // The max observation is below the p100 bin edge.
        let max = *values.iter().max().unwrap();
        prop_assert!(ps[5] > max, "p100 edge {} vs max {}", ps[5], max);
    }

    /// The throughput meter is exactly additive and normalizes
    /// correctly.
    #[test]
    fn throughput_is_additive(
        deliveries in prop::collection::vec((0u64..1000, 1usize..64), 0..100),
        nodes in 1usize..128,
        warmup in 0u64..500,
    ) {
        let mut m = ThroughputMeter::new(Cycle::new(warmup), nodes);
        let mut expected = 0u64;
        for &(t, flits) in &deliveries {
            m.record_flits(Cycle::new(t), flits);
            if t >= warmup {
                expected += flits as u64;
            }
        }
        prop_assert_eq!(m.flits(), expected);
        let now = Cycle::new(warmup + 100);
        let rate = m.flits_per_node_cycle(now);
        prop_assert!((rate - expected as f64 / 100.0 / nodes as f64).abs() < 1e-12);
    }

    /// The latency recorder never counts warmup-created messages and
    /// its mean matches a direct computation.
    #[test]
    fn latency_recorder_filters_and_averages(
        samples in prop::collection::vec((0u64..2000, 0u64..300), 1..100),
        warmup in 0u64..1000,
    ) {
        let mut r = LatencyRecorder::new(Cycle::new(warmup));
        let mut kept = Vec::new();
        for &(created, lat) in &samples {
            r.record(Cycle::new(created), Cycle::new(created + lat));
            if created >= warmup {
                kept.push(lat as f64);
            }
        }
        prop_assert_eq!(r.count(), kept.len() as u64);
        if !kept.is_empty() {
            let mean = kept.iter().sum::<f64>() / kept.len() as f64;
            prop_assert!((r.mean() - mean).abs() < 1e-9);
        }
    }

    /// Batch means: the overall mean is exact regardless of batch
    /// boundaries, and the CI contains it for constant streams.
    #[test]
    fn batch_means_mean_is_exact(
        xs in prop::collection::vec(-100f64..100.0, 1..200),
        batch in 1usize..32,
    ) {
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((bm.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(bm.num_batches(), (xs.len() / batch) as u64);
    }
}
