//! Accepted-traffic (throughput) measurement.

use cr_sim::Cycle;

/// Measures delivered traffic after a warmup period, normalized to
/// flits per node per cycle — the paper's throughput unit.
///
/// # Examples
///
/// ```
/// use cr_metrics::ThroughputMeter;
/// use cr_sim::Cycle;
///
/// let mut m = ThroughputMeter::new(Cycle::new(100), 4);
/// m.record_flits(Cycle::new(50), 16);   // warmup: ignored
/// m.record_flits(Cycle::new(200), 16);
/// m.record_flits(Cycle::new(250), 16);
/// // 32 flits over 200 post-warmup cycles across 4 nodes:
/// assert_eq!(m.flits_per_node_cycle(Cycle::new(300)), 32.0 / 200.0 / 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    warmup_end: Cycle,
    num_nodes: usize,
    flits: u64,
    messages: u64,
}

impl ThroughputMeter {
    /// Creates a meter ignoring deliveries before `warmup_end`, for a
    /// network of `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(warmup_end: Cycle, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        ThroughputMeter {
            warmup_end,
            num_nodes,
            flits: 0,
            messages: 0,
        }
    }

    /// Records the delivery of one message of `flits` payload flits at
    /// time `now`.
    pub fn record_flits(&mut self, now: Cycle, flits: usize) {
        if now < self.warmup_end {
            return;
        }
        self.flits += flits as u64;
        self.messages += 1;
    }

    /// Total post-warmup flits delivered.
    pub fn flits(&self) -> u64 {
        self.flits
    }

    /// Total post-warmup messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Accepted traffic in flits per node per cycle, measured over the
    /// window from warmup end to `now`. Returns `0.0` if the window is
    /// empty.
    pub fn flits_per_node_cycle(&self, now: Cycle) -> f64 {
        let window = now.saturating_since(self.warmup_end);
        if window == 0 {
            return 0.0;
        }
        self.flits as f64 / window as f64 / self.num_nodes as f64
    }

    /// Accepted traffic in messages per node per cycle.
    pub fn messages_per_node_cycle(&self, now: Cycle) -> f64 {
        let window = now.saturating_since(self.warmup_end);
        if window == 0 {
            return 0.0;
        }
        self.messages as f64 / window as f64 / self.num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ignored() {
        let mut m = ThroughputMeter::new(Cycle::new(10), 2);
        m.record_flits(Cycle::new(9), 100);
        assert_eq!(m.flits(), 0);
        m.record_flits(Cycle::new(10), 8);
        assert_eq!(m.flits(), 8);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn normalization() {
        let mut m = ThroughputMeter::new(Cycle::ZERO, 10);
        for _ in 0..50 {
            m.record_flits(Cycle::new(1), 4);
        }
        // 200 flits over 100 cycles and 10 nodes = 0.2.
        assert!((m.flits_per_node_cycle(Cycle::new(100)) - 0.2).abs() < 1e-12);
        assert!((m.messages_per_node_cycle(Cycle::new(100)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let m = ThroughputMeter::new(Cycle::new(100), 4);
        assert_eq!(m.flits_per_node_cycle(Cycle::new(100)), 0.0);
        assert_eq!(m.flits_per_node_cycle(Cycle::new(50)), 0.0);
    }
}
