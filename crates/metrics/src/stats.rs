//! Streaming summary statistics.

use cr_sim::Json;

/// Numerically stable streaming mean/variance/min/max (Welford's
/// algorithm).
///
/// # Examples
///
/// ```
/// use cr_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`); `0.0` for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Serializes the full accumulator state as a [`Json`] object
    /// (`count`, `mean`, `m2`, `min`, `max`), so a merge-equivalent
    /// accumulator can be rebuilt with [`OnlineStats::from_json`].
    ///
    /// The `min`/`max` of an empty accumulator are non-finite and
    /// therefore write as `null`, matching how the recorded results
    /// serialized them.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("m2", Json::from(self.m2)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
        ])
    }

    /// Rebuilds an accumulator from [`OnlineStats::to_json`] output.
    ///
    /// Returns `None` if a field is missing or has the wrong type.
    /// `null` bounds (empty accumulator) restore to `±inf`.
    pub fn from_json(v: &Json) -> Option<OnlineStats> {
        let bound = |key: &str, empty: f64| match v.get(key)? {
            Json::Null => Some(empty),
            other => other.as_f64(),
        };
        Some(OnlineStats {
            count: v.get("count")?.as_u64()?,
            mean: v.get("mean")?.as_f64()?,
            m2: v.get("m2")?.as_f64()?,
            min: bound("min", f64::INFINITY)?,
            max: bound("max", f64::NEG_INFINITY)?,
        })
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn matches_naive_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var =
            xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
        assert!((s.sample_variance() - naive_var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-6);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), 1.5);
    }

    #[test]
    fn json_round_trip() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 5.0, 9.0] {
            s.push(x);
        }
        let text = s.to_json().to_pretty();
        let back = OnlineStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.sample_variance(), s.sample_variance());
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());
    }

    #[test]
    fn json_round_trip_empty_bounds() {
        // Empty accumulator: ±inf bounds serialize as null and restore.
        let text = OnlineStats::new().to_json().to_string();
        assert!(text.contains("\"min\":null"), "{text}");
        let back = OnlineStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), f64::INFINITY);
        assert_eq!(back.max(), f64::NEG_INFINITY);
    }
}
