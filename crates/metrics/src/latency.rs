//! Warmup-aware message-latency collection.

use crate::{Histogram, OnlineStats};
use cr_sim::Cycle;

/// Records message latencies, ignoring messages *created* during the
/// warmup period.
///
/// Filtering on creation time (not delivery time) avoids the classic
/// bias where only fast messages from the warmup era sneak into the
/// measurement window.
///
/// # Examples
///
/// ```
/// use cr_metrics::LatencyRecorder;
/// use cr_sim::Cycle;
///
/// let mut r = LatencyRecorder::new(Cycle::new(100));
/// r.record(Cycle::new(50), Cycle::new(500));  // created in warmup: ignored
/// r.record(Cycle::new(150), Cycle::new(170));
/// assert_eq!(r.count(), 1);
/// assert_eq!(r.mean(), 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    warmup_end: Cycle,
    stats: OnlineStats,
    histogram: Histogram,
}

impl LatencyRecorder {
    /// Default histogram shape: 512 bins of 8 cycles covers latencies
    /// up to 4096 cycles before overflowing.
    const BINS: usize = 512;
    const BIN_WIDTH: u64 = 8;

    /// Creates a recorder that ignores messages created before
    /// `warmup_end`.
    pub fn new(warmup_end: Cycle) -> Self {
        LatencyRecorder {
            warmup_end,
            stats: OnlineStats::new(),
            histogram: Histogram::new(Self::BINS, Self::BIN_WIDTH),
        }
    }

    /// Records the delivery of a message created at `created` and
    /// delivered at `delivered`. Warmup-era messages are ignored.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delivered < created`.
    pub fn record(&mut self, created: Cycle, delivered: Cycle) {
        debug_assert!(delivered >= created, "delivery precedes creation");
        if created < self.warmup_end {
            return;
        }
        let latency = delivered - created;
        self.stats.push(latency as f64);
        self.histogram.record(latency);
    }

    /// Number of measured (post-warmup) messages.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation of latency.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Largest observed latency.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Approximate latency percentile (see [`Histogram::percentile`]).
    pub fn percentile(&self, q: f64) -> u64 {
        self.histogram.percentile(q)
    }

    /// The underlying summary statistics.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// End of the warmup period.
    pub fn warmup_end(&self) -> Cycle {
        self.warmup_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_filtering_uses_creation_time() {
        let mut r = LatencyRecorder::new(Cycle::new(1000));
        // Created pre-warmup, delivered post-warmup: still ignored.
        r.record(Cycle::new(999), Cycle::new(5000));
        assert_eq!(r.count(), 0);
        // Created exactly at warmup end: counted.
        r.record(Cycle::new(1000), Cycle::new(1010));
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), 10.0);
    }

    #[test]
    fn percentiles_reflect_distribution() {
        let mut r = LatencyRecorder::new(Cycle::ZERO);
        for i in 0..100 {
            r.record(Cycle::new(0), Cycle::new(i));
        }
        let p50 = r.percentile(0.5);
        assert!((48..=64).contains(&p50), "p50 = {p50}");
        assert!(r.percentile(1.0) >= 96);
    }

    #[test]
    fn zero_latency_allowed() {
        let mut r = LatencyRecorder::new(Cycle::ZERO);
        r.record(Cycle::new(5), Cycle::new(5));
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.count(), 1);
    }
}
