//! Fixed-width-bin histograms with percentile queries.

use cr_sim::Json;

/// A histogram over non-negative integer observations (cycle counts).
///
/// Values are binned with a fixed width; values past the last bin land
/// in an overflow bin. Latency-distribution discussions in the paper
/// ("repeated kills can give some messages much larger latencies,
/// increasing the variance of message latency") are quantified with
/// this type's percentiles.
///
/// # Examples
///
/// ```
/// use cr_metrics::Histogram;
///
/// let mut h = Histogram::new(10, 10); // 10 bins of width 10, covers 0..100
/// for v in [1, 5, 12, 33, 33, 95, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 7);
/// assert_eq!(h.overflow(), 1);
/// assert!(h.percentile(0.5) <= 40);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `num_bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` or `num_bins` is zero.
    pub fn new(num_bins: usize, bin_width: u64) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        assert!(bin_width > 0, "bin width must be positive");
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The per-bin counts, in bin order.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Upper edge (exclusive) of bin `i`.
    pub fn bin_upper_edge(&self, i: usize) -> u64 {
        (i as u64 + 1) * self.bin_width
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper edge of the
    /// first bin at which the cumulative count reaches `q * count`.
    /// Returns `u64::MAX` if the quantile falls in the overflow bin,
    /// and `0` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0.0, 1.0]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        // Clamp to `count`: past 2^53 the `count as f64` conversion
        // can round *up*, and then `q = 1.0` yields a target larger
        // than any cumulative sum — misreporting a fully-binned
        // histogram's maximum as overflow (`u64::MAX`).
        let target = ((q * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut cum = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return self.bin_upper_edge(i);
            }
        }
        u64::MAX
    }

    /// Serializes the histogram as a [`Json`] object (`bin_width`,
    /// `bins`, `overflow`, `count`); invert with
    /// [`Histogram::from_json`].
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bin_width", Json::from(self.bin_width)),
            ("bins", Json::arr(self.bins.iter().map(|&b| Json::from(b)))),
            ("overflow", Json::from(self.overflow)),
            ("count", Json::from(self.count)),
        ])
    }

    /// Rebuilds a histogram from [`Histogram::to_json`] output.
    ///
    /// Returns `None` if a field is missing, has the wrong type, or
    /// describes an invalid shape (zero bins or zero bin width).
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let bin_width = v.get("bin_width")?.as_u64()?;
        let bins: Vec<u64> = v
            .get("bins")?
            .as_arr()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<_>>()?;
        if bin_width == 0 || bins.is_empty() {
            return None;
        }
        Some(Histogram {
            bin_width,
            bins,
            overflow: v.get("overflow")?.as_u64()?,
            count: v.get("count")?.as_u64()?,
        })
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different shapes.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new(4, 10);
        h.record(0);
        h.record(9);
        h.record(10); // second bin
        h.record(39); // last bin
        h.record(40); // overflow
        assert_eq!(h.bins(), &[2, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new(100, 1);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1); // first non-empty bin edge
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn percentile_in_overflow() {
        let mut h = Histogram::new(2, 1);
        h.record(100);
        assert_eq!(h.percentile(0.5), u64::MAX);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = Histogram::new(2, 1);
        assert_eq!(h.percentile(0.9), 0);
    }

    #[test]
    fn full_quantile_never_lands_past_the_data() {
        // q = 1.0 must return the last populated bin's edge, not
        // overflow, whenever nothing actually overflowed.
        let mut h = Histogram::new(3, 10);
        for v in [0, 11, 29] {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), 30);
    }

    #[test]
    fn huge_counts_survive_f64_rounding() {
        // Regression: with count > 2^53, `count as f64` rounds up
        // (2^53 + 3 -> 2^53 + 4), so the q = 1.0 target exceeded every
        // cumulative sum and percentile() returned u64::MAX despite an
        // empty overflow bin. Build the histogram via JSON — 2^53
        // record() calls would take hours.
        let count = (1u64 << 53) + 3;
        let text = format!(
            r#"{{"bin_width": 10, "bins": [1, {}], "overflow": 0, "count": {count}}}"#,
            count - 1
        );
        let h = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(h.percentile(1.0), 20, "clamped target stays in-bins");
        assert_eq!(h.percentile(0.5), 20);
        // With genuine overflow the full quantile still reports it.
        let text = format!(
            r#"{{"bin_width": 10, "bins": [1, 1], "overflow": {}, "count": {count}}}"#,
            count - 2
        );
        let h = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(3, 5);
        let mut b = Histogram::new(3, 5);
        a.record(1);
        b.record(1);
        b.record(14);
        b.record(99);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bins(), &[2, 0, 1]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic]
    fn merge_shape_mismatch_panics() {
        let mut a = Histogram::new(3, 5);
        let b = Histogram::new(4, 5);
        a.merge(&b);
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new(4, 10);
        for v in [1, 5, 12, 39, 40, 400] {
            h.record(v);
        }
        let text = h.to_json().to_pretty();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.bins(), h.bins());
        assert_eq!(back.overflow(), h.overflow());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.percentile(0.5), h.percentile(0.5));
    }

    #[test]
    fn from_json_rejects_invalid_shapes() {
        assert!(Histogram::from_json(&Json::parse(r#"{"bin_width":0,"bins":[1],"overflow":0,"count":1}"#).unwrap()).is_none());
        assert!(Histogram::from_json(&Json::parse(r#"{"bin_width":5,"bins":[],"overflow":0,"count":0}"#).unwrap()).is_none());
        assert!(Histogram::from_json(&Json::parse("{}").unwrap()).is_none());
    }
}
