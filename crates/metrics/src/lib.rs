//! Measurement utilities for the Compressionless Routing reproduction.
//!
//! All of the paper's evaluation artifacts are latency/throughput curves
//! and counters; this crate provides the statistical plumbing:
//!
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford).
//! * [`Histogram`] — fixed-bin latency histograms with percentiles.
//! * [`LatencyRecorder`] — warmup-aware message-latency collection.
//! * [`ThroughputMeter`] — accepted-traffic measurement, normalized to
//!   flits per node per cycle like the paper's throughput axes.
//! * [`BatchMeans`] — batch-means confidence intervals for steady-state
//!   simulation output.
//!
//! # Examples
//!
//! ```
//! use cr_metrics::{LatencyRecorder, ThroughputMeter};
//! use cr_sim::Cycle;
//!
//! let warmup = Cycle::new(1000);
//! let mut lat = LatencyRecorder::new(warmup);
//! lat.record(Cycle::new(500), Cycle::new(540));   // ignored: warmup
//! lat.record(Cycle::new(2000), Cycle::new(2032)); // counted
//! assert_eq!(lat.count(), 1);
//! assert_eq!(lat.mean(), 32.0);
//!
//! let mut thr = ThroughputMeter::new(warmup, 64);
//! thr.record_flits(Cycle::new(2000), 16);
//! let load = thr.flits_per_node_cycle(Cycle::new(3000));
//! assert!(load > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod histogram;
mod latency;
mod stats;
mod throughput;

pub use batch::BatchMeans;
pub use histogram::Histogram;
pub use latency::LatencyRecorder;
pub use stats::OnlineStats;
pub use throughput::ThroughputMeter;
