//! Batch-means confidence intervals for steady-state outputs.

use crate::OnlineStats;

/// Batch-means estimator: groups a correlated observation stream into
/// fixed-size batches whose means are approximately independent, then
/// reports a confidence interval over the batch means.
///
/// Simulation latencies are heavily autocorrelated (messages share
/// congestion epochs); a naive standard error would be far too
/// optimistic. Batch means is the textbook fix.
///
/// # Examples
///
/// ```
/// use cr_metrics::BatchMeans;
///
/// let mut bm = BatchMeans::new(100);
/// for i in 0..1000 {
///     bm.push(10.0 + (i % 7) as f64);
/// }
/// assert_eq!(bm.num_batches(), 10);
/// let (lo, hi) = bm.confidence_interval_95();
/// assert!(lo <= bm.mean() && bm.mean() <= hi);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_count: usize,
    batch_stats: OnlineStats,
    overall: OnlineStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batch_stats: OnlineStats::new(),
            overall: OnlineStats::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_stats.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> u64 {
        self.batch_stats.count()
    }

    /// Overall mean of all observations (including any partial batch).
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Standard error of the mean estimated from batch means; `0.0`
    /// with fewer than two completed batches.
    pub fn standard_error(&self) -> f64 {
        let b = self.batch_stats.count();
        if b < 2 {
            return 0.0;
        }
        self.batch_stats.std_dev() / (b as f64).sqrt()
    }

    /// Approximate 95 % confidence interval for the steady-state mean
    /// (normal critical value; fine for ≥ 10 batches).
    pub fn confidence_interval_95(&self) -> (f64, f64) {
        let half = 1.96 * self.standard_error();
        let m = self.batch_stats.mean();
        (m - half, m + half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_complete_at_size() {
        let mut bm = BatchMeans::new(3);
        bm.push(1.0);
        bm.push(2.0);
        assert_eq!(bm.num_batches(), 0);
        bm.push(3.0);
        assert_eq!(bm.num_batches(), 1);
        assert_eq!(bm.mean(), 2.0);
    }

    #[test]
    fn constant_stream_has_zero_error() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..100 {
            bm.push(5.0);
        }
        assert_eq!(bm.standard_error(), 0.0);
        let (lo, hi) = bm.confidence_interval_95();
        assert_eq!(lo, 5.0);
        assert_eq!(hi, 5.0);
    }

    #[test]
    fn interval_contains_true_mean_for_iid_noise() {
        // Deterministic pseudo-noise around 100.
        let mut bm = BatchMeans::new(50);
        let mut s = 12345u64;
        for _ in 0..5000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((s >> 33) % 1000) as f64 / 1000.0 - 0.5;
            bm.push(100.0 + noise);
        }
        let (lo, hi) = bm.confidence_interval_95();
        assert!(lo < 100.0 + 0.1 && hi > 100.0 - 0.1, "({lo}, {hi})");
        assert!(bm.standard_error() > 0.0);
    }

    #[test]
    fn few_batches_yield_zero_error() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.num_batches(), 1);
        assert_eq!(bm.standard_error(), 0.0);
    }
}
