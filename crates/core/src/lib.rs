//! Compressionless Routing (CR) and Fault-tolerant Compressionless
//! Routing (FCR) — the core contribution of Kim, Liu & Chien's ISCA'94 /
//! TPDS paper, reproduced as a cycle-accurate flit-level simulation.
//!
//! # The idea
//!
//! Wormhole networks couple routers tightly through per-flit flow
//! control: when a worm's header blocks, back-pressure reaches the
//! source within a bounded number of cycles. CR exploits exactly that
//! coupling:
//!
//! * messages are **padded** so the worm spans its whole path (it can
//!   never be fully "compressed" into network buffers — hence the name);
//! * the **injector** monitors injection progress. Once `I_min` flits
//!   (the path's total buffering) have entered the network, the header
//!   has provably reached the destination and the worm is *committed*;
//! * an **uncommitted** worm whose injection stalls past a timeout may
//!   be deadlocked, so the injector **kills** it — a teardown token
//!   walks the worm's path releasing channels — and **retransmits**
//!   after a backoff gap.
//!
//! Any potential deadlock cycle contains an uncommitted worm whose
//! source will kill it, so *fully adaptive minimal routing needs no
//! virtual channels for deadlock freedom*, even on tori.
//!
//! FCR adds per-flit error detection: a corrupted flit triggers a
//! forward kill (the receiver discards the partial message) and a
//! backward kill (the source retransmits) — end-to-end reliable
//! delivery with no acknowledgement packets and no software retry.
//!
//! # Quick start
//!
//! ```
//! use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
//! use cr_topology::KAryNCube;
//! use cr_traffic::{LengthDistribution, TrafficPattern};
//!
//! let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
//!     .routing(RoutingKind::Adaptive { vcs: 1 })
//!     .protocol(ProtocolKind::Cr)
//!     .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.1)
//!     .warmup(200)
//!     .seed(7)
//!     .build();
//! let report = net.run(2_000);
//! assert!(report.counters.messages_delivered > 0);
//! assert_eq!(report.counters.corrupt_payload_delivered, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod injector;
mod killmap;
mod network;
mod receiver;
mod report;
mod retransmit;

pub use builder::NetworkBuilder;
pub use network::check_api;
pub use config::{Ablations, NetworkConfig, ProtocolKind, RoutingKind};
pub use injector::{Injector, InjectorState, PendingMessage};
pub use network::Network;
pub use receiver::{DeliveredMessage, Receiver};
pub use report::{ChurnEventReport, ChurnSummary, NetCounters, SimReport, TraceSummary};
pub use retransmit::RetransmitScheme;
