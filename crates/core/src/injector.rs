//! The CR/FCR injector — the "smart" network interface at each source.
//!
//! The injector is where Compressionless Routing actually lives (the
//! paper's Fig. 7: message injector hardware). Per injection channel it
//! keeps one in-flight worm and:
//!
//! * **pads** the worm to `I_min` flits so it spans its path;
//! * counts accepted flits and watches for **stalls**: a full injection
//!   FIFO is exactly the back-pressure signal the paper's flow-control
//!   handshake provides;
//! * declares the worm **committed** once `I_min` flits are in (header
//!   provably at the destination);
//! * requests a **kill** when an uncommitted worm stalls past the
//!   timeout, then **retransmits** after a gap chosen by the
//!   [`RetransmitScheme`];
//! * preserves order: one message at a time per channel, retried
//!   head-of-line.

use crate::config::{Ablations, ProtocolKind};
use crate::retransmit::RetransmitScheme;
use cr_router::flit::worm_flits;
use cr_router::{Router, WormId};
use cr_sim::{Cycle, MessageId, NodeId, SimRng};
use std::collections::{BTreeMap, VecDeque};

/// A message waiting to be (re)transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMessage {
    /// Globally unique message id.
    pub id: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload length in flits (header and tail included, padding
    /// excluded).
    pub payload_len: u32,
    /// Per-(src, dst) sequence number, for order preservation.
    pub msg_seq: u64,
    /// Creation time (latency is measured from here, across retries).
    pub created: Cycle,
    /// Minimal path length in hops (precomputed by the network).
    pub hops: usize,
    /// Commitment threshold for this message's path (see
    /// `NetworkConfig::i_min`; includes any misroute allowance).
    pub i_min: usize,
    /// Transmission attempts so far (0 before the first).
    pub attempts: u32,
}

/// Coarse injector state, exposed for tests and introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectorState {
    /// No message in hand.
    Idle,
    /// Pushing a worm's flits into the injection FIFO.
    Sending,
    /// Waiting out a retransmission gap after a kill.
    Backoff,
}

/// What happened during one injector cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorOutcome {
    /// A flit entered the injection FIFO this cycle.
    pub injected_flit: bool,
    /// The injected flit was a PAD flit.
    pub injected_pad: bool,
    /// The injector wants this worm killed (uncommitted + stalled past
    /// the timeout). The network performs the teardown and then calls
    /// [`Injector::on_killed`].
    pub kill: Option<WormId>,
    /// The worm's last flit entered the network this cycle.
    pub finished_injection: bool,
    /// A retransmission began this cycle.
    pub restarted: bool,
    /// A worm attempt began this cycle (fresh pickup or a retry
    /// leaving backoff), with its destination: the trace layer's
    /// `Inject` event.
    pub started: Option<(WormId, NodeId)>,
    /// The worm crossed its commitment point (`I_min` flits accepted)
    /// this cycle: the trace layer's `Commit` event. Only reported
    /// under protocols with commitment semantics (CR/FCR, commitment
    /// ablation off).
    pub committed: Option<WormId>,
}

#[derive(Debug)]
struct Current {
    msg: PendingMessage,
    worm: WormId,
    total_len: u32,
    next: u32,
    stall: u64,
    resume_at: Option<Cycle>, // Some(_) while backing off
}

/// One injection channel's protocol engine. See the module docs.
#[derive(Debug)]
pub struct Injector {
    node: NodeId,
    channel: usize,
    protocol: ProtocolKind,
    timeout: u64,
    retransmit: RetransmitScheme,
    ablations: Ablations,
    queue: VecDeque<PendingMessage>,
    current: Option<Current>,
    /// Fully injected messages not yet confirmed delivered; a backward
    /// kill re-queues them (FCR fault recovery). BTreeMap for a
    /// defined iteration order (cr-lint `hash-collections`).
    vulnerable: BTreeMap<MessageId, PendingMessage>,
    rng: SimRng,
}

impl Injector {
    /// Creates the injector for `(node, channel)`.
    pub fn new(
        node: NodeId,
        channel: usize,
        protocol: ProtocolKind,
        timeout: u64,
        retransmit: RetransmitScheme,
        rng: SimRng,
    ) -> Self {
        Injector {
            node,
            channel,
            protocol,
            timeout,
            retransmit,
            ablations: Ablations::default(),
            queue: VecDeque::new(),
            current: None,
            vulnerable: BTreeMap::new(),
            rng,
        }
    }

    /// Applies research ablation switches (see
    /// [`Ablations`](crate::Ablations)).
    pub fn set_ablations(&mut self, ablations: Ablations) {
        self.ablations = ablations;
    }

    /// Queues a new message for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the message is self-addressed or not from this node.
    pub fn enqueue(&mut self, msg: PendingMessage) {
        assert_eq!(msg.src, self.node, "message from the wrong node");
        assert_ne!(msg.src, msg.dst, "self-addressed message");
        self.queue.push_back(msg);
    }

    /// Messages waiting behind the current one.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Coarse state, for tests.
    pub fn state(&self) -> InjectorState {
        match &self.current {
            None => InjectorState::Idle,
            Some(c) if c.resume_at.is_some() => InjectorState::Backoff,
            Some(_) => InjectorState::Sending,
        }
    }

    /// The worm currently being sent or backed off, if any.
    pub fn current_worm(&self) -> Option<WormId> {
        self.current.as_ref().map(|c| c.worm)
    }

    /// Number of messages injected but not yet confirmed delivered.
    pub fn vulnerable_len(&self) -> usize {
        self.vulnerable.len()
    }

    /// True when nothing is queued, in flight, or vulnerable.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.current.is_none() && self.vulnerable.is_empty()
    }

    /// True when [`Injector::step`] could do anything at all this
    /// cycle: a worm is in hand (sending or backing off) or messages
    /// are queued. `false` implies `step` is a no-op that draws no
    /// RNG — the active-set scheduler's skip condition. (A drained
    /// injector may still be step-inactive while vulnerable messages
    /// await delivery confirmation; those need no cycles.)
    pub fn has_step_work(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    /// The cycle a backing-off current worm resumes at, if the
    /// injector is in backoff. Until then every `step` call
    /// early-returns without touching the queue, so the scheduler may
    /// fast-forward across the gap.
    pub fn backoff_resume(&self) -> Option<Cycle> {
        self.current.as_ref().and_then(|c| c.resume_at)
    }

    /// PAD flits this message needs under the current protocol.
    fn pad_for(&self, msg: &PendingMessage) -> u32 {
        if self.ablations.disable_padding {
            return 0;
        }
        if self.protocol.pads() {
            crate::network::idx32(msg.i_min).saturating_sub(msg.payload_len)
        } else {
            0
        }
    }

    /// Runs one cycle: (re)starts transmissions and pushes at most one
    /// flit into this channel's injection FIFO on `router`.
    pub fn step(&mut self, now: Cycle, router: &mut Router) -> InjectorOutcome {
        let mut out = InjectorOutcome::default();

        // Leave backoff when the gap has elapsed.
        if let Some(c) = &mut self.current {
            if let Some(resume) = c.resume_at {
                if now < resume {
                    return out;
                }
                c.resume_at = None;
                c.next = 0;
                c.stall = 0;
                out.restarted = true;
                out.started = Some((c.worm, c.msg.dst));
            }
        }

        // Pick up the next message.
        if self.current.is_none() {
            let Some(mut msg) = self.queue.pop_front() else {
                return out;
            };
            msg.attempts += 1;
            let pad = self.pad_for(&msg);
            let worm = WormId::new(msg.id, msg.attempts - 1);
            out.started = Some((worm, msg.dst));
            self.current = Some(Current {
                worm,
                total_len: msg.payload_len + pad,
                next: 0,
                stall: 0,
                resume_at: None,
                msg,
            });
        }

        // Either a worm was already in flight or the pickup above
        // installed one (returning early when the queue was empty).
        let Some(c) = self.current.as_mut() else {
            return out;
        };
        let pad = c.total_len - c.msg.payload_len;
        // Regenerating the flit for the current position is cheap and
        // keeps no per-attempt buffer around (the hardware keeps the
        // message in the source's memory anyway).
        let flit = worm_flits(
            c.worm,
            c.msg.src,
            c.msg.dst,
            c.msg.payload_len,
            pad,
            c.msg.msg_seq,
            c.msg.created,
        )
        .nth(c.next as usize);
        let Some(flit) = flit else {
            debug_assert!(false, "flit cursor past worm length");
            return out;
        };

        if router.try_inject(now, self.channel, flit) {
            out.injected_flit = true;
            // Everything past the payload is padding overhead —
            // including the appended tail slot when the worm is padded.
            out.injected_pad = flit.seq >= c.msg.payload_len;
            c.next += 1;
            c.stall = 0;
            if c.next as usize == c.msg.i_min
                && self.protocol.kills()
                && !self.ablations.ignore_commitment
            {
                out.committed = Some(c.worm);
            }
            if c.next == c.total_len {
                out.finished_injection = true;
                if let Some(cur) = self.current.take() {
                    self.vulnerable.insert(cur.msg.id, cur.msg);
                }
            }
        } else {
            c.stall += 1;
            let committed =
                !self.ablations.ignore_commitment && (c.next as usize) >= c.msg.i_min;
            if self.protocol.kills() && !committed && c.stall >= self.timeout {
                out.kill = Some(c.worm);
            }
        }
        out
    }

    /// Appends this injector's protocol-relevant state to `out` in the
    /// model checker's canonical form (see [`crate::check_api`]).
    /// Times are relative to `now` and message identities are `(src,
    /// dst, msg_seq)` flow keys rather than raw ids, so two simulator
    /// states that differ only in message-id assignment order encode
    /// identically. Metrics-only fields (`created`, counters) are
    /// deliberately excluded.
    pub(crate) fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) {
        fn put_msg(out: &mut Vec<u8>, m: &PendingMessage) {
            out.extend_from_slice(&m.src.as_u32().to_le_bytes());
            out.extend_from_slice(&m.dst.as_u32().to_le_bytes());
            out.extend_from_slice(&m.msg_seq.to_le_bytes());
            out.extend_from_slice(&m.payload_len.to_le_bytes());
            out.extend_from_slice(&(m.i_min as u64).to_le_bytes());
            out.extend_from_slice(&m.attempts.to_le_bytes());
        }
        out.extend_from_slice(&crate::network::idx32(self.queue.len()).to_le_bytes());
        for m in &self.queue {
            put_msg(out, m);
        }
        match &self.current {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                put_msg(out, &c.msg);
                out.extend_from_slice(&c.worm.attempt.to_le_bytes());
                out.extend_from_slice(&c.total_len.to_le_bytes());
                out.extend_from_slice(&c.next.to_le_bytes());
                out.extend_from_slice(&c.stall.to_le_bytes());
                match c.resume_at {
                    None => out.push(0),
                    Some(r) => {
                        out.push(1);
                        out.extend_from_slice(&r.saturating_since(now).to_le_bytes());
                    }
                }
            }
        }
        let mut vulnerable: Vec<&PendingMessage> = self.vulnerable.values().collect();
        vulnerable.sort_by_key(|m| (m.src, m.dst, m.msg_seq));
        out.extend_from_slice(&crate::network::idx32(vulnerable.len()).to_le_bytes());
        for m in vulnerable {
            put_msg(out, m);
        }
        out.extend_from_slice(&self.rng.words_consumed().to_le_bytes());
    }

    /// Called by the network after it tears down `worm` at this
    /// injector's request (or on its behalf, for path-wide kills):
    /// schedules the retransmission.
    ///
    /// Returns `(retry_attempt, resume_at)` when a retransmission was
    /// scheduled — the zero-based attempt the retry will carry and
    /// the earliest cycle it may start injecting (`now` for a
    /// re-queued vulnerable message, the end of the backoff gap for
    /// the current worm) — or `None` for stale/duplicate
    /// notifications. The network turns this into a
    /// `RetransmitScheduled` trace event.
    pub fn on_killed(&mut self, now: Cycle, worm: WormId) -> Option<(u32, Cycle)> {
        // The kill may concern the current worm...
        if let Some(c) = &mut self.current {
            if c.worm == worm {
                if c.resume_at.is_none() {
                    c.msg.attempts += 1;
                    let gap = self.retransmit.gap(c.msg.attempts - 1, &mut self.rng);
                    c.worm = WormId::new(c.msg.id, c.msg.attempts - 1);
                    let resume = now + gap;
                    c.resume_at = Some(resume);
                    return Some((c.msg.attempts - 1, resume));
                }
                return None;
            }
        }
        // ...or a fully injected (vulnerable) one: re-queue it at the
        // head so per-destination order is preserved as far as
        // possible.
        if let Some(msg) = self.vulnerable.remove(&worm.message) {
            if worm.attempt + 1 == msg.attempts {
                // `step` increments `attempts` when it picks the
                // message back up, so the retry automatically gets the
                // next worm id.
                let retry_attempt = msg.attempts;
                self.queue.push_front(msg);
                return Some((retry_attempt, now));
            }
            // Stale notification for an old attempt; the message
            // has already moved on.
            self.vulnerable.insert(msg.id, msg);
        }
        None
    }

    /// Returns `true` if `worm` is known to be *committed*: its
    /// header has provably reached the destination (either `I_min`
    /// flits have been accepted, or the whole padded worm has been
    /// injected). Killing a committed worm is never necessary for
    /// deadlock recovery — the unnecessary-kill count of the
    /// path-wide comparison is built on this predicate.
    pub fn is_committed(&self, worm: WormId) -> bool {
        if let Some(c) = &self.current {
            if c.worm == worm {
                return (c.next as usize) >= c.msg.i_min;
            }
        }
        if let Some(msg) = self.vulnerable.get(&worm.message) {
            return worm.attempt + 1 == msg.attempts;
        }
        false
    }

    /// Debug introspection: (flits pushed, i_min) for the current worm.
    pub fn debug_progress(&self, worm: WormId) -> Option<(u32, usize)> {
        self.current.as_ref().and_then(|c| {
            (c.worm == worm).then_some((c.next, c.msg.i_min))
        })
    }

    /// Called by the network when the receiver confirms delivery of
    /// `message` (simulation bookkeeping; the protocol itself needs no
    /// acknowledgement).
    pub fn on_delivered(&mut self, message: MessageId) {
        self.vulnerable.remove(&message);
        if let Some(c) = &self.current {
            if c.msg.id == message && c.resume_at.is_some() {
                // A kill raced with a successful delivery: drop the
                // planned retransmission.
                self.current = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_router::{RouterConfig, Router};
    use cr_sim::SimRng;

    fn router() -> Router {
        Router::new(
            NodeId::new(0),
            RouterConfig {
                num_node_ports: 2,
                num_vcs: 1,
                buffer_depth: 2,
                num_inject: 1,
                inject_depth: 2,
                num_eject: 1,
                link_depth: 0,
            },
            SimRng::from_seed(3),
        )
    }

    fn message(payload: u32, i_min: usize) -> PendingMessage {
        PendingMessage {
            id: MessageId::new(1),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            payload_len: payload,
            msg_seq: 0,
            created: Cycle::ZERO,
            hops: 1,
            i_min,
            attempts: 0,
        }
    }

    fn injector(protocol: ProtocolKind, timeout: u64) -> Injector {
        Injector::new(
            NodeId::new(0),
            0,
            protocol,
            timeout,
            RetransmitScheme::StaticGap { gap: 8 },
            SimRng::from_seed(1),
        )
    }

    #[test]
    fn pads_short_messages_to_i_min() {
        let mut inj = injector(ProtocolKind::Cr, 16);
        let mut r = router();
        inj.enqueue(message(2, 5));
        let mut pads = 0;
        let mut total = 0;
        let mut now = Cycle::ZERO;
        // Drain the injection FIFO each cycle so everything fits.
        for _ in 0..20 {
            let out = inj.step(now, &mut r);
            if out.injected_flit {
                total += 1;
                if out.injected_pad {
                    pads += 1;
                }
            }
            // Simulate the downstream network draining the injection
            // FIFO so the injector never stalls.
            let p = r.inject_port(0);
            if r.injection_free(0) == 0 {
                let w = r.front_flit(p, cr_sim::VcId::new(0)).unwrap().worm;
                let _ = r.flush_worm(p, cr_sim::VcId::new(0), w);
            }
            if out.finished_injection {
                break;
            }
            now += 1;
        }
        assert_eq!(total, 5, "worm padded to i_min");
        assert_eq!(pads, 3, "head + 3 pads + tail");
        assert_eq!(inj.vulnerable_len(), 1);
        assert_eq!(inj.state(), InjectorState::Idle);
    }

    #[test]
    fn baseline_never_pads_or_kills() {
        let mut inj = injector(ProtocolKind::Baseline, 4);
        let mut r = router();
        inj.enqueue(message(2, 50));
        let mut now = Cycle::ZERO;
        let out1 = inj.step(now, &mut r);
        now += 1;
        let out2 = inj.step(now, &mut r);
        assert!(out1.injected_flit && out2.injected_flit);
        assert!(out2.finished_injection, "2 payload flits, no padding");
        // FIFO now full; a second message stalls without ever killing.
        inj.enqueue(PendingMessage {
            id: MessageId::new(2),
            ..message(2, 50)
        });
        for _ in 0..100 {
            now += 1;
            let out = inj.step(now, &mut r);
            assert_eq!(out.kill, None);
        }
    }

    #[test]
    fn uncommitted_stall_triggers_kill_and_backoff() {
        let mut inj = injector(ProtocolKind::Cr, 4);
        let mut r = router();
        inj.enqueue(message(8, 10)); // i_min 10 > FIFO depth: will stall
        let mut now = Cycle::ZERO;
        let mut killed = None;
        for _ in 0..20 {
            let out = inj.step(now, &mut r);
            if let Some(w) = out.kill {
                killed = Some(w);
                break;
            }
            now += 1;
        }
        // FIFO holds 2 flits; pushes 1 and 2 succeed, then 4 stall
        // cycles trigger the kill.
        let w = killed.expect("kill requested");
        assert_eq!(w.attempt, 0);
        inj.on_killed(now, w);
        assert_eq!(inj.state(), InjectorState::Backoff);
        // After the static 8-cycle gap the injector restarts with a
        // fresh attempt id.
        let p = r.inject_port(0);
        let _ = r.flush_worm(p, cr_sim::VcId::new(0), w); // network teardown
        let mut restarted = false;
        for _ in 0..20 {
            now += 1;
            let out = inj.step(now, &mut r);
            if out.restarted {
                restarted = true;
                break;
            }
        }
        assert!(restarted);
        assert_eq!(inj.current_worm().unwrap().attempt, 1);
    }

    #[test]
    fn committed_worm_is_never_killed() {
        // i_min 2 (tiny): after 2 flits the worm is committed, so even
        // an eternal stall produces no kill.
        let mut inj = injector(ProtocolKind::Cr, 4);
        let mut r = router();
        inj.enqueue(message(8, 2));
        let mut now = Cycle::ZERO;
        let _ = inj.step(now, &mut r);
        now += 1;
        let _ = inj.step(now, &mut r);
        // FIFO full (depth 2): stall forever, committed.
        for _ in 0..100 {
            now += 1;
            let out = inj.step(now, &mut r);
            assert_eq!(out.kill, None);
        }
        assert_eq!(inj.state(), InjectorState::Sending);
    }

    #[test]
    fn backward_kill_requeues_vulnerable_message() {
        let mut inj = injector(ProtocolKind::Fcr, 16);
        let mut r = router();
        inj.enqueue(message(2, 2));
        let mut now = Cycle::ZERO;
        let _ = inj.step(now, &mut r);
        now += 1;
        let out = inj.step(now, &mut r);
        assert!(out.finished_injection);
        assert_eq!(inj.vulnerable_len(), 1);
        // A fault notification for attempt 0 re-queues it...
        inj.on_killed(now, WormId::new(MessageId::new(1), 0));
        assert_eq!(inj.vulnerable_len(), 0);
        assert_eq!(inj.queue_len(), 1);
        // ...and the retry uses attempt 1. Drain the FIFO first.
        let p = r.inject_port(0);
        let w0 = WormId::new(MessageId::new(1), 0);
        let _ = r.flush_worm(p, cr_sim::VcId::new(0), w0);
        now += 1;
        let out = inj.step(now, &mut r);
        assert!(out.injected_flit);
        assert_eq!(inj.current_worm().unwrap().attempt, 1);
    }

    #[test]
    fn stale_backward_kill_is_ignored() {
        let mut inj = injector(ProtocolKind::Fcr, 16);
        let mut r = router();
        inj.enqueue(message(2, 2));
        let mut now = Cycle::ZERO;
        let _ = inj.step(now, &mut r);
        now += 1;
        let _ = inj.step(now, &mut r);
        assert_eq!(inj.vulnerable_len(), 1);
        // Notification about a *previous* attempt that no longer
        // matches: ignored.
        inj.on_killed(now, WormId::new(MessageId::new(1), 7));
        assert_eq!(inj.vulnerable_len(), 1);
        assert_eq!(inj.queue_len(), 0);
    }

    #[test]
    fn delivery_confirmation_clears_vulnerability() {
        let mut inj = injector(ProtocolKind::Fcr, 16);
        let mut r = router();
        inj.enqueue(message(2, 2));
        let mut now = Cycle::ZERO;
        let _ = inj.step(now, &mut r);
        now += 1;
        let _ = inj.step(now, &mut r);
        inj.on_delivered(MessageId::new(1));
        assert!(inj.is_drained());
    }

    #[test]
    fn delivery_racing_a_kill_cancels_retransmission() {
        let mut inj = injector(ProtocolKind::Cr, 2);
        let mut r = router();
        inj.enqueue(message(8, 10));
        let mut now = Cycle::ZERO;
        let mut worm = None;
        for _ in 0..20 {
            let out = inj.step(now, &mut r);
            if let Some(w) = out.kill {
                worm = Some(w);
                break;
            }
            now += 1;
        }
        inj.on_killed(now, worm.unwrap());
        assert_eq!(inj.state(), InjectorState::Backoff);
        inj.on_delivered(MessageId::new(1));
        assert_eq!(inj.state(), InjectorState::Idle);
    }

    #[test]
    #[should_panic]
    fn wrong_source_rejected() {
        let mut inj = injector(ProtocolKind::Cr, 4);
        inj.enqueue(PendingMessage {
            src: NodeId::new(5),
            ..message(4, 4)
        });
    }
}
