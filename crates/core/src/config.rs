//! Network configuration: protocol, routing and resource knobs.

use crate::retransmit::RetransmitScheme;
use cr_router::routing::{
    DimensionOrder, DuatoProtocol, FullMeshOrdered, MinimalAdaptive, PlanarAdaptive,
};
use cr_router::RoutingFunction;
use cr_topology::Topology;

/// Which end-to-end protocol the network interfaces run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Plain wormhole interfaces: no padding, no timeouts, no kills.
    /// Correct only with a deadlock-free routing function (DOR,
    /// Duato); with plain adaptive routing it *will* deadlock — which
    /// the test-suite demonstrates on purpose.
    Baseline,
    /// Compressionless Routing: padding to `I_min`, source timeout,
    /// kill-and-retransmit deadlock recovery.
    Cr,
    /// Fault-tolerant CR: everything `Cr` does, plus per-flit error
    /// detection with forward/backward kills for end-to-end reliable
    /// delivery.
    Fcr,
}

impl ProtocolKind {
    /// Does this protocol pad worms to span their path?
    pub fn pads(self) -> bool {
        matches!(self, ProtocolKind::Cr | ProtocolKind::Fcr)
    }

    /// Does this protocol run the source timeout/kill machinery?
    pub fn kills(self) -> bool {
        matches!(self, ProtocolKind::Cr | ProtocolKind::Fcr)
    }

    /// Does this protocol detect and recover from flit corruption?
    pub fn detects_faults(self) -> bool {
        matches!(self, ProtocolKind::Fcr)
    }
}

/// Which routing algorithm the routers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Dimension-order routing with `lanes` virtual lanes per dateline
    /// class (two classes on a torus, one on a mesh).
    Dor {
        /// Virtual lanes per dateline class.
        lanes: usize,
    },
    /// Minimal fully-adaptive routing over `vcs` virtual channels.
    Adaptive {
        /// Virtual channels per port (1 suffices for CR).
        vcs: usize,
    },
    /// Minimal-adaptive with misrouting around dead links, up to
    /// `extra_hops` non-minimal hops per attempt.
    AdaptiveMisroute {
        /// Virtual channels per port.
        vcs: usize,
        /// Extra (non-minimal) hops allowed per attempt.
        extra_hops: u16,
    },
    /// Duato's protocol: `adaptive_vcs` adaptive channels plus a
    /// dimension-order escape network.
    Duato {
        /// Adaptive (non-escape) virtual channels.
        adaptive_vcs: usize,
    },
    /// Planar-adaptive routing (2-D mesh only): partially adaptive,
    /// deadlock-free with two virtual channels — the paper authors'
    /// earlier algorithm, as a third baseline.
    PlanarAdaptive,
    /// Ordered-detour routing on diameter-1 (full-mesh) topologies:
    /// deadlock-free with a single virtual channel and no kills — the
    /// HOTI'25 zero-VC scheme CR is compared against.
    FullMeshOrdered,
}

impl RoutingKind {
    /// Instantiates the routing function for `topo`, consulting the
    /// topology for whatever structure the algorithm needs (today:
    /// whether wraparound channels demand the torus dateline
    /// discipline).
    pub fn build(self, topo: &dyn Topology) -> Box<dyn RoutingFunction> {
        if self == RoutingKind::FullMeshOrdered {
            assert_eq!(
                topo.diameter(),
                1,
                "ordered-detour routing requires a diameter-1 topology, got {}",
                topo.label()
            );
        }
        self.build_with_wrap(topo.has_wraparound())
    }

    /// Instantiates the routing function given only whether the
    /// topology has wraparound channels (`torus = true`). Prefer
    /// [`RoutingKind::build`] when a topology is at hand.
    pub fn build_with_wrap(self, torus: bool) -> Box<dyn RoutingFunction> {
        match self {
            RoutingKind::Dor { lanes } => {
                if torus {
                    Box::new(DimensionOrder::torus(lanes))
                } else {
                    Box::new(DimensionOrder::mesh(lanes))
                }
            }
            RoutingKind::Adaptive { vcs } => Box::new(MinimalAdaptive::new(vcs)),
            RoutingKind::AdaptiveMisroute { vcs, extra_hops } => {
                Box::new(MinimalAdaptive::new(vcs).with_misrouting(extra_hops))
            }
            RoutingKind::Duato { adaptive_vcs } => {
                if torus {
                    Box::new(DuatoProtocol::torus(adaptive_vcs))
                } else {
                    Box::new(DuatoProtocol::mesh(adaptive_vcs))
                }
            }
            RoutingKind::PlanarAdaptive => {
                assert!(
                    !torus,
                    "planar-adaptive routing is deadlock-free on meshes only"
                );
                Box::new(PlanarAdaptive::new())
            }
            RoutingKind::FullMeshOrdered => Box::new(FullMeshOrdered::new()),
        }
    }

    /// Extra non-minimal hops this routing may take (affects `I_min`).
    pub fn misroute_budget(self) -> u16 {
        match self {
            RoutingKind::AdaptiveMisroute { extra_hops, .. } => extra_hops,
            // An ordered detour replaces the 1-hop direct path with a
            // 2-hop one, so padding must budget one extra hop.
            RoutingKind::FullMeshOrdered => 1,
            _ => 0,
        }
    }

    /// Whether the routing requires dimension-order support from the
    /// topology (cube coordinates; arbitrary graphs lack them).
    pub fn needs_dimension_order(self) -> bool {
        matches!(
            self,
            RoutingKind::Dor { .. } | RoutingKind::Duato { .. } | RoutingKind::PlanarAdaptive
        )
    }
}

/// Research ablation switches: disable individual CR mechanisms to
/// measure what each one contributes. All off by default; the
/// `ext_ablation` experiment sweeps them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ablations {
    /// Skip padding worms to `I_min`. Without padding a worm can be
    /// fully injected while uncommitted, leaving nobody to detect its
    /// deadlock — the deadlock-freedom *proof* breaks, and at load the
    /// network does too (the watchdog shows it).
    pub disable_padding: bool,
    /// Tear down killed worms atomically instead of walking tokens one
    /// hop per cycle — an idealized "infinitely fast kill wire" that
    /// bounds how much teardown latency costs.
    pub instant_teardown: bool,
    /// Ignore the commitment check: the source kills *any* stalled
    /// worm after the timeout, committed or not. Still correct
    /// (receivers discard partials, retries redeliver) but wasteful —
    /// quantifies what the `I_min` calculator buys.
    pub ignore_commitment: bool,
}

/// Full network configuration. Defaults mirror the paper's setup:
/// 2-flit buffers, single-cycle channels, one injection and one
/// ejection channel per node.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// End-to-end protocol.
    pub protocol: ProtocolKind,
    /// Flit-buffer depth per input virtual channel.
    pub buffer_depth: usize,
    /// Channel pipeline depth in cycles (1 = adjacent routers).
    pub channel_latency: u64,
    /// Injection channels per node.
    pub inject_channels: usize,
    /// Injection FIFO depth per channel.
    pub inject_depth: usize,
    /// Ejection channels per node.
    pub eject_channels: usize,
    /// Source timeout in cycles before an uncommitted stalled worm is
    /// killed. `None` picks the paper's default at build time:
    /// `message length x number of virtual channels`.
    pub timeout: Option<u64>,
    /// Gap policy between a kill and its retransmission.
    pub retransmit: RetransmitScheme,
    /// If set, routers themselves kill any worm stalled locally for
    /// this many cycles — the paper's inferior "path-wide" detection
    /// scheme, kept for the comparison experiment.
    pub path_wide_threshold: Option<u64>,
    /// Cycles with zero forward progress after which the simulation
    /// declares deadlock (only reachable with `Baseline` + adaptive
    /// routing, by design).
    pub deadlock_threshold: u64,
    /// Warmup cycles excluded from measurement.
    pub warmup: u64,
    /// Master random seed.
    pub seed: u64,
    /// Research ablation switches (all off for the faithful protocol).
    pub ablations: Ablations,
    /// Event-trace ring-buffer capacity; `None` (the default) leaves
    /// tracing disabled — the zero-overhead path.
    pub trace_capacity: Option<usize>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            routing: RoutingKind::Adaptive { vcs: 1 },
            protocol: ProtocolKind::Cr,
            buffer_depth: 2,
            channel_latency: 1,
            inject_channels: 1,
            inject_depth: 2,
            eject_channels: 1,
            timeout: None,
            retransmit: RetransmitScheme::default(),
            path_wide_threshold: None,
            deadlock_threshold: 20_000,
            warmup: 1_000,
            seed: 1,
            ablations: Ablations::default(),
            trace_capacity: None,
        }
    }
}

impl NetworkConfig {
    /// Number of virtual channels per port implied by the routing
    /// choice.
    pub fn num_vcs(&self) -> usize {
        self.routing.build_with_wrap(true).num_vcs()
    }

    /// The `I_min` commitment threshold for a path of `hops` hops:
    /// the maximum number of flits the path can store — injection FIFO
    /// plus, per hop, the channel pipeline and one input VC buffer.
    /// Once this many flits have been accepted, the header must have
    /// reached the destination.
    pub fn i_min(&self, hops: usize) -> usize {
        self.inject_depth + hops * (self.buffer_depth + self.channel_latency as usize)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized resources or a zero timeout.
    pub fn validate(&self) {
        assert!(self.buffer_depth > 0, "buffer_depth must be positive");
        assert!(self.channel_latency > 0, "channel_latency must be positive");
        assert!(self.inject_channels > 0, "need an injection channel");
        assert!(self.inject_depth > 0, "inject_depth must be positive");
        assert!(self.eject_channels > 0, "need an ejection channel");
        if let Some(t) = self.timeout {
            assert!(t > 0, "timeout must be positive");
        }
        if let Some(t) = self.path_wide_threshold {
            assert!(t > 0, "path-wide threshold must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_capabilities() {
        assert!(!ProtocolKind::Baseline.pads());
        assert!(!ProtocolKind::Baseline.kills());
        assert!(ProtocolKind::Cr.pads());
        assert!(ProtocolKind::Cr.kills());
        assert!(!ProtocolKind::Cr.detects_faults());
        assert!(ProtocolKind::Fcr.detects_faults());
        assert!(ProtocolKind::Fcr.pads());
    }

    #[test]
    fn routing_vc_requirements() {
        assert_eq!(
            RoutingKind::Adaptive { vcs: 1 }.build_with_wrap(true).num_vcs(),
            1
        );
        assert_eq!(
            RoutingKind::Dor { lanes: 1 }.build_with_wrap(true).num_vcs(),
            2
        );
        assert_eq!(
            RoutingKind::Dor { lanes: 1 }.build_with_wrap(false).num_vcs(),
            1
        );
        assert_eq!(
            RoutingKind::Duato { adaptive_vcs: 1 }
                .build_with_wrap(true)
                .num_vcs(),
            3
        );
        assert_eq!(
            RoutingKind::AdaptiveMisroute {
                vcs: 2,
                extra_hops: 4
            }
            .misroute_budget(),
            4
        );
        assert_eq!(RoutingKind::FullMeshOrdered.misroute_budget(), 1);
        assert_eq!(
            RoutingKind::FullMeshOrdered.build_with_wrap(false).num_vcs(),
            1
        );
    }

    #[test]
    fn build_consults_the_topology_for_wraparound() {
        use cr_topology::{FullMesh, KAryNCube};
        // DOR picks the two-class dateline discipline on a torus and
        // the single-class variant on a mesh — from the topology alone.
        let torus = KAryNCube::torus(4, 2);
        let mesh = KAryNCube::mesh(4, 2);
        assert_eq!(RoutingKind::Dor { lanes: 1 }.build(&torus).num_vcs(), 2);
        assert_eq!(RoutingKind::Dor { lanes: 1 }.build(&mesh).num_vcs(), 1);
        assert_eq!(RoutingKind::FullMeshOrdered.build(&FullMesh::new(8)).num_vcs(), 1);
    }

    #[test]
    #[should_panic]
    fn ordered_detour_rejects_multi_hop_topologies() {
        let torus = cr_topology::KAryNCube::torus(4, 2);
        let _ = RoutingKind::FullMeshOrdered.build(&torus);
    }

    #[test]
    fn i_min_formula() {
        let cfg = NetworkConfig::default(); // inject 2, buffer 2, chan 1
        assert_eq!(cfg.i_min(0), 2);
        assert_eq!(cfg.i_min(1), 5);
        assert_eq!(cfg.i_min(4), 14);
    }

    #[test]
    fn default_is_valid() {
        NetworkConfig::default().validate();
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        let cfg = NetworkConfig {
            buffer_depth: 0,
            ..NetworkConfig::default()
        };
        cfg.validate();
    }
}
