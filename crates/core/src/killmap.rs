//! An open-addressed `WormId -> Cycle` map for the killed registry.
//!
//! The killed registry sits on the simulator's hottest path: every
//! arriving flit, every routing decision and every switch traversal
//! probes it. `std::collections::HashMap` answers those probes through
//! SipHash and a pointer-chasing control-byte walk; this map instead
//! exploits what we know about the key — a [`WormId`] is a dense
//! message id plus a small attempt counter — and uses one multiply-mix
//! hash with linear probing over a flat slot array. Semantics are
//! *exactly* those of a `HashMap<WormId, Cycle>` (verified against the
//! std map by property test), so swapping it in cannot change any
//! simulation result; iteration order is never observable because the
//! registry is only probed by key and pruned by a pure predicate.
//!
//! Deletions (the periodic [`KilledMap::retain`] prune) leave
//! tombstones so probe chains stay intact; tombstones are dropped
//! wholesale whenever the table rehashes.

use cr_router::WormId;
use cr_sim::Cycle;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Full(WormId, Cycle),
}

/// An open-addressed hash map from worm ids to their kill cycle.
#[derive(Debug, Clone)]
pub(crate) struct KilledMap {
    /// Power-of-two slot array.
    slots: Vec<Slot>,
    /// Live entries.
    len: usize,
    /// Tombstones (deleted entries still occupying a probe slot).
    tombstones: usize,
}

const MIN_CAPACITY: usize = 16;

/// splitmix64 finalizer — deterministic, seedless, and well-mixed for
/// the sequential message ids that dominate the key distribution.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash(key: WormId) -> u64 {
    mix(key.message.as_u64() ^ u64::from(key.attempt).rotate_left(32))
}

impl KilledMap {
    pub(crate) fn new() -> Self {
        KilledMap {
            slots: vec![Slot::Empty; MIN_CAPACITY],
            len: 0,
            tombstones: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn contains(&self, key: WormId) -> bool {
        self.find(key).is_some()
    }

    /// Index of the slot holding `key`, if present.
    fn find(&self, key: WormId) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _) if k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts or updates, mirroring `HashMap::insert`.
    pub(crate) fn insert(&mut self, key: WormId, value: Cycle) {
        // Keep occupancy (live + tombstones) under 7/8 so probe chains
        // stay short and the scan below always terminates.
        if (self.len + self.tombstones + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        let mut first_tombstone = None;
        loop {
            match self.slots[i] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(i);
                    if matches!(self.slots[target], Slot::Tombstone) {
                        self.tombstones -= 1;
                    }
                    self.slots[target] = Slot::Full(key, value);
                    self.len += 1;
                    return;
                }
                Slot::Tombstone => {
                    first_tombstone.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                Slot::Full(k, _) => {
                    if k == key {
                        self.slots[i] = Slot::Full(key, value);
                        return;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// All live entries, in storage order. Storage order depends on
    /// insertion history, so callers that need a canonical view (the
    /// model checker's state encoding) must sort by their own key.
    pub(crate) fn entries(&self) -> Vec<(WormId, Cycle)> {
        self.slots
            .iter()
            .filter_map(|s| match *s {
                Slot::Full(k, v) => Some((k, v)),
                _ => None,
            })
            .collect()
    }

    /// Keeps entries whose value satisfies `pred` — the periodic
    /// registry prune. Equivalent to `HashMap::retain` with a
    /// value-only predicate (the registry's predicate never looks at
    /// the key, so retention order cannot matter).
    pub(crate) fn retain(&mut self, mut pred: impl FnMut(Cycle) -> bool) {
        for slot in &mut self.slots {
            if let Slot::Full(_, v) = *slot {
                if !pred(v) {
                    *slot = Slot::Tombstone;
                    self.len -= 1;
                    self.tombstones += 1;
                }
            }
        }
    }

    /// Rehashes into a table sized for the live entries, dropping
    /// tombstones. Grows only on live load; a prune-heavy interval
    /// (many tombstones, few live) rebuilds at the same size.
    fn grow(&mut self) {
        let needed = (self.len + 1) * 8 / 7 + 1;
        let mut capacity = MIN_CAPACITY;
        while capacity < needed {
            capacity *= 2;
        }
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; capacity]);
        self.tombstones = 0;
        let mask = capacity - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = (hash(k) as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_sim::check::{check, Config};
    use cr_sim::MessageId;
    use std::collections::HashMap;

    fn worm(message: u64, attempt: u32) -> WormId {
        WormId::new(MessageId::new(message), attempt)
    }

    #[test]
    fn insert_contains_and_update() {
        let mut m = KilledMap::new();
        assert_eq!(m.len(), 0);
        assert!(!m.contains(worm(1, 0)));
        m.insert(worm(1, 0), Cycle::new(10));
        m.insert(worm(1, 1), Cycle::new(11));
        assert!(m.contains(worm(1, 0)));
        assert!(m.contains(worm(1, 1)));
        assert!(!m.contains(worm(2, 0)));
        assert_eq!(m.len(), 2);
        // Update in place: no growth, value replaced.
        m.insert(worm(1, 0), Cycle::new(99));
        assert_eq!(m.len(), 2);
        m.retain(|t| t.as_u64() < 50);
        assert!(!m.contains(worm(1, 0)), "updated value pruned");
        assert!(m.contains(worm(1, 1)));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = KilledMap::new();
        for i in 0..10_000 {
            m.insert(worm(i, (i % 3) as u32), Cycle::new(i));
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert!(m.contains(worm(i, (i % 3) as u32)), "lost {i}");
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut m = KilledMap::new();
        for i in 0..1_000 {
            m.insert(worm(i, 0), Cycle::new(i));
        }
        // Prune the even half; the odd half must stay findable even
        // where its probe chains crossed now-deleted slots.
        m.retain(|t| t.as_u64() % 2 == 1);
        assert_eq!(m.len(), 500);
        for i in 0..1_000 {
            assert_eq!(m.contains(worm(i, 0)), i % 2 == 1, "key {i}");
        }
        // Reinserting over tombstones reclaims them.
        for i in 0..1_000 {
            m.insert(worm(i, 0), Cycle::new(i + 1));
        }
        assert_eq!(m.len(), 1_000);
    }

    /// The registry's exact workload shape against the std map:
    /// interleaved inserts, lookups and value-predicate prunes agree
    /// with `HashMap` at every step.
    #[test]
    fn matches_std_hashmap_model() {
        check("killmap_matches_hashmap", Config::default(), |src| {
            let mut m = KilledMap::new();
            let mut model: HashMap<WormId, Cycle> = HashMap::new();
            let ops = src.usize_in(0..400);
            for _ in 0..ops {
                match src.weighted(&[5, 3, 1]) {
                    0 => {
                        let k = worm(src.u64_in(0..64), src.u32_in(0..4));
                        let v = Cycle::new(src.u64_in(0..1_000));
                        m.insert(k, v);
                        model.insert(k, v);
                    }
                    1 => {
                        let k = worm(src.u64_in(0..64), src.u32_in(0..4));
                        assert_eq!(m.contains(k), model.contains_key(&k));
                    }
                    _ => {
                        let horizon = src.u64_in(0..1_000);
                        m.retain(|t| t.as_u64() >= horizon);
                        model.retain(|_, t| t.as_u64() >= horizon);
                    }
                }
                assert_eq!(m.len(), model.len());
            }
            for (&k, _) in &model {
                assert!(m.contains(k));
            }
        });
    }
}
